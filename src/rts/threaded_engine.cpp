#include "rts/threaded_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "obs/exposition.hpp"
#include "obs/span.hpp"
#include "rts/preempt.hpp"

namespace gg::rts {

namespace {

// Low-overhead timestamps: modern x86 TSCs are constant/invariant, so one
// process-wide calibration against steady_clock converts ticks to ns. This
// is what keeps profiling overhead in the couple-percent range the paper
// reports for the MIR profiler (steady_clock calls alone would cost ~10x
// more per grain event).
#if defined(__x86_64__) || defined(__i386__)
inline u64 tsc_now() { return __builtin_ia32_rdtsc(); }

double tsc_ns_per_tick() {
  static const double ratio = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const u64 c0 = tsc_now();
    // Busy-wait ~2ms for a stable ratio.
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(2)) {
    }
    const u64 c1 = tsc_now();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                t1 - t0)
                                .count());
    return ns / static_cast<double>(c1 - c0);
  }();
  return ratio;
}
#endif

}  // namespace

using front::Ctx;
using front::ForOpts;
using front::LoopFn;
using front::SrcLoc;
using front::TaskFn;

// ---------------------------------------------------------------------------
// Internal structures

struct ThreadedEngine::Task {
  TaskFn body;
  TaskId uid = 0;
  Task* parent = nullptr;
  u32 child_index = 0;
  StrId src = 0;
  bool inlined = false;
  std::atomic<u32> live_children{0};
  std::atomic<u32> refs{1};

  // Task-dependence state (OpenMP depend clauses). `dep_mutex` guards the
  // finished flag and the successor list; a successor registered before the
  // predecessor finishes is released (pred_count decrement, enqueue at 0)
  // by the predecessor's completing worker.
  std::mutex dep_mutex;
  bool dep_finished = false;
  std::vector<Task*> dep_successors;
  std::atomic<u32> pred_count{0};
};

/// Per-executing-task dependence bookkeeping: OpenMP dependences order
/// sibling tasks, so the map lives in the spawning context (single
/// threaded, no locking). Referenced tasks are kept alive with a ref.
struct ThreadedEngine::DepMap {
  struct Entry {
    Task* last_writer = nullptr;
    std::vector<Task*> readers;
  };
  std::map<u64, Entry> entries;
};

/// Scheduler-introspection counters, one cache-line-padded slot per worker.
/// Incremented only by the owning worker, only when profiling is on (plain
/// u64 adds, no synchronization — the task hot path stays within the
/// paper's 2.5% overhead budget), and read by the main thread after the
/// worker threads joined.
struct alignas(64) SchedCounters {
  u64 tasks_spawned = 0;
  u64 tasks_executed = 0;
  u64 tasks_inlined = 0;
  u64 steals = 0;
  u64 steal_failures = 0;
  u64 cas_failures = 0;
  u64 deque_pushes = 0;
  u64 deque_pops = 0;
  u64 taskwait_helps = 0;
  TimeNs idle_ns = 0;
};

struct ThreadedEngine::Worker {
  int id = 0;
  std::unique_ptr<WorkQueue<Task*>> queue;  // backend per opts_.queue_backend
  std::thread thread;  // not started for worker 0 (the caller's thread)
  TraceRecorder::Writer writer;
  Xoshiro256 rng;
  u32 loop_seq = 0;           // loops started by this thread
  LoopId finished_loop = 0;   // last loop this worker fully drained
  SchedCounters cnt;          // padded: no false sharing with neighbors

  // Supervision fields: written by the owning worker (relaxed stores on the
  // idle/transition paths only), sampled by the watchdog. The heartbeat
  // ticks in the scheduling loops, so a worker wedged inside user code
  // shows state==Exec with a frozen heartbeat in the stall dump.
  std::atomic<u64> heartbeat{0};
  std::atomic<u8> state{static_cast<u8>(WorkerState::Idle)};
  std::atomic<TaskId> current_task{kNoTask};

  Worker(int id_, std::unique_ptr<WorkQueue<Task*>> q, TraceRecorder::Writer w,
         u64 seed)
      : id(id_), queue(std::move(q)), writer(w), rng(seed) {}
};

/// Cached metric handles for the engine's self-telemetry. Registry lookups
/// take a mutex, so the hot paths hold raw pointers resolved once per run;
/// a null telem_ (telemetry disabled, the default) costs each site exactly
/// one untaken branch.
struct ThreadedEngine::EngineTelemetry {
  obs::Registry* reg;
  obs::Counter* tasks_spawned;
  obs::Counter* tasks_executed;
  obs::Counter* tasks_inlined;
  obs::Counter* steals;
  obs::Counter* steal_failures;
  obs::Histogram* task_latency_ns;
  obs::Histogram* chunk_latency_ns;
  obs::Histogram* queue_depth;
  // Sampler-thread state for the progress-stall gauge (flusher-owned).
  u64 last_progress = 0;
  u64 last_change_mono_ns = 0;

  explicit EngineTelemetry(obs::Registry* r)
      : reg(r),
        tasks_spawned(r->counter("engine.tasks_spawned")),
        tasks_executed(r->counter("engine.tasks_executed")),
        tasks_inlined(r->counter("engine.tasks_inlined")),
        steals(r->counter("engine.steals")),
        steal_failures(r->counter("engine.steal_failures")),
        task_latency_ns(r->histogram("engine.task_latency_ns")),
        chunk_latency_ns(r->histogram("engine.chunk_latency_ns")),
        queue_depth(r->histogram("engine.queue_depth")) {}
};

struct ThreadedEngine::LoopState {
  LoopId uid = 0;
  StrId src = 0;
  ScheduleKind sched = ScheduleKind::Static;
  u64 chunk_min = 1;
  u64 lo = 0, hi = 0;
  u64 total = 0;
  int team = 1;
  const LoopFn* body = nullptr;
  std::atomic<u64> cursor{0};
  std::atomic<u64> iters_done{0};
  std::atomic<int> active{0};
  std::atomic<bool> done{false};
  std::vector<std::vector<std::pair<u64, u64>>> static_chunks;
  std::vector<u32> static_pos;  // per-thread; each slot touched only by owner

  /// Claims the next chunk for `thread`, or nullopt when the schedule has no
  /// more work for it.
  std::optional<std::pair<u64, u64>> claim(int thread) {
    switch (sched) {
      case ScheduleKind::Static: {
        auto& pos = static_pos[static_cast<size_t>(thread)];
        const auto& mine = static_chunks[static_cast<size_t>(thread)];
        if (pos >= mine.size()) return std::nullopt;
        return mine[pos++];
      }
      case ScheduleKind::Dynamic: {
        const u64 got = cursor.fetch_add(chunk_min, std::memory_order_relaxed);
        if (got >= hi) return std::nullopt;
        return std::make_pair(got, std::min(got + chunk_min, hi));
      }
      case ScheduleKind::Guided: {
        u64 got = cursor.load(std::memory_order_relaxed);
        while (true) {
          if (got >= hi) return std::nullopt;
          const u64 remaining = hi - got;
          const u64 size =
              std::max<u64>(chunk_min,
                            remaining / (2 * static_cast<u64>(team)));
          const u64 take = std::min(size, remaining);
          if (cursor.compare_exchange_weak(got, got + take,
                                           std::memory_order_relaxed)) {
            return std::make_pair(got, got + take);
          }
        }
      }
    }
    return std::nullopt;
  }
};

// ---------------------------------------------------------------------------
// Execution context

class ThreadedEngine::CtxImpl final : public Ctx {
 public:
  CtxImpl(ThreadedEngine* eng, Worker* w, Task* task)
      : eng_(eng), w_(w), task_(task) {}

  void spawn(const SrcLoc& loc, TaskFn body) override {
    spawn_impl(loc, nullptr, std::move(body));
  }

  void spawn(const SrcLoc& loc, const front::Depends& deps,
             TaskFn body) override {
    spawn_impl(loc, &deps, std::move(body));
  }

  void spawn_impl(const SrcLoc& loc, const front::Depends* deps, TaskFn body) {
    GG_CHECK_MSG(!in_chunk_,
                 "spawning tasks from loop chunks is not supported (the "
                 "profiler does not support nested parallelism)");
    ThreadedEngine& eng = *eng_;
    const TimeNs fork_time = eng.now();
    Task* child = eng.make_task(std::move(body), task_, intern_loc(loc),
                                fork_time, static_cast<u16>(w_->id),
                                /*inlined=*/false);
    child->child_index = next_child_index_++;

    // Resolve dependences against earlier siblings (OpenMP last-writer /
    // reader rules). Structural edges are recorded even when the
    // predecessor already finished; runtime blocking counts live preds.
    //
    // Creation guard: pred_count starts at 1 so that predecessors finishing
    // DURING registration cannot release (and race with) a half-registered
    // child; the guard is dropped at the end of this function.
    u32 live_regs = 0;
    std::vector<TaskId> live_pred_uids;
    if (deps != nullptr && !deps->empty()) {
      child->pred_count.store(1, std::memory_order_relaxed);
      live_regs = resolve_dependences(
          *deps, child, eng.supervising_ ? &live_pred_uids : nullptr);
    }
    const bool has_live_preds = live_regs > 0;
    // While the creation guard is still held the child cannot be enqueued,
    // so registering it as blocked here cannot race with its release.
    if (eng.supervising_ && has_live_preds) {
      eng.register_blocked(child->uid, std::move(live_pred_uids));
    }

    // Runtime internal cutoffs: execute inline instead of deferring. A task
    // with unsatisfied dependences can never run inline.
    bool inline_child = false;
    const Options& o = eng.opts_;
    if (!has_live_preds) {
      if (o.task_throttle_per_worker > 0 &&
          eng.live_tasks_.load(std::memory_order_relaxed) >=
              o.task_throttle_per_worker * static_cast<u64>(o.num_workers)) {
        inline_child = true;
      }
      if (!inline_child && o.inline_queue_limit > 0) {
        const size_t qsize = o.scheduler == SchedulerKind::WorkStealing
                                 ? w_->queue->size_estimate()
                                 : eng.central_queue_.size_estimate();
        if (qsize >= o.inline_queue_limit) inline_child = true;
      }
    }
    child->inlined = inline_child;

    // Snapshot the fields the profiler needs BEFORE the child becomes
    // visible to thieves: once pushed it can be stolen, executed, and freed
    // while this spawner is still recording.
    const TaskId child_uid = child->uid;
    const u32 child_index = child->child_index;
    const StrId child_src = child->src;

    const bool guarded = deps != nullptr && !deps->empty();
    // creation_cost ends HERE — before the child becomes visible to
    // thieves. The fork graph node spans [create_time, create_time +
    // creation_cost] and carries a Creation edge to the child's first
    // fragment, so the critical path sums both; if the cost included the
    // enqueue (a flat-combining push can wait descheduled long after the
    // combiner published the child, and every backend has a preemption
    // point after its publish), the child could execute entirely inside
    // the creation window and the summed path would exceed the wall-clock
    // makespan. The enqueue wait is still in the trace, as the gap
    // between the fork node and the parent's next fragment.
    const TimeNs created = eng.now();
    if (!inline_child) {
      child->parent->refs.fetch_add(1, std::memory_order_relaxed);
      child->parent->live_children.fetch_add(1, std::memory_order_relaxed);
      eng.live_tasks_.fetch_add(1, std::memory_order_relaxed);
      if (!guarded) eng.push_task(child, *w_);
      // else: enqueued when the creation guard drops below.
    }
    ++children_since_join_;

    if (eng.profiling()) {
      ++w_->cnt.tasks_spawned;
      if (inline_child) ++w_->cnt.tasks_inlined;
      if (auto* tm = eng.telem_.get()) {
        tm->tasks_spawned->add();
        if (inline_child) tm->tasks_inlined->add();
      }
      end_fragment(fork_time, FragmentEnd::Fork, child_uid);
      TaskRec rec;
      rec.uid = child_uid;
      rec.parent = task_->uid;
      rec.child_index = child_index;
      rec.src = child_src;
      rec.create_time = fork_time;
      rec.create_core = static_cast<u16>(w_->id);
      rec.creation_cost = created - fork_time;
      rec.inlined = inline_child;
      w_->writer.task(rec);
    }

    if (inline_child) {
      // Inline implies no live predecessors were registered; clear the
      // guard (nobody will ever decrement it) and run.
      if (guarded) child->pred_count.store(0, std::memory_order_relaxed);
      eng.exec_task(child, *w_);
    } else if (guarded) {
      // Drop the creation guard: if every registered predecessor already
      // finished (each decrements once), this spawner enqueues; otherwise
      // the last finishing predecessor does. After this line the child may
      // run and be freed at any moment — the dependence map's retain keeps
      // the pointer valid, but no further mutation of *child is allowed.
      if (child->pred_count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (eng.supervising_) eng.unregister_blocked(child_uid);
        eng.push_task(child, *w_);
      }
    }
    frag_start_ = eng.now();
  }

  /// Computes the child's predecessors per OpenMP rules: `in` waits on the
  /// handle's last writer; `out` waits on the last writer and every reader
  /// since, then becomes the new last writer. Returns the number of LIVE
  /// predecessors registered (each will decrement the child's pred_count);
  /// their uids are appended to `live_preds` when non-null (supervision).
  u32 resolve_dependences(const front::Depends& deps, Task* child,
                          std::vector<TaskId>* live_preds) {
    if (!dep_map_) dep_map_ = std::make_unique<DepMap>();
    ThreadedEngine& eng = *eng_;
    std::vector<Task*> preds;
    auto add_pred = [&](Task* p) {
      if (p == nullptr || p == child) return;
      for (Task* q : preds) {
        if (q == p) return;
      }
      preds.push_back(p);
    };
    for (u64 h : deps.in) {
      auto it = dep_map_->entries.find(h);
      if (it != dep_map_->entries.end()) add_pred(it->second.last_writer);
    }
    for (u64 h : deps.out) {
      auto it = dep_map_->entries.find(h);
      if (it != dep_map_->entries.end()) {
        add_pred(it->second.last_writer);
        for (Task* r : it->second.readers) add_pred(r);
      }
    }
    u32 live_regs = 0;
    for (Task* p : preds) {
      if (eng.profiling()) {
        DependRec d;
        d.pred = p->uid;
        d.succ = child->uid;
        w_->writer.depend(d);
      }
      std::lock_guard lock(p->dep_mutex);
      if (!p->dep_finished) {
        p->dep_successors.push_back(child);
        child->pred_count.fetch_add(1, std::memory_order_relaxed);
        ++live_regs;
        if (live_preds != nullptr) live_preds->push_back(p->uid);
      }
    }
    // Update the map; it holds a ref on every task it references.
    auto retain = [&](Task* t) {
      t->refs.fetch_add(1, std::memory_order_relaxed);
      return t;
    };
    for (u64 h : deps.in) {
      dep_map_->entries[h].readers.push_back(retain(child));
    }
    for (u64 h : deps.out) {
      auto& e = dep_map_->entries[h];
      if (e.last_writer != nullptr) eng.release_task(e.last_writer);
      for (Task* r : e.readers) eng.release_task(r);
      e.readers.clear();
      e.last_writer = retain(child);
    }
    return live_regs;
  }

  /// Releases the dependence map's task references (called when the task's
  /// execution ends and the context is destroyed).
  ~CtxImpl() override {
    if (!dep_map_) return;
    for (auto& [h, e] : dep_map_->entries) {
      if (e.last_writer != nullptr) eng_->release_task(e.last_writer);
      for (Task* r : e.readers) eng_->release_task(r);
    }
  }

  void taskwait() override {
    GG_CHECK_MSG(!in_chunk_, "taskwait inside loop chunks is not supported");
    ThreadedEngine& eng = *eng_;
    if (children_since_join_ == 0 &&
        task_->live_children.load(std::memory_order_acquire) == 0) {
      return;  // structurally a no-op: nothing to synchronize with
    }
    const TimeNs t0 = eng.now();
    const u32 jseq = next_join_seq_++;
    if (eng.profiling()) end_fragment(t0, FragmentEnd::Join, jseq);
    eng.help_until(*w_, task_->live_children);
    const TimeNs t1 = eng.now();
    if (eng.profiling()) {
      JoinRec j;
      j.task = task_->uid;
      j.seq = jseq;
      j.start = t0;
      j.end = t1;
      j.core = static_cast<u16>(w_->id);
      w_->writer.join(j);
    }
    children_since_join_ = 0;
    frag_start_ = eng.now();
  }

  void parallel_for(const SrcLoc& loc, u64 lo, u64 hi, const ForOpts& opts,
                    const LoopFn& body) override {
    GG_CHECK_MSG(task_->uid == kRootTask && !in_chunk_,
                 "parallel_for is only supported from the root task (no "
                 "nested parallelism)");
    eng_->run_parallel_for(*w_, task_, loc, lo, hi, opts, body, frag_start_,
                           *this);
  }

  int worker() const override { return w_->id; }
  int num_workers() const override { return eng_->opts_.num_workers; }

 private:
  friend class ThreadedEngine;

  StrId intern_loc(const SrcLoc& loc) {
    return eng_->recorder_->intern_source(loc.file, loc.line, loc.func);
  }

  /// Emits the fragment [frag_start_, end) with the given end reason.
  void end_fragment(TimeNs end, FragmentEnd reason, u64 ref) {
    FragmentRec f;
    f.task = task_->uid;
    f.seq = next_fragment_seq_++;
    f.start = frag_start_;
    f.end = end;
    f.core = static_cast<u16>(w_->id);
    f.counters.compute = end - frag_start_;
    f.end_reason = reason;
    f.end_ref = ref;
    w_->writer.fragment(f);
  }

  ThreadedEngine* eng_;
  Worker* w_;
  Task* task_;
  TimeNs frag_start_ = 0;
  u32 next_fragment_seq_ = 0;
  u32 next_join_seq_ = 0;
  u32 next_child_index_ = 0;
  u32 children_since_join_ = 0;
  bool in_chunk_ = false;
  std::unique_ptr<DepMap> dep_map_;  // lazily created on first depend spawn
};

// ---------------------------------------------------------------------------
// Engine

ThreadedEngine::ThreadedEngine(Options opts) : opts_(opts) {
  GG_CHECK(opts_.num_workers >= 1);
}

ThreadedEngine::~ThreadedEngine() = default;

front::RegionId ThreadedEngine::alloc_region(const std::string& name,
                                             u64 bytes,
                                             front::PagePlacement placement,
                                             int touch_node) {
  // Real executions have real memory; regions are provenance only.
  (void)placement;
  (void)touch_node;
  region_notes_.push_back("region " + name + " bytes=" + std::to_string(bytes));
  return next_region_++;
}

TimeNs ThreadedEngine::now() const {
#if defined(__x86_64__) || defined(__i386__)
  if (!opts_.strict_clock) {
    return static_cast<TimeNs>(
        static_cast<double>(tsc_now() - tsc_base_) * tsc_ns_per_tick());
  }
#endif
  return static_cast<TimeNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - region_start_)
          .count());
}

ThreadedEngine::Task* ThreadedEngine::make_task(TaskFn body, Task* parent,
                                                StrId src, TimeNs create_time,
                                                u16 create_core, bool inlined) {
  (void)create_time;
  (void)create_core;
  Task* t = new Task();
  t->body = std::move(body);
  t->uid = parent == nullptr ? kRootTask
                             : next_task_id_.fetch_add(1,
                                                       std::memory_order_relaxed);
  t->parent = parent;
  t->src = src;
  t->inlined = inlined;
  return t;
}

void ThreadedEngine::release_task(Task* task) {
  if (task->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete task;
}

void ThreadedEngine::push_task(Task* task, Worker& w) {
  if (opts_.profile) ++w.cnt.deque_pushes;
  if (opts_.scheduler == SchedulerKind::WorkStealing) {
    w.queue->push(task);
    if (telem_ != nullptr)
      telem_->queue_depth->observe(w.queue->size_estimate());
  } else {
    central_queue_.push(task);
  }
}

ThreadedEngine::Task* ThreadedEngine::get_task(Worker& w) {
  const bool prof = opts_.profile;
  if (opts_.scheduler == SchedulerKind::CentralQueue) {
    if (auto t = central_queue_.pop()) {
      if (prof) ++w.cnt.deque_pops;
      return *t;
    }
    return nullptr;
  }
  bool lost = false;
  if (auto t = w.queue->pop(prof ? &lost : nullptr)) {
    if (prof) ++w.cnt.deque_pops;
    return *t;
  }
  if (prof && lost) ++w.cnt.cas_failures;
  // Steal: visit every other worker once, starting at a random victim.
  const int n = opts_.num_workers;
  if (n <= 1) return nullptr;
  const int start = static_cast<int>(w.rng.bounded(static_cast<u64>(n)));
  for (int i = 0; i < n; ++i) {
    const int victim = (start + i) % n;
    if (victim == w.id) continue;
    if (auto t = workers_[static_cast<size_t>(victim)]->queue->steal(
            prof ? &lost : nullptr)) {
      if (prof) ++w.cnt.steals;
      if (telem_ != nullptr) telem_->steals->add();
      return *t;
    }
    if (prof) {
      ++w.cnt.steal_failures;
      if (lost) ++w.cnt.cas_failures;
    }
    if (telem_ != nullptr) telem_->steal_failures->add();
  }
  return nullptr;
}

void ThreadedEngine::exec_task(Task* task, Worker& w) {
  preempt_point(PreemptPoint::TaskExec);
  if (opts_.profile) ++w.cnt.tasks_executed;
  u8 prev_state = static_cast<u8>(WorkerState::Idle);
  TaskId prev_task = kNoTask;
  if (track_worker_health()) {
    prev_state = w.state.exchange(static_cast<u8>(WorkerState::Exec),
                                  std::memory_order_relaxed);
    prev_task = w.current_task.exchange(task->uid, std::memory_order_relaxed);
  }
  CtxImpl ctx(this, &w, task);
  ctx.frag_start_ = now();
  const TimeNs exec_start = ctx.frag_start_;
  task->body(ctx);
  const TimeNs t1 = now();
  if (profiling()) ctx.end_fragment(t1, FragmentEnd::TaskEnd, 0);
  if (telem_ != nullptr) {
    telem_->tasks_executed->add();
    telem_->task_latency_ns->observe(
        t1 > exec_start ? static_cast<u64>(t1 - exec_start) : 0);
  }

  // Release dependence successors: the last finishing predecessor enqueues
  // the waiting task on its own worker's queue.
  {
    std::vector<Task*> succs;
    {
      std::lock_guard lock(task->dep_mutex);
      task->dep_finished = true;
      succs = std::move(task->dep_successors);
    }
    for (Task* s : succs) {
      if (s->pred_count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (supervising_) unregister_blocked(s->uid);
        push_task(s, w);
      }
    }
  }
  if (supervising_ || telem_ != nullptr)
    progress_.fetch_add(1, std::memory_order_relaxed);
  if (track_worker_health()) {
    w.state.store(prev_state, std::memory_order_relaxed);
    w.current_task.store(prev_task, std::memory_order_relaxed);
  }

  Task* parent = task->parent;
  if (parent != nullptr && !task->inlined) {
    live_tasks_.fetch_sub(1, std::memory_order_relaxed);
    parent->live_children.fetch_sub(1, std::memory_order_release);
    release_task(parent);
  }
  release_task(task);
}

void ThreadedEngine::help_until(Worker& w, const std::atomic<u32>& counter) {
  const bool prof = opts_.profile;
  u8 prev_state = static_cast<u8>(WorkerState::Idle);
  if (track_worker_health()) {
    prev_state = w.state.exchange(static_cast<u8>(WorkerState::Taskwait),
                                  std::memory_order_relaxed);
  }
  while (counter.load(std::memory_order_acquire) != 0) {
    if (Task* t = get_task(w)) {
      if (prof) ++w.cnt.taskwait_helps;
      exec_task(t, w);
    } else if (prof) {
      if (track_worker_health())
        w.heartbeat.fetch_add(1, std::memory_order_relaxed);
      w.writer.poll_flush();
      const TimeNs i0 = now();
      preempt_point(PreemptPoint::Idle);
      std::this_thread::yield();
      w.cnt.idle_ns += now() - i0;
    } else {
      preempt_point(PreemptPoint::Idle);
      std::this_thread::yield();
    }
  }
  if (track_worker_health())
    w.state.store(prev_state, std::memory_order_relaxed);
}

void ThreadedEngine::worker_main(int id) {
  Worker& w = *workers_[static_cast<size_t>(id)];
  preempt_thread_start(id);
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (Task* t = get_task(w)) {
      exec_task(t, w);
      continue;
    }
    auto loop = load_loop();
    if (loop && !loop->done.load(std::memory_order_acquire) &&
        w.id < loop->team && w.finished_loop != loop->uid) {
      participate_in_loop(loop, w);
      continue;
    }
    if (track_worker_health())
        w.heartbeat.fetch_add(1, std::memory_order_relaxed);
    w.writer.poll_flush();
    if (opts_.profile) {
      const TimeNs i0 = now();
      preempt_point(PreemptPoint::Idle);
      std::this_thread::yield();
      w.cnt.idle_ns += now() - i0;
    } else {
      preempt_point(PreemptPoint::Idle);
      std::this_thread::yield();
    }
  }
  preempt_thread_stop();
}

void ThreadedEngine::participate_in_loop(const std::shared_ptr<LoopState>& L,
                                         Worker& w) {
  L->active.fetch_add(1, std::memory_order_acq_rel);
  // Re-check after registering: if all iterations are already claimed we
  // leave silently so latecomers do not pollute the trace with book-keeping
  // for a loop they never worked on.
  if (L->done.load(std::memory_order_acquire) ||
      (L->sched != ScheduleKind::Static &&
       L->cursor.load(std::memory_order_relaxed) >= L->hi)) {
    w.finished_loop = L->uid;
    L->active.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  u32 bk_seq = 0;
  u32 chunk_seq = 0;
  bool worked = false;
  while (true) {
    preempt_point(PreemptPoint::LoopClaim);
    const TimeNs bk0 = now();
    auto range = L->claim(w.id);
    const TimeNs bk1 = now();
    if (profiling() && (worked || range.has_value())) {
      BookkeepRec b;
      b.loop = L->uid;
      b.thread = static_cast<u16>(w.id);
      b.core = static_cast<u16>(w.id);
      b.seq_on_thread = bk_seq++;
      b.start = bk0;
      b.end = bk1;
      b.got_chunk = range.has_value();
      w.writer.bookkeep(b);
    }
    if (!range) break;
    worked = true;
    CtxImpl ctx(this, &w, root_task_for_loops_);
    ctx.in_chunk_ = true;
    const TimeNs c0 = now();
    for (u64 i = range->first; i < range->second; ++i) (*L->body)(i, ctx);
    const TimeNs c1 = now();
    if (profiling()) {
      ChunkRec c;
      c.loop = L->uid;
      c.thread = static_cast<u16>(w.id);
      c.core = static_cast<u16>(w.id);
      c.seq_on_thread = chunk_seq++;
      c.iter_begin = range->first;
      c.iter_end = range->second;
      c.start = c0;
      c.end = c1;
      c.counters.compute = c1 - c0;
      w.writer.chunk(c);
    }
    if (telem_ != nullptr)
      telem_->chunk_latency_ns->observe(
          c1 > c0 ? static_cast<u64>(c1 - c0) : 0);
    L->iters_done.fetch_add(range->second - range->first,
                            std::memory_order_acq_rel);
    if (supervising_ || telem_ != nullptr)
      progress_.fetch_add(1, std::memory_order_relaxed);
  }
  w.finished_loop = L->uid;
  L->active.fetch_sub(1, std::memory_order_acq_rel);
}

void ThreadedEngine::run_parallel_for(Worker& w, Task* root_task,
                                      const SrcLoc& loc, u64 lo, u64 hi,
                                      const ForOpts& opts, const LoopFn& body,
                                      TimeNs frag_start, CtxImpl& ctx) {
  (void)frag_start;
  auto L = std::make_shared<LoopState>();
  L->uid = next_loop_id_.fetch_add(1, std::memory_order_relaxed);
  L->src = recorder_->intern_source(loc.file, loc.line, loc.func);
  L->sched = opts.sched;
  L->lo = lo;
  L->hi = hi;
  L->total = hi > lo ? hi - lo : 0;
  L->team = opts.num_threads > 0
                ? std::min(opts.num_threads, opts_.num_workers)
                : opts_.num_workers;
  L->body = &body;
  L->cursor.store(lo, std::memory_order_relaxed);

  if (opts.sched == ScheduleKind::Static) {
    const u64 team = static_cast<u64>(L->team);
    const u64 csize =
        opts.chunk > 0 ? opts.chunk
                       : std::max<u64>(1, (L->total + team - 1) / team);
    L->chunk_min = csize;
    L->static_chunks.assign(static_cast<size_t>(L->team), {});
    L->static_pos.assign(static_cast<size_t>(L->team), 0);
    u64 pos = lo;
    u64 index = 0;
    while (pos < hi) {
      const u64 end = std::min(pos + csize, hi);
      L->static_chunks[static_cast<size_t>(index % team)].emplace_back(pos,
                                                                       end);
      pos = end;
      ++index;
    }
  } else {
    L->chunk_min = std::max<u64>(1, opts.chunk);
  }

  const TimeNs loop_start = now();
  if (profiling()) ctx.end_fragment(loop_start, FragmentEnd::Loop, L->uid);

  const u32 loop_seq = w.loop_seq++;
  if (L->total > 0) {
    store_loop(L);
    participate_in_loop(L, w);
    // Wait for every participant to drain; help with stray tasks meanwhile.
    u8 prev_state = static_cast<u8>(WorkerState::Idle);
    if (track_worker_health()) {
      prev_state = w.state.exchange(static_cast<u8>(WorkerState::LoopWait),
                                    std::memory_order_relaxed);
    }
    while (!(L->iters_done.load(std::memory_order_acquire) == L->total &&
             L->active.load(std::memory_order_acquire) == 0)) {
      if (Task* t = get_task(w)) {
        exec_task(t, w);
      } else if (profiling()) {
        if (track_worker_health())
        w.heartbeat.fetch_add(1, std::memory_order_relaxed);
        w.writer.poll_flush();
        const TimeNs i0 = now();
        preempt_point(PreemptPoint::Idle);
        std::this_thread::yield();
        w.cnt.idle_ns += now() - i0;
      } else {
        preempt_point(PreemptPoint::Idle);
        std::this_thread::yield();
      }
    }
    if (track_worker_health())
      w.state.store(prev_state, std::memory_order_relaxed);
    L->done.store(true, std::memory_order_release);
    store_loop(nullptr);
  }
  const TimeNs loop_end = now();

  if (profiling()) {
    LoopRec rec;
    rec.uid = L->uid;
    rec.enclosing_task = root_task->uid;
    rec.src = L->src;
    rec.sched = opts.sched;
    rec.chunk_param = opts.chunk;
    rec.iter_begin = lo;
    rec.iter_end = hi;
    rec.num_threads = static_cast<u16>(L->team);
    rec.starting_thread = static_cast<u16>(w.id);
    rec.seq = loop_seq;
    rec.start = loop_start;
    rec.end = loop_end;
    w.writer.loop(rec);
  }
  ctx.frag_start_ = now();
}

// ---------------------------------------------------------------------------
// Supervision

void ThreadedEngine::register_blocked(TaskId uid, std::vector<TaskId> preds) {
  std::lock_guard lock(blocked_mutex_);
  blocked_tasks_[uid] = std::move(preds);
}

void ThreadedEngine::unregister_blocked(TaskId uid) {
  std::lock_guard lock(blocked_mutex_);
  blocked_tasks_.erase(uid);
}

SupervisorReport ThreadedEngine::build_supervisor_report(
    TimeNs stalled_ns, const std::vector<u64>& window_beats) {
  SupervisorReport rep;
  rep.stalled_for_ns = stalled_ns;
  rep.progress = progress_.load(std::memory_order_relaxed);
  rep.live_tasks = live_tasks_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    WorkerSnapshot s;
    s.worker = w.id;
    s.state = static_cast<WorkerState>(w.state.load(std::memory_order_relaxed));
    s.heartbeat = w.heartbeat.load(std::memory_order_relaxed);
    s.heartbeat_stuck = i < window_beats.size() && s.heartbeat == window_beats[i];
    s.current_task = w.current_task.load(std::memory_order_relaxed);
    s.queue_depth = opts_.scheduler == SchedulerKind::WorkStealing
                        ? w.queue->size_estimate()
                        : central_queue_.size_estimate();
    rep.workers.push_back(s);
  }
  {
    std::lock_guard lock(blocked_mutex_);
    for (const auto& [uid, preds] : blocked_tasks_) {
      rep.blocked.push_back(BlockedTask{uid, preds});
    }
  }
  rep.detect_dependence_cycle();
  return rep;
}

void ThreadedEngine::watchdog_main() {
  using clock = std::chrono::steady_clock;
  const auto poll = std::chrono::nanoseconds(
      std::max<u64>(opts_.supervisor.poll_interval_ns, 1'000'000));
  auto window_start = clock::now();
  u64 last_progress = progress_.load(std::memory_order_relaxed);
  std::vector<u64> window_beats(workers_.size(), 0);
  auto snapshot_beats = [&] {
    for (size_t i = 0; i < workers_.size(); ++i) {
      window_beats[i] = workers_[i]->heartbeat.load(std::memory_order_relaxed);
    }
  };
  snapshot_beats();
  auto rearm = [&] {
    window_start = clock::now();
    last_progress = progress_.load(std::memory_order_relaxed);
    snapshot_beats();
  };
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll);
    if (watchdog_stop_.load(std::memory_order_acquire)) break;
    if (root_done_.load(std::memory_order_acquire)) {
      rearm();  // region over; only shutdown latency remains
      continue;
    }
    const u64 prog = progress_.load(std::memory_order_relaxed);
    if (prog != last_progress) {
      rearm();
      continue;
    }
    const u64 elapsed_ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             window_start)
            .count());
    if (elapsed_ns < opts_.supervisor.stall_timeout_ns) continue;

    // Stall: no grain completed for a full deadline while the region is
    // still running. (A single legitimate computation longer than the
    // deadline is indistinguishable from a hang — the knob is the contract.)
    SupervisorReport rep = build_supervisor_report(elapsed_ns, window_beats);
    const std::string text = rep.render();
    {
      // Collapse to one provenance note ("supervisor ..."), newline -> "; ".
      std::string line = text;
      while (!line.empty() && line.back() == '\n') line.pop_back();
      for (char& c : line) {
        if (c == '\n') c = ';';
      }
      std::lock_guard lock(supervisor_note_mutex_);
      supervisor_notes_.push_back("supervisor " + line);
    }
    if (opts_.supervisor.dump_on_stall) {
      if (spool_sink_) spool_sink_->append_dump(text);
      std::fputs(text.c_str(), stderr);
    }
    if (opts_.supervisor.on_stall) {
      opts_.supervisor.on_stall(rep);  // may unblock the program
      rearm();
      continue;
    }
    if (opts_.supervisor.abort_on_stall) {
      // Graceful abort-with-flush: make everything already sealed durable
      // and stamp the crash footer with the stall reason, then die loudly.
      if (spool_sink_) spool_sink_->emergency_flush(0, "supervisor stall");
      std::abort();
    }
    rearm();  // note-only mode: keep watching
  }
}

Trace ThreadedEngine::run(const std::string& program_name,
                          const TaskFn& root) {
  recorder_ = std::make_unique<TraceRecorder>(opts_.num_workers);
  // Telemetry context for this run: an explicit registry wins; GG_TELEMETRY
  // falls back to the process-wide one. Disabled (both null) leaves telem_
  // null and every instrumentation site bit-identical to the seed path.
  telemetry_ready_.store(false, std::memory_order_release);
  telem_.reset();
  {
    obs::Registry* reg = opts_.telemetry;
    if (reg == nullptr && obs::env_enabled()) reg = &obs::process_registry();
    if (reg != nullptr && opts_.profile)
      telem_ = std::make_unique<EngineTelemetry>(reg);
  }
  next_task_id_.store(1);
  next_loop_id_.store(1);
  live_tasks_.store(0);
  shutdown_.store(false);
  root_done_.store(false);
  store_loop(nullptr);
  progress_.store(0);
  watchdog_stop_.store(false);
  supervising_ = opts_.supervisor.enabled;
  {
    std::lock_guard lock(supervisor_note_mutex_);
    supervisor_notes_.clear();
  }
  {
    std::lock_guard lock(blocked_mutex_);
    blocked_tasks_.clear();
  }

  // Everything the final meta carries except the (unknown) region end; the
  // spool header's 'M' frame uses the same fields so a crashed run still
  // recovers with full identification.
  auto make_meta = [&](TimeNs region_end) {
    TraceMeta meta;
    meta.program = program_name;
    if (opts_.scheduler == SchedulerKind::WorkStealing) {
      // Chase-Lev stays plain "threaded/ws" (bit-compatible with pre-backend
      // traces); alternatives carry a suffix so analyses can tell them apart.
      meta.runtime = opts_.queue_backend == QueueBackend::ChaseLev
                         ? "threaded/ws"
                         : std::string("threaded/ws-") +
                               to_string(opts_.queue_backend);
    } else {
      meta.runtime = "threaded/central";
    }
    meta.topology = "host";
    meta.num_workers = opts_.num_workers;
    meta.num_cores = opts_.num_workers;
    meta.ghz = 1.0;  // cycles are nanoseconds in threaded executions
    meta.region_start = 0;
    meta.region_end = region_end;
    meta.notes = region_notes_;
    {
      std::lock_guard lock(supervisor_note_mutex_);
      for (const std::string& n : supervisor_notes_) meta.notes.push_back(n);
    }
    meta.profiled = opts_.profile;
#if defined(__x86_64__) || defined(__i386__)
    meta.clock_source = opts_.strict_clock ? "steady_clock" : "tsc";
#else
    meta.clock_source = "steady_clock";
#endif
    return meta;
  };

  spool_sink_.reset();
  if (opts_.profile && opts_.spool.enabled()) {
    spool::SpoolOptions sopts = opts_.spool;
    if (telem_ != nullptr) {
      // Live monitoring: the sink samples this engine's atomics on a timer
      // and appends 'T' frames a `ggstat --follow` can tail. The callback
      // is gated by telemetry_ready_ — the sink opens before the workers
      // exist.
      sopts.telemetry = telem_->reg;
      if (sopts.telemetry_interval_ns == 0)
        sopts.telemetry_interval_ns = 10'000'000;
      if (!sopts.telemetry_source)
        sopts.telemetry_source = [this] { return telemetry_payload(); };
    }
    std::string spool_err;
    spool_sink_ = spool::SpoolSink::open(sopts, make_meta(0),
                                         opts_.num_workers, &spool_err);
    if (spool_sink_) {
      recorder_->attach_spool(spool_sink_.get(), opts_.spool.epoch_bytes);
    } else {
      region_notes_.push_back("spool disabled: " + spool_err);
    }
  }

  workers_.clear();
  // One shared stuttering clock per run keeps TSDeque stamps comparable
  // across worker deques; other backends ignore it.
  ts_clock_ = opts_.queue_backend == QueueBackend::TSDeque
                  ? std::make_unique<StutteringStamp>(opts_.num_workers)
                  : nullptr;
  for (int i = 0; i < opts_.num_workers; ++i) {
    WorkQueueConfig qcfg;
    qcfg.clock = ts_clock_.get();
    qcfg.owner_slot = i;
    workers_.push_back(std::make_unique<Worker>(
        i, make_work_queue<Task*>(opts_.queue_backend, qcfg),
        recorder_->writer(i), mix64(0x9e3779b9u + static_cast<u64>(i))));
  }

  region_start_ = std::chrono::steady_clock::now();
#if defined(__x86_64__) || defined(__i386__)
  tsc_ns_per_tick();  // calibrate before the region starts
  tsc_base_ = tsc_now();
#endif
  if (telem_ != nullptr) {
    telem_->last_progress = 0;
    telem_->last_change_mono_ns = obs::mono_ns();
    telemetry_ready_.store(true, std::memory_order_release);
  }
  // Register with a schedule controller (if installed) BEFORE the worker
  // threads exist: worker 0 is the first registrant, so it takes the token
  // deterministically and the whole region is explored serialized.
  preempt_thread_start(0);
  for (int i = 1; i < opts_.num_workers; ++i) {
    Worker* w = workers_[static_cast<size_t>(i)].get();
    w->thread = std::thread([this, i] { worker_main(i); });
  }
  // The watchdog never takes the schedule-controller token: it only samples
  // atomics and fires on wall-clock deadlines.
  if (supervising_) watchdog_ = std::thread([this] { watchdog_main(); });

  Task* root_task = make_task(root, nullptr,
                              recorder_->intern("<root>"), 0, 0, false);
  root_task_for_loops_ = root_task;
  Worker& w0 = *workers_[0];
  if (profiling()) {
    TaskRec rec;
    rec.uid = kRootTask;
    rec.parent = kNoTask;
    rec.src = root_task->src;
    w0.writer.task(rec);
  }

  // Execute the root body as the implicit task of the parallel region, with
  // an implicit barrier (drain of all outstanding tasks) at the end.
  CtxImpl ctx(this, &w0, root_task);
  if (track_worker_health()) {
    w0.state.store(static_cast<u8>(WorkerState::Exec),
                   std::memory_order_relaxed);
    w0.current_task.store(kRootTask, std::memory_order_relaxed);
  }
  ctx.frag_start_ = now();
  root_task->body(ctx);
  const TimeNs body_end = now();

  const bool need_implicit_join =
      ctx.children_since_join_ > 0 ||
      live_tasks_.load(std::memory_order_acquire) > 0;
  if (need_implicit_join) {
    const u32 jseq = ctx.next_join_seq_++;
    if (profiling()) ctx.end_fragment(body_end, FragmentEnd::Join, jseq);
    if (track_worker_health()) {
      w0.state.store(static_cast<u8>(WorkerState::Taskwait),
                     std::memory_order_relaxed);
    }
    while (live_tasks_.load(std::memory_order_acquire) != 0) {
      if (Task* t = get_task(w0)) {
        exec_task(t, w0);
      } else if (profiling()) {
        if (track_worker_health())
          w0.heartbeat.fetch_add(1, std::memory_order_relaxed);
        w0.writer.poll_flush();
        const TimeNs i0 = now();
        preempt_point(PreemptPoint::Idle);
        std::this_thread::yield();
        w0.cnt.idle_ns += now() - i0;
      } else {
        preempt_point(PreemptPoint::Idle);
        std::this_thread::yield();
      }
    }
    if (track_worker_health()) {
      w0.state.store(static_cast<u8>(WorkerState::Idle),
                     std::memory_order_relaxed);
    }
    const TimeNs barrier_end = now();
    if (profiling()) {
      JoinRec j;
      j.task = kRootTask;
      j.seq = jseq;
      j.start = body_end;
      j.end = barrier_end;
      j.core = 0;
      w0.writer.join(j);
      ctx.frag_start_ = barrier_end;
    }
  }
  const TimeNs region_end = now();
  if (profiling()) ctx.end_fragment(region_end, FragmentEnd::TaskEnd, 0);
  root_done_.store(true, std::memory_order_release);

  // The shutdown store happens while this thread still holds the schedule
  // token (if a controller is installed), and the token is handed over
  // BEFORE the joins: joining while holding it would deadlock the
  // serialized schedule, and storing the flag after releasing it would make
  // the workers' final idle iterations nondeterministic.
  shutdown_.store(true, std::memory_order_release);
  preempt_thread_stop();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  if (watchdog_.joinable()) {
    watchdog_stop_.store(true, std::memory_order_release);
    watchdog_.join();
  }
  release_task(root_task);
  root_task_for_loops_ = nullptr;

  // Scheduler introspection: every worker thread has joined, so their
  // counters (and the deques' owner-only resize counts) are safe to read
  // from here. trace_bytes is sampled before the stats record itself is
  // appended, making it the footprint of the worker's grain events proper.
  if (opts_.profile) {
    for (auto& w : workers_) {
      WorkerStatsRec s;
      s.worker = static_cast<u16>(w->id);
      s.tasks_spawned = w->cnt.tasks_spawned;
      s.tasks_executed = w->cnt.tasks_executed;
      s.tasks_inlined = w->cnt.tasks_inlined;
      s.steals = w->cnt.steals;
      s.steal_failures = w->cnt.steal_failures;
      s.cas_failures = w->cnt.cas_failures;
      s.deque_pushes = w->cnt.deque_pushes;
      s.deque_pops = w->cnt.deque_pops;
      s.deque_resizes = w->queue->grow_count();
      s.taskwait_helps = w->cnt.taskwait_helps;
      s.idle_ns = w->cnt.idle_ns;
      s.trace_bytes = w->writer.recorded_bytes();
      w->writer.stats(s);
    }
  }

  TraceMeta meta = make_meta(region_end);
  if (telem_ != nullptr && opts_.profile) {
    // Self-measured recorder overhead: time the per-grain instrumentation
    // primitive (two clock reads plus one buffer append), scale by the
    // grains recorded, compare to region wall time. Stamped as a provenance
    // note so reports can flag runs that bust the paper's 2.5% budget.
    std::vector<FragmentRec> scratch;
    scratch.reserve(512);
    const TimeNs c0 = now();
    for (int i = 0; i < 512; ++i) {
      FragmentRec f;
      f.start = now();
      f.end = now();
      scratch.push_back(f);
    }
    const TimeNs c1 = now();
    const double per_grain = static_cast<double>(c1 - c0) / 512.0;
    const u64 grains = progress_.load(std::memory_order_relaxed);
    const double pct =
        region_end > 0
            ? 100.0 * per_grain * static_cast<double>(grains) /
                  static_cast<double>(region_end)
            : 0.0;
    char note[128];
    std::snprintf(note, sizeof note,
                  "recorder overhead_pct=%.3f grains=%llu est_ns_per_grain=%.0f",
                  pct, static_cast<unsigned long long>(grains), per_grain);
    meta.notes.push_back(note);
    telem_->reg->gauge("engine.recorder_overhead_pct")->set(pct);
    telem_->reg->gauge("engine.progress")
        ->set(static_cast<double>(grains));
  }
  if (!opts_.profile) {
    // Produce an empty (but well-formed) trace carrying only the makespan —
    // used by the profiling-overhead experiment.
    TraceRecorder empty(1);
    Trace t = empty.finish(meta);
    recorder_.reset();
    return t;
  }
  Trace trace;
  if (recorder_->spool() != nullptr) {
    // Spooled run: seal the tails, write the clean footer, then reconstruct
    // the trace from the spool file — the exact pipeline a crashed run's
    // recovery uses, so it is exercised on every clean shutdown too.
    recorder_->finish_to_spool(meta);
    std::string rec_err;
    spool::RecoverResult rr =
        spool::recover_spool_file(opts_.spool.path, &rec_err);
    spool_sink_.reset();
    if (rr.usable) {
      trace = std::move(rr.trace);
    } else {
      // The spool file went bad under us (disk trouble): return an empty
      // but well-formed trace that says why instead of dying here.
      trace.meta = meta;
      trace.meta.notes.push_back("spool recovery failed: " +
                                 (rec_err.empty() ? rr.report.summary()
                                                  : rec_err));
      trace.finalize();
    }
  } else {
    trace = recorder_->finish(meta);
  }
  recorder_.reset();
  if (opts_.fault_plan) {
    const fault::InjectionReport rep = fault::inject(trace, *opts_.fault_plan);
    trace.meta.notes.push_back(
        "fault_injection seed=" + std::to_string(opts_.fault_plan->seed) +
        " " + rep.summary());
  }
  return trace;
}

std::string ThreadedEngine::telemetry_payload() {
  // Called from the spool's flusher thread. Reads only atomics that exist
  // for supervision/accounting already (heartbeats, worker state, progress,
  // queue bounds), so the sampler never races worker-private state. The
  // ready gate covers the window where the sink is open but the workers
  // are not yet constructed (and the next run's reset).
  if (telem_ == nullptr || !telemetry_ready_.load(std::memory_order_acquire))
    return {};
  obs::Registry& reg = *telem_->reg;
  const u64 tnow = obs::mono_ns();
  const u64 prog = progress_.load(std::memory_order_relaxed);
  reg.gauge("engine.progress")->set(static_cast<double>(prog));
  reg.gauge("engine.live_tasks")
      ->set(static_cast<double>(live_tasks_.load(std::memory_order_relaxed)));
  if (prog != telem_->last_progress) {
    telem_->last_progress = prog;
    telem_->last_change_mono_ns = tnow;
  }
  // Heartbeat lag: how long since any grain completed — the supervisor's
  // stall signal, exported continuously.
  reg.gauge("engine.progress_stall_ns")
      ->set(static_cast<double>(tnow - telem_->last_change_mono_ns));
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    const std::string prefix = "engine.worker." + std::to_string(i);
    reg.gauge(prefix + ".heartbeat")
        ->set(static_cast<double>(w.heartbeat.load(std::memory_order_relaxed)));
    reg.gauge(prefix + ".state")
        ->set(static_cast<double>(w.state.load(std::memory_order_relaxed)));
    reg.gauge(prefix + ".queue_depth")
        ->set(static_cast<double>(w.queue->size_estimate()));
    // Per-backend contention signal: lost claim CASes (lock-free backends)
    // or contended lock acquisitions (locked / flat-combining backends).
    reg.gauge(prefix + ".queue_contention")
        ->set(static_cast<double>(w.queue->contention_events()));
  }
  if (spool_sink_ != nullptr) {
    reg.gauge("spool.payload_bytes")
        ->set(static_cast<double>(spool_sink_->payload_bytes()));
    u64 epochs = 0;
    for (int w = 0; w < opts_.num_workers; ++w)
      epochs += spool_sink_->epochs_sealed(static_cast<u32>(w));
    reg.gauge("spool.epochs_sealed")->set(static_cast<double>(epochs));
  }
  obs::MetricsSnapshot snap = reg.snapshot();
  snap.ts_ns = tnow;
  return obs::encode_telemetry_payload(snap);
}

}  // namespace gg::rts
