// The common work-queue concept behind the runtime's pluggable scheduler
// backends (ROADMAP item 2: low-contention alternatives to the Chase-Lev
// deque, validated by the differential oracle instead of asserted correct).
//
// Every backend exposes the same owner/thief protocol:
//   * push(v)        — owner-only, publishes at the newest end
//   * pop(&lost)     — owner-only, claims the newest value (LIFO)
//   * steal(&lost)   — any thread, claims the oldest value (FIFO)
// plus introspection used by the engine's stats/telemetry/supervisor paths
// (size_estimate, grow_count, contention_events). `lost_race` reports a
// claim lost to a competitor, feeding the cas_failures worker counter.
//
// Backends:
//   ChaseLev — the lock-free Chase-Lev deque (chase_lev_deque.hpp)
//   OFDeque  — obstruction-free segmented deque, per-cell claim CAS
//   FCDeque  — flat combining over a sequential deque
//   TSDeque  — timestamped deque with stuttering per-thread clocks
//   Central  — a mutex-protected deque; as a per-worker queue this is the
//              "locked deque" foil, while SchedulerKind::CentralQueue keeps
//              using the engine's single shared FIFO (central_queue.hpp)
//
// The virtual dispatch sits on the task-granularity path (hundreds of
// nanoseconds to microseconds per operation), not inside the per-slot
// atomics, so the indirection is noise next to the queue work itself —
// bench/perf_deque.cpp measures exactly this.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "rts/central_queue.hpp"
#include "rts/chase_lev_deque.hpp"
#include "rts/fc_deque.hpp"
#include "rts/of_deque.hpp"
#include "rts/preempt.hpp"
#include "rts/ts_deque.hpp"
#include "rts/ts_stamp.hpp"

namespace gg::rts {

/// Which per-worker queue implementation the scheduler uses.
enum class QueueBackend : u8 { ChaseLev, OFDeque, FCDeque, TSDeque, Central };

inline const char* to_string(QueueBackend b) {
  switch (b) {
    case QueueBackend::ChaseLev: return "chase-lev";
    case QueueBackend::OFDeque: return "of";
    case QueueBackend::FCDeque: return "fc";
    case QueueBackend::TSDeque: return "ts";
    case QueueBackend::Central: return "locked";
  }
  return "?";
}

/// All selectable backends, in a stable order (tests/bench sweep this).
inline constexpr QueueBackend kAllQueueBackends[] = {
    QueueBackend::ChaseLev, QueueBackend::OFDeque, QueueBackend::FCDeque,
    QueueBackend::TSDeque, QueueBackend::Central};

inline bool parse_queue_backend(const std::string& s, QueueBackend& out) {
  for (QueueBackend b : kAllQueueBackends) {
    if (s == to_string(b)) {
      out = b;
      return true;
    }
  }
  return false;
}

template <typename T>
class WorkQueue {
 public:
  virtual ~WorkQueue() = default;
  virtual void push(T value) = 0;
  virtual std::optional<T> pop(bool* lost_race = nullptr) = 0;
  virtual std::optional<T> steal(bool* lost_race = nullptr) = 0;
  virtual size_t size_estimate() const = 0;
  virtual u64 grow_count() const = 0;
  virtual u64 contention_events() const = 0;
  virtual QueueBackend backend() const = 0;
  bool empty_estimate() const { return size_estimate() == 0; }
  const char* backend_name() const { return to_string(backend()); }
};

namespace detail {

template <typename T>
class ChaseLevWorkQueue final : public WorkQueue<T> {
 public:
  explicit ChaseLevWorkQueue(size_t initial_capacity)
      : dq_(initial_capacity) {}
  void push(T value) override { dq_.push(value); }
  std::optional<T> pop(bool* lost_race) override {
    return count_lost(dq_.pop(lost_race), lost_race);
  }
  std::optional<T> steal(bool* lost_race) override {
    return count_lost(dq_.steal(lost_race), lost_race);
  }
  size_t size_estimate() const override { return dq_.size_estimate(); }
  u64 grow_count() const override { return dq_.resize_count(); }
  u64 contention_events() const override {
    return contention_.load(std::memory_order_relaxed);
  }
  QueueBackend backend() const override { return QueueBackend::ChaseLev; }

 private:
  std::optional<T> count_lost(std::optional<T> v, const bool* lost) {
    if (lost != nullptr && *lost) {
      contention_.fetch_add(1, std::memory_order_relaxed);
    }
    return v;
  }
  ChaseLevDeque<T> dq_;
  std::atomic<u64> contention_{0};
};

template <typename T>
class OFWorkQueue final : public WorkQueue<T> {
 public:
  explicit OFWorkQueue(size_t segment_capacity) : dq_(segment_capacity) {}
  void push(T value) override { dq_.push(value); }
  std::optional<T> pop(bool* lost_race) override { return dq_.pop(lost_race); }
  std::optional<T> steal(bool* lost_race) override {
    return dq_.steal(lost_race);
  }
  size_t size_estimate() const override { return dq_.size_estimate(); }
  u64 grow_count() const override { return dq_.grow_count(); }
  u64 contention_events() const override { return dq_.contention_events(); }
  QueueBackend backend() const override { return QueueBackend::OFDeque; }

 private:
  OFDeque<T> dq_;
};

template <typename T>
class FCWorkQueue final : public WorkQueue<T> {
 public:
  void push(T value) override { dq_.push(value); }
  std::optional<T> pop(bool* lost_race) override { return dq_.pop(lost_race); }
  std::optional<T> steal(bool* lost_race) override {
    return dq_.steal(lost_race);
  }
  size_t size_estimate() const override { return dq_.size_estimate(); }
  u64 grow_count() const override { return dq_.grow_count(); }
  u64 contention_events() const override { return dq_.contention_events(); }
  QueueBackend backend() const override { return QueueBackend::FCDeque; }

 private:
  FCDeque<T> dq_;
};

template <typename T>
class TSWorkQueue final : public WorkQueue<T> {
 public:
  TSWorkQueue(size_t segment_capacity, StutteringStamp* clock, int owner_slot)
      : dq_(segment_capacity, clock, owner_slot) {}
  void push(T value) override { dq_.push(value); }
  std::optional<T> pop(bool* lost_race) override { return dq_.pop(lost_race); }
  std::optional<T> steal(bool* lost_race) override {
    return dq_.steal(lost_race);
  }
  size_t size_estimate() const override { return dq_.size_estimate(); }
  u64 grow_count() const override { return dq_.grow_count(); }
  u64 contention_events() const override { return dq_.contention_events(); }
  QueueBackend backend() const override { return QueueBackend::TSDeque; }

 private:
  TSDeque<T> dq_;
};

/// A mutex-protected deque used per worker: pop takes the back (LIFO),
/// steal the front (FIFO) — the distributed "locked deque" foil. Contention
/// is a failed try_lock (somebody was inside the critical section).
/// Preemption points reuse the central queue's lock-class points and sit
/// BEFORE the acquisition, for the reason documented in central_queue.hpp.
template <typename T>
class LockedWorkQueue final : public WorkQueue<T> {
 public:
  void push(T value) override {
    preempt_point(PreemptPoint::QueuePush);
    std::lock_guard<std::mutex> guard(acquire(), std::adopt_lock);
    items_.push_back(value);
  }
  std::optional<T> pop(bool* lost_race) override {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::QueuePop);
    std::lock_guard<std::mutex> guard(acquire(), std::adopt_lock);
    if (items_.empty()) return std::nullopt;
    T v = items_.back();
    items_.pop_back();
    return v;
  }
  std::optional<T> steal(bool* lost_race) override {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::QueuePop);
    std::lock_guard<std::mutex> guard(acquire(), std::adopt_lock);
    if (items_.empty()) return std::nullopt;
    T v = items_.front();
    items_.pop_front();
    return v;
  }
  size_t size_estimate() const override {
    std::lock_guard<std::mutex> guard(mutex_);
    return items_.size();
  }
  u64 grow_count() const override { return 0; }
  u64 contention_events() const override {
    return contention_.load(std::memory_order_relaxed);
  }
  QueueBackend backend() const override { return QueueBackend::Central; }

 private:
  // Locks mutex_, counting acquisitions that found it held; callers adopt
  // the ownership via lock_guard's adopt-lock constructor.
  std::mutex& acquire() {
    if (!mutex_.try_lock()) {
      contention_.fetch_add(1, std::memory_order_relaxed);
      mutex_.lock();
    }
    return mutex_;
  }
  mutable std::mutex mutex_;
  std::deque<T> items_;
  std::atomic<u64> contention_{0};
};

}  // namespace detail

/// Construction-time knobs shared by the backends.
struct WorkQueueConfig {
  /// Chase-Lev initial capacity / OF & TS segment capacity.
  size_t initial_capacity = 64;
  /// Shared stuttering clock for TSDeque (null -> private clock).
  StutteringStamp* clock = nullptr;
  /// This queue's owner slot in the shared clock.
  int owner_slot = 0;
};

template <typename T>
std::unique_ptr<WorkQueue<T>> make_work_queue(
    QueueBackend backend, const WorkQueueConfig& cfg = {}) {
  switch (backend) {
    case QueueBackend::ChaseLev:
      return std::make_unique<detail::ChaseLevWorkQueue<T>>(
          cfg.initial_capacity);
    case QueueBackend::OFDeque:
      return std::make_unique<detail::OFWorkQueue<T>>(cfg.initial_capacity);
    case QueueBackend::FCDeque:
      return std::make_unique<detail::FCWorkQueue<T>>();
    case QueueBackend::TSDeque:
      return std::make_unique<detail::TSWorkQueue<T>>(
          cfg.initial_capacity, cfg.clock, cfg.owner_slot);
    case QueueBackend::Central:
      return std::make_unique<detail::LockedWorkQueue<T>>();
  }
  return nullptr;
}

}  // namespace gg::rts
