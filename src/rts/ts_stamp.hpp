// Stuttering per-thread timestamps for the timestamped deque (TSDeque).
//
// The idea comes from scal's StutteringTimeStamp (see SNIPPETS.md §3): each
// thread owns a cacheline-padded clock, and taking a timestamp reads every
// clock, stores max+1 into the taker's own clock, and returns it. Two
// threads can obtain the *same* value (the clocks "stutter"), which the
// timestamped containers tolerate by treating equal stamps as concurrent —
// what matters is that each thread's own stamps are strictly increasing and
// that a stamp taken after another thread's store is never smaller. That
// gives a cheap relaxed global order with no contended fetch_add.
//
// Protocol invariant the TSDeque relies on: clocks start at 1, so every
// stamp handed out is >= 2. Stamp values 0 (unpublished) and 1 (claimed)
// are reserved sentinels in the deque nodes; the seeded mutation
// GG_MUT_TS_NONMONOTONIC_STAMP (see ts_deque.hpp) breaks exactly this
// monotonicity contract.
#pragma once

#include <atomic>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace gg::rts {

class StutteringStamp {
 public:
  /// Lowest stamp acquire() can ever return (clocks start at 1).
  static constexpr u64 kFirstStamp = 2;

  explicit StutteringStamp(int slots) : clocks_(static_cast<size_t>(slots)) {
    GG_CHECK(slots >= 1);
  }

  StutteringStamp(const StutteringStamp&) = delete;
  StutteringStamp& operator=(const StutteringStamp&) = delete;

  int slots() const { return static_cast<int>(clocks_.size()); }

  /// Takes a new timestamp on behalf of `slot`: max over all clocks plus
  /// one, stored back into the caller's clock. Strictly increasing per
  /// slot; globally only weakly ordered (stutters are allowed).
  u64 acquire(int slot) {
    u64 latest = 0;
    for (const Clock& c : clocks_) {
      const u64 v = c.value.load(std::memory_order_acquire);
      if (v > latest) latest = v;
    }
#ifdef GG_MUT_TS_NONMONOTONIC_STAMP
    // Seeded bug: the clock fails to advance — it hands out latest-1, which
    // collides with the deque's reserved sentinels (a node stamped 0 looks
    // unpublished forever), so pushed values silently vanish.
    const u64 stamp = latest - 1;
#else
    const u64 stamp = latest + 1;
#endif
    clocks_[static_cast<size_t>(slot)].value.store(stamp,
                                                   std::memory_order_release);
    return stamp;
  }

  /// Most recent stamp taken by `slot` (diagnostics).
  u64 last(int slot) const {
    return clocks_[static_cast<size_t>(slot)].value.load(
        std::memory_order_relaxed);
  }

 private:
  struct Clock {
    alignas(64) std::atomic<u64> value{1};
  };
  std::vector<Clock> clocks_;
};

}  // namespace gg::rts
