// Runtime supervision: watchdog options, stall reports, and the modeled
// post-hoc scan. Header-only so both engines share one vocabulary — the
// threaded runtime (rts/threaded_engine.cpp) runs a live watchdog thread
// over per-worker heartbeats, while the simulator applies the modeled
// trace scan (supervisor_scan_trace) to its deterministic output, so the
// reporting/provenance code paths are exercised by both.
//
// What the watchdog detects: the profiled region making *no progress*
// (no task, chunk or join completed) for longer than the stall deadline
// while work is still outstanding — every worker parked idle, spinning in
// a taskwait/loop barrier, or wedged inside user code with a frozen
// heartbeat. On stall it assembles a structured diagnostic (per-worker
// state, queue depths, dependence-blocked tasks with chain/cycle
// analysis), spools it as a 'D' frame, and either calls the test hook or
// aborts gracefully — the crash handlers then stamp "supervisor stall"
// provenance so the recovered trace explains why the run died.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace gg::rts {

/// What a worker was doing when the supervisor sampled it.
enum class WorkerState : u8 {
  Idle = 0,      ///< scheduling loop found nothing to run
  Exec = 1,      ///< inside a task body (or wedged in user code)
  Taskwait = 2,  ///< parked/helping inside a taskwait or implicit barrier
  LoopWait = 3,  ///< waiting for a parallel-for team to drain
};

inline const char* to_string(WorkerState s) {
  switch (s) {
    case WorkerState::Idle: return "idle";
    case WorkerState::Exec: return "exec";
    case WorkerState::Taskwait: return "taskwait";
    case WorkerState::LoopWait: return "loopwait";
  }
  return "?";
}

struct SupervisorReport;

struct SupervisorOptions {
  /// Off by default: supervision costs a watchdog thread plus per-worker
  /// heartbeat stores on the idle paths.
  bool enabled = false;
  /// No completed grain for this long (while work is outstanding) == stall.
  /// Long single-grain computations must fit under this deadline.
  TimeNs stall_timeout_ns = 2'000'000'000;
  /// Watchdog sampling period.
  TimeNs poll_interval_ns = 10'000'000;
  /// Emit the diagnostic dump (stderr + spool 'D' frame) on stall.
  bool dump_on_stall = true;
  /// Graceful abort-with-flush on stall: spool an emergency crash footer
  /// ("supervisor stall") and std::abort(). Ignored when on_stall is set.
  bool abort_on_stall = true;
  /// Test hook: invoked instead of aborting; may unblock the program (the
  /// watchdog keeps running and can fire again).
  std::function<void(const SupervisorReport&)> on_stall;
};

/// One worker's state at stall time (all fields sampled from atomics).
struct WorkerSnapshot {
  int worker = 0;
  WorkerState state = WorkerState::Idle;
  u64 heartbeat = 0;       ///< scheduler-loop ticks; frozen == wedged
  bool heartbeat_stuck = false;  ///< unchanged across the stall window
  TaskId current_task = kNoTask;
  size_t queue_depth = 0;
};

/// A spawned task whose dependences have not all resolved.
struct BlockedTask {
  TaskId uid = 0;
  std::vector<TaskId> waiting_on;  ///< predecessor uids still outstanding
};

struct SupervisorReport {
  TimeNs stalled_for_ns = 0;
  u64 progress = 0;      ///< grains completed when the stall was declared
  u64 live_tasks = 0;    ///< deferred tasks still outstanding
  std::vector<WorkerSnapshot> workers;
  std::vector<BlockedTask> blocked;
  /// Non-empty when the blocked tasks' wait-for edges close a cycle (a
  /// dependence deadlock); lists the uids along the cycle.
  std::vector<TaskId> dep_cycle;
  bool modeled = false;  ///< produced by the post-hoc trace scan (sim)

  /// Multi-line human-readable diagnostic (what lands in the 'D' frame).
  std::string render() const {
    std::string out;
    out += modeled ? "supervisor (modeled): " : "supervisor: ";
    out += "no progress for ";
    out += std::to_string(stalled_for_ns / 1000000);
    out += "ms with ";
    out += std::to_string(live_tasks);
    out += " live tasks (progress=";
    out += std::to_string(progress);
    out += ")\n";
    for (const WorkerSnapshot& w : workers) {
      out += "  worker ";
      out += std::to_string(w.worker);
      out += ": ";
      out += to_string(w.state);
      if (w.current_task != kNoTask) {
        out += " task=";
        out += std::to_string(w.current_task);
      }
      out += " queue=";
      out += std::to_string(w.queue_depth);
      out += " heartbeat=";
      out += std::to_string(w.heartbeat);
      if (w.heartbeat_stuck) out += " (stuck)";
      out += "\n";
    }
    for (const BlockedTask& b : blocked) {
      out += "  blocked task ";
      out += std::to_string(b.uid);
      out += " waiting on";
      for (TaskId p : b.waiting_on) {
        out += ' ';
        out += std::to_string(p);
      }
      out += "\n";
    }
    if (!dep_cycle.empty()) {
      out += "  dependence cycle:";
      for (TaskId t : dep_cycle) {
        out += ' ';
        out += std::to_string(t);
      }
      out += "\n";
    }
    return out;
  }

  /// Walks the blocked tasks' wait-for edges and fills dep_cycle if they
  /// close a loop. The engines' spawn-ordering makes true cycles
  /// impossible, so a hit here means corrupted bookkeeping or an injected
  /// fault — exactly what a crash dump should call out.
  void detect_dependence_cycle() {
    dep_cycle.clear();
    // wait-for edges restricted to tasks that are themselves blocked.
    auto find = [this](TaskId uid) -> const BlockedTask* {
      for (const BlockedTask& b : blocked) {
        if (b.uid == uid) return &b;
      }
      return nullptr;
    };
    for (const BlockedTask& start : blocked) {
      std::vector<TaskId> path;
      TaskId cur = start.uid;
      // Follow first-blocked-predecessor chains; bounded by the blocked set.
      for (size_t steps = 0; steps <= blocked.size(); ++steps) {
        for (TaskId seen : path) {
          if (seen == cur) {
            dep_cycle.assign(path.begin(), path.end());
            dep_cycle.push_back(cur);
            return;
          }
        }
        path.push_back(cur);
        const BlockedTask* b = find(cur);
        if (b == nullptr) break;
        const BlockedTask* next = nullptr;
        for (TaskId p : b->waiting_on) {
          if ((next = find(p)) != nullptr) break;
        }
        if (next == nullptr) break;
        cur = next->uid;
      }
    }
  }
};

/// The simulator's modeled equivalent of the live watchdog: scans a
/// finalized trace for the largest wall-clock window with no grain
/// boundary (fragment/chunk/bookkeep/join start or end) inside the
/// profiled region. Returns a report when that window exceeds the stall
/// deadline; per-worker snapshots are synthesized from worker stats. A
/// healthy deterministic simulation never trips this — which is itself the
/// property the sim contract test asserts.
inline bool supervisor_scan_trace(const Trace& trace,
                                  const SupervisorOptions& opts,
                                  SupervisorReport* out) {
  std::vector<TimeNs> events;
  events.push_back(trace.meta.region_start);
  events.push_back(trace.meta.region_end);
  for (const auto& f : trace.fragments) {
    events.push_back(f.start);
    events.push_back(f.end);
  }
  for (const auto& j : trace.joins) {
    events.push_back(j.start);
    events.push_back(j.end);
  }
  for (const auto& c : trace.chunks) {
    events.push_back(c.start);
    events.push_back(c.end);
  }
  for (const auto& b : trace.bookkeeps) {
    events.push_back(b.start);
    events.push_back(b.end);
  }
  std::sort(events.begin(), events.end());
  TimeNs max_gap = 0;
  for (size_t i = 1; i < events.size(); ++i) {
    const TimeNs gap = events[i] - events[i - 1];
    max_gap = std::max(max_gap, gap);
  }
  if (max_gap < opts.stall_timeout_ns) return false;
  SupervisorReport rep;
  rep.modeled = true;
  rep.stalled_for_ns = max_gap;
  rep.progress = trace.grain_count();
  for (const auto& s : trace.worker_stats) {
    WorkerSnapshot w;
    w.worker = s.worker;
    w.state = WorkerState::Idle;
    w.heartbeat = s.tasks_executed;
    rep.workers.push_back(w);
  }
  if (out != nullptr) *out = std::move(rep);
  return true;
}

}  // namespace gg::rts
