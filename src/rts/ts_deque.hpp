// Timestamped work-stealing deque (TSDeque), after scal's ts_deque.
//
// Every pushed value is stamped with a stuttering per-thread timestamp
// (rts/ts_stamp.hpp, SNIPPETS.md §3): cheap per-thread clocks that give a
// relaxed global order without a contended fetch_add. The stamp doubles as
// the claim word — a node's atomic stamp moves through
//
//     0 (unpublished)  ->  s >= 2 (ready, timestamp s)  ->  1 (claimed)
//
// so publishing is a release store of the stamp and claiming is a single
// CAS s->1; two claimants can never both win, and the reserved sentinels
// 0/1 are exactly what the clock's monotonicity contract protects (clocks
// start at 1, so real stamps are always >= 2 — the seeded mutation
// GG_MUT_TS_NONMONOTONIC_STAMP in ts_stamp.hpp breaks this and stamps
// collide with "unpublished").
//
// A single owner pushes, so within one deque index order equals stamp
// order: the owner pops the youngest ready node (highest index, LIFO) and
// thieves claim the oldest ready node (lowest index / minimal stamp, FIFO)
// — the single-owner specialization of scal's remove-oldest rule. Across
// worker deques the shared StutteringStamp instance (threaded_engine wires
// one per engine) keeps stamps comparable, which the engine reports as
// per-worker steal-order diagnostics. Nodes live in an append-only chain
// of segments, are never reused (no ABA on the claim word), and are
// retained until destruction, like the other backends.
//
// Preemption points mark the stamp acquisition and every publish/claim
// step so the deterministic schedule controller can explore interleavings.
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "common/check.hpp"
#include "common/types.hpp"
#include "rts/preempt.hpp"
#include "rts/ts_stamp.hpp"

namespace gg::rts {

template <typename T>
class TSDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "nodes are raw atomics; store pointers or handles");

 public:
  /// `clock` may be shared across deques (the engine shares one per run so
  /// stamps are comparable across workers); null makes a private clock.
  /// `owner_slot` is this deque's owner index into the shared clock.
  explicit TSDeque(size_t segment_capacity = 64,
                   StutteringStamp* clock = nullptr, int owner_slot = 0)
      : segment_capacity_(segment_capacity < 2 ? 2 : segment_capacity),
        owner_slot_(owner_slot) {
    if (clock == nullptr) {
      own_clock_ = std::make_unique<StutteringStamp>(1);
      clock_ = own_clock_.get();
      owner_slot_ = 0;
    } else {
      GG_CHECK(owner_slot >= 0 && owner_slot < clock->slots());
      clock_ = clock;
    }
    Segment* seg = new Segment(0, segment_capacity_, nullptr);
    first_.store(seg, std::memory_order_release);
    tail_seg_ = seg;
  }

  TSDeque(const TSDeque&) = delete;
  TSDeque& operator=(const TSDeque&) = delete;

  ~TSDeque() {
    Segment* s = first_.load(std::memory_order_acquire);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_acquire);
      delete s;
      s = next;
    }
  }

  /// Owner-only: stamps and publishes a value at the newest end.
  void push(T value) {
    preempt_point(PreemptPoint::DequePush);
    const i64 b = bottom_.load(std::memory_order_relaxed);
    Node* node = owner_node_for(b);
    preempt_point(PreemptPoint::DequeStamp);
    const u64 stamp = clock_->acquire(owner_slot_);
    node->value.store(value, std::memory_order_relaxed);
    preempt_point(PreemptPoint::DequePushPublish);
    // The stamp store is the publish: releases the value write to any
    // claimant whose acquire sees the stamp.
    node->stamp.store(stamp, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_release);
    scan_top_ = b;
  }

  /// Owner-only: claims the youngest ready node (LIFO; maximal stamp).
  std::optional<T> pop(bool* lost_race = nullptr) {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::DequePopReserve);
    const i64 t = top_hint_.load(std::memory_order_acquire);
    i64 i = scan_top_;
    while (i >= t) {
      Node& node = owner_node_at(i);
      u64 s = node.stamp.load(std::memory_order_acquire);
      if (s < StutteringStamp::kFirstStamp) {
        // Claimed (1) — or stamped with a reserved sentinel by a broken
        // clock (0), in which case the value is unreachable forever and
        // the accounting harness reports it lost.
        scan_top_ = --i;
        continue;
      }
      preempt_point(PreemptPoint::DequePopCas);
      if (node.stamp.compare_exchange_strong(s, kClaimed,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        scan_top_ = i - 1;
        return node.value.load(std::memory_order_relaxed);
      }
      if (lost_race) *lost_race = true;
      contention_.fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }

  /// Thief: claims the oldest ready node (FIFO; minimal stamp — for a
  /// single owner, index order and stamp order coincide). Advances the
  /// top hint cooperatively over claimed prefixes.
  std::optional<T> steal(bool* lost_race = nullptr) {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::DequeStealLoad);
    i64 t = top_hint_.load(std::memory_order_acquire);
    const i64 b = bottom_.load(std::memory_order_acquire);
    Segment* seg = segment_for(t);
    for (i64 i = t; i < b; ++i) {
      while (seg != nullptr &&
             i >= seg->base + static_cast<i64>(seg->capacity)) {
        seg = seg->next.load(std::memory_order_acquire);
      }
      if (seg == nullptr) break;  // next segment not linked in yet
      Node& node = seg->nodes[static_cast<size_t>(i - seg->base)];
      u64 s = node.stamp.load(std::memory_order_acquire);
      if (s == kClaimed) {
        if (i == t) {
          top_hint_.compare_exchange_strong(t, i + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
          t = i + 1;
        }
        continue;
      }
      if (s == kUnpublished) break;  // raced past the published range
      preempt_point(PreemptPoint::DequeStealCas);
      if (node.stamp.compare_exchange_strong(s, kClaimed,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        last_stolen_stamp_.store(s, std::memory_order_relaxed);
        return node.value.load(std::memory_order_relaxed);
      }
      if (lost_race) *lost_race = true;
      contention_.fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }

  /// Approximate number of live items (any thread).
  size_t size_estimate() const {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 t = top_hint_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

  /// Segments allocated past the first. Owner-written, any-thread readable.
  u64 grow_count() const { return grows_.load(std::memory_order_relaxed); }

  /// Claim CASes lost to a competing claimant (any thread).
  u64 contention_events() const {
    return contention_.load(std::memory_order_relaxed);
  }

  /// Stamp of the most recently stolen node (cross-worker steal-order
  /// diagnostics; relaxed, best-effort).
  u64 last_stolen_stamp() const {
    return last_stolen_stamp_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr u64 kUnpublished = 0;
  static constexpr u64 kClaimed = 1;

  struct Node {
    std::atomic<u64> stamp{kUnpublished};
    std::atomic<T> value{};
  };

  struct Segment {
    Segment(i64 base_, size_t cap, Segment* prev_)
        : base(base_), capacity(cap), nodes(new Node[cap]), prev(prev_) {}
    ~Segment() { delete[] nodes; }
    const i64 base;
    const size_t capacity;
    Node* const nodes;
    std::atomic<Segment*> next{nullptr};
    Segment* const prev;  // owner-only back-link
  };

  Node* owner_node_for(i64 i) {
    Segment* seg = tail_seg_;
    if (i >= seg->base + static_cast<i64>(seg->capacity)) {
      Segment* fresh = new Segment(
          seg->base + static_cast<i64>(seg->capacity), segment_capacity_, seg);
      grows_.fetch_add(1, std::memory_order_relaxed);
      seg->next.store(fresh, std::memory_order_release);
      tail_seg_ = fresh;
      seg = fresh;
    }
    return &seg->nodes[static_cast<size_t>(i - seg->base)];
  }

  Node& owner_node_at(i64 i) {
    Segment* seg = tail_seg_;
    while (i < seg->base) seg = seg->prev;
    return seg->nodes[static_cast<size_t>(i - seg->base)];
  }

  Segment* segment_for(i64 i) const {
    Segment* seg = first_.load(std::memory_order_acquire);
    while (seg != nullptr &&
           i >= seg->base + static_cast<i64>(seg->capacity)) {
      seg = seg->next.load(std::memory_order_acquire);
    }
    return seg;
  }

  const size_t segment_capacity_;
  int owner_slot_;
  StutteringStamp* clock_ = nullptr;
  std::unique_ptr<StutteringStamp> own_clock_;
  std::atomic<Segment*> first_{nullptr};
  Segment* tail_seg_ = nullptr;  // owner-only
  i64 scan_top_ = -1;            // owner-only: newest maybe-unclaimed index
  std::atomic<i64> top_hint_{0};
  std::atomic<i64> bottom_{0};
  std::atomic<u64> grows_{0};
  std::atomic<u64> contention_{0};
  std::atomic<u64> last_stolen_stamp_{0};
};

}  // namespace gg::rts
