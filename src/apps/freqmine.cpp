#include "apps/freqmine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;
using front::ForOpts;

namespace {

constexpr Cycles kCyclesPerOccurrence = 90;  // conditional-db row visit
constexpr Cycles kCyclesPerCount = 8;

struct State {
  FreqmineParams p;
  std::vector<std::vector<u32>> transactions;
  std::vector<std::vector<u32>> item_tx;  // item -> transactions containing it
  std::vector<u64> freq;                  // item -> support
  std::vector<long> patterns_per_item;
  front::RegionId db_region = front::kNoRegion;
  long total_patterns = 0;

  /// Loop 1: scan the database counting supports (balanced).
  void count_supports(Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 64;
    ctx.parallel_for(
        GG_SRC_NAMED("fp_tree.cpp", 401, "scan1_DB"), 0,
        transactions.size(), fo, [this](u64 t, Ctx& c) {
          const auto& tx = transactions[t];
          c.compute(tx.size() * kCyclesPerCount);
          c.touch(db_region, t * 64, tx.size() * sizeof(u32), 0);
        });
  }

  /// Loop 2: FPGF — FP_tree::FP_growth_first(). Mines each item's
  /// conditional database; cost is wildly skewed by item popularity.
  void fp_growth_first(Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 1;  // already the smallest value (§4.3.4)
    fo.num_threads = p.fpgf_threads;
    ctx.parallel_for(
        GG_SRC_NAMED("fp_tree.cpp", 867, "FP_growth_first"), 0, p.num_items,
        fo, [this](u64 item, Ctx& c) {
          // Real mining: count co-occurrences of lower-ranked items inside
          // this item's conditional database, then count frequent ones.
          const auto& rows = item_tx[item];
          std::unordered_map<u32, u64> co;
          u64 visited = 0;
          for (u32 t : rows) {
            for (u32 other : transactions[t]) {
              if (other < item) {
                ++co[other];
                ++visited;
              }
            }
          }
          long found = 1;  // the item itself is frequent by construction
          for (const auto& [other, count] : co) {
            if (count >= p.min_support) ++found;
          }
          patterns_per_item[item] = found;
          c.compute(rows.size() * kCyclesPerOccurrence +
                    visited * kCyclesPerCount);
          c.touch(db_region, item * 4096, (visited + 1) * sizeof(u32),
                  2 * sizeof(u32));
        });
  }

  /// Loop 3: aggregate the per-item results (balanced, small).
  void aggregate(Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 32;
    ctx.parallel_for(GG_SRC_NAMED("fp_tree.cpp", 1104, "FP_growth"), 0,
                     p.num_items, fo, [this](u64 item, Ctx& c) {
                       c.compute(40);
                       (void)item;
                     });
    for (long n : patterns_per_item) total_patterns += n;
  }

  void run(Ctx& ctx) {
    count_supports(ctx);
    fp_growth_first(ctx);
    aggregate(ctx);
  }
};

}  // namespace

front::TaskFn freqmine_program(front::Engine& engine,
                               const FreqmineParams& params,
                               long* patterns_found) {
  GG_CHECK(params.num_items >= 2 && params.num_transactions >= 1);
  auto st = std::make_shared<State>();
  st->p = params;
  st->transactions.resize(params.num_transactions);
  st->item_tx.resize(params.num_items);
  st->freq.assign(params.num_items, 0);
  st->patterns_per_item.assign(params.num_items, 0);

  // Item popularity is Zipf-like, but heavy items sit at hash-scrambled
  // positions of the id range — the "large grains spaced irregularly across
  // the iteration range" effect (§4.3.4).
  std::vector<double> weight(params.num_items);
  double total_w = 0.0;
  for (u64 i = 0; i < params.num_items; ++i) {
    const u64 rank = 1 + mix64(i * 0x9e37u + params.seed) % params.num_items;
    // Steep Zipf (s = 2.2): a handful of head items appear in most
    // transactions, so their conditional databases dwarf the rest — the
    // disproportionate-chunk skew behind load balance 35.5.
    weight[i] = 1.0 / std::pow(static_cast<double>(rank), 2.2);
    total_w += weight[i];
  }
  // Cumulative distribution for sampling.
  std::vector<double> cdf(params.num_items);
  double acc = 0.0;
  for (u64 i = 0; i < params.num_items; ++i) {
    acc += weight[i] / total_w;
    cdf[i] = acc;
  }
  Xoshiro256 rng(params.seed);
  for (u64 t = 0; t < params.num_transactions; ++t) {
    const u64 len = 1 + rng.bounded(2 * params.avg_transaction_len);
    auto& tx = st->transactions[t];
    for (u64 k = 0; k < len; ++k) {
      const double u = rng.uniform01();
      const u64 item = static_cast<u64>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      const u32 it32 = static_cast<u32>(std::min(item, params.num_items - 1));
      if (std::find(tx.begin(), tx.end(), it32) == tx.end()) tx.push_back(it32);
    }
    std::sort(tx.begin(), tx.end());
    for (u32 item : tx) {
      st->freq[item]++;
      st->item_tx[item].push_back(static_cast<u32>(t));
    }
  }
  st->db_region = engine.alloc_region(
      "freqmine.db",
      params.num_transactions * params.avg_transaction_len * sizeof(u32) * 4,
      front::PagePlacement::FirstTouch);
  return [st, patterns_found](Ctx& ctx) {
    st->run(ctx);
    if (patterns_found != nullptr) *patterns_found = st->total_patterns;
  };
}

}  // namespace gg::apps
