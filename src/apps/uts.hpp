// UTS, Unbalanced Tree Search (BOTS) — §4.3.6: poor parallel benefit for
// most of millions of tiny grains; would benefit from runtime inlining or
// depth-based cutoffs.
//
// The tree is generated on the fly from SHA-like node hashes (we use
// SplitMix64): each node's child count is drawn from a geometric
// distribution keyed by the node's hash, so the tree shape is deterministic
// but highly unbalanced — the defining UTS property.
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct UtsParams {
  double branch_factor = 2.0;  ///< expected children of a non-leaf
  double leaf_prob = 0.52;     ///< probability a node is a leaf
  int root_children = 16;      ///< fixed root fan-out (UTS t1-style)
  int max_depth = 10;          ///< bound on tree depth (the branching is
                               ///< supercritical, ~2.5 children expected per
                               ///< node, so the tree grows geometrically —
                               ///< paper scale is 4M nodes, ours ~50k)
  int cutoff = 0;              ///< 0 = spawn a task per node (the shipped
                               ///< behavior); >0 = depth-based cutoff fix
  u64 seed = 19;
};

/// Builds the program; *nodes_visited receives the tree size if non-null.
front::TaskFn uts_program(front::Engine& engine, const UtsParams& params,
                          long* nodes_visited = nullptr);

}  // namespace gg::apps
