#include "apps/floorplan.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerPlacement = 140;

struct Cell {
  int w = 1, h = 1;
};

struct Board {
  // Shelf packing state: cells go left-to-right on the current shelf; a
  // cell that does not fit opens a new shelf below.
  int shelf_x = 0;
  int shelf_y = 0;
  int shelf_h = 0;
  int width = 0;

  static constexpr int kShelfLimit = 14;

  void put(int w, int h) {
    if (shelf_x + w > kShelfLimit) {
      shelf_y += shelf_h;
      shelf_x = 0;
      shelf_h = 0;
    }
    shelf_x += w;
    shelf_h = shelf_h > h ? shelf_h : h;
    width = width > shelf_x ? width : shelf_x;
  }
  int height() const { return shelf_y + shelf_h; }
  long area() const { return static_cast<long>(width) * height(); }
};

struct State {
  FloorplanParams p;
  std::vector<Cell> cells;
  std::vector<std::vector<int>> orders;  // per-cell candidate orientations
  std::atomic<long> best{1L << 40};

  /// Places cell `idx` in each orientation; prunes against the shared best.
  /// The bounding-box area only grows as cells are added, so pruning with
  /// it is admissible: the optimum is order-independent even though the
  /// explored (and therefore spawned) tree is not.
  void place(Ctx& ctx, Board board, size_t idx, int depth) {
    if (idx == cells.size()) {
      const long area = board.area();
      long cur = best.load();
      while (area < cur && !best.compare_exchange_weak(cur, area)) {
      }
      return;
    }
    const Cell& cell = cells[idx];
    ctx.compute(kCyclesPerPlacement);
    for (int orient : orders[idx]) {
      const int w = orient == 0 ? cell.w : cell.h;
      const int h = orient == 0 ? cell.h : cell.w;
      Board next = board;
      next.put(w, h);
      if (next.area() >= best.load()) continue;  // prune
      if (depth < p.cutoff) {
        ctx.spawn(GG_SRC_NAMED("floorplan.c", 229, "add_cell"),
                  [this, next, idx, depth](Ctx& c) {
                    place(c, next, idx + 1, depth + 1);
                  });
      } else {
        place(ctx, next, idx + 1, depth + 1);
      }
    }
    if (depth < p.cutoff) ctx.taskwait();
  }
};

}  // namespace

front::TaskFn floorplan_program(front::Engine& engine,
                                const FloorplanParams& params,
                                long* best_area) {
  (void)engine;
  GG_CHECK(params.num_cells >= 1 && params.num_cells <= 12);
  auto st = std::make_shared<State>();
  st->p = params;
  Xoshiro256 rng(77);
  st->cells.resize(static_cast<size_t>(params.num_cells));
  for (Cell& c : st->cells) {
    c.w = 1 + static_cast<int>(rng.bounded(6));
    c.h = 1 + static_cast<int>(rng.bounded(6));
  }
  // Exploration order varies with shape_seed: earlier good solutions mean
  // more pruning, i.e. a different executed tree.
  st->orders.resize(st->cells.size());
  Xoshiro256 order_rng(params.shape_seed);
  for (auto& ord : st->orders) {
    ord = {0, 1};
    if (order_rng.bounded(2) == 1) std::swap(ord[0], ord[1]);
  }
  return [st, best_area](Ctx& ctx) {
    st->place(ctx, Board{}, 0, 0);
    if (best_area != nullptr) *best_area = st->best.load();
  };
}

}  // namespace gg::apps
