// FFT (BOTS) — §4.3.3 of the paper.
//
// Recursive divide-and-conquer 1-D DFT. Several tasks are created per
// divide, so even small inputs create very many tasks; in the shipped
// program most grains are too small to provide parallel benefit (Fig. 7).
// The paper's optimization adds two recursion-depth/size cutoffs (found by
// inspecting fft_aux, called solely from fft.c:4680) that stop task
// creation once subproblems are small; grains then show good parallel
// benefit, but poor memory-hierarchy utilization remains widespread
// (Fig. 8) because the even/odd shuffle is cache-hostile.
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct FftParams {
  u64 num_samples = 1u << 17;  ///< paper: 16M samples (scaled; DESIGN.md)
  /// Subproblem size below which no tasks are spawned. The shipped program
  /// effectively uses 2 (spawn everywhere); the optimized version uses a
  /// cutoff that leaves grains big enough to pay for their creation.
  u64 spawn_cutoff = 2;
  u64 seed = 1616;
};

/// Builds the program; *spectrum_energy (optional) receives sum |X[k]|^2 for
/// correctness checks (Parseval).
front::TaskFn fft_program(front::Engine& engine, const FftParams& params,
                          double* spectrum_energy = nullptr);

}  // namespace gg::apps
