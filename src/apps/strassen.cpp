#include "apps/strassen.hpp"

#include <memory>
#include <vector>

#include "common/check.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerFlop = 2;
constexpr Cycles kCyclesPerAddElem = 3;

struct State {
  StrassenParams p;
  front::RegionId a_region = front::kNoRegion;
  front::RegionId b_region = front::kNoRegion;
  front::RegionId c_region = front::kNoRegion;

  /// Leaf multiply of an n x n block at a conceptual offset.
  void leaf_multiply(Ctx& ctx, u64 n, u64 off) {
    ctx.compute(2 * n * n * n * kCyclesPerFlop);
    if (p.blocked_leaf) {
      // Cache-blocked kernel (the Thottethodi et al. fix the paper's
      // catalog cites): tiles fit the private cache, every walk is unit
      // stride, and B is re-read once per tile row instead of per element.
      ctx.touch(a_region, off, n * n * sizeof(double), 0,
                static_cast<u32>(n) / 16);
      ctx.touch(b_region, off, n * n * sizeof(double), 0,
                static_cast<u32>(n) / 16);
      ctx.touch(c_region, off, n * n * sizeof(double), 0, 2);
      return;
    }
    // The shipped leaf kernel walks B column-wise (row-major storage):
    // stride = one row of doubles, re-walked n^2 / n = n times per column
    // pair — n^2 column walks of n strided accesses in total.
    ctx.touch(a_region, off, n * n * sizeof(double), 0,
              static_cast<u32>(n) / 2);
    ctx.touch(b_region, off, n * n * sizeof(double),
              static_cast<u32>(n * sizeof(double)), static_cast<u32>(n));
    ctx.touch(c_region, off, n * n * sizeof(double), 0, 2);
  }

  /// Submatrix additions for the seven Strassen products at size n.
  void additions(Ctx& ctx, u64 n, u64 off) {
    // Strassen performs 18 block additions of (n/2)^2 elements per level.
    const u64 elems = (n / 2) * (n / 2);
    ctx.compute(18 * elems * kCyclesPerAddElem);
    ctx.touch(a_region, off, elems * sizeof(double), 0);
    ctx.touch(b_region, off, elems * sizeof(double), 0);
  }

  /// OptimizedStrassenMultiply: decompose until the cutoff, spawning the
  /// seven quadrant products as tasks. The hard-coded depth check is the
  /// shipped bug (§4.3.5).
  void multiply(Ctx& ctx, u64 n, u64 off, int depth) {
    const bool stop_by_sc = n <= p.sc;
    const bool stop_by_hardcode =
        p.hard_coded_cutoff && depth >= p.hard_coded_depth;
    if (stop_by_sc || stop_by_hardcode || n <= 16) {
      leaf_multiply(ctx, n, off);
      return;
    }
    additions(ctx, n, off);
    const u64 half = n / 2;
    const u64 quarter_bytes = half * half * sizeof(double);
    for (int m = 0; m < 7; ++m) {
      const u64 child_off = off + static_cast<u64>(m) * quarter_bytes;
      ctx.spawn(GG_SRC_NAMED("strassen.c", 681, "OptimizedStrassenMultiply"),
                [this, half, child_off, depth](Ctx& c) {
                  multiply(c, half, child_off, depth + 1);
                });
    }
    ctx.taskwait();
    // Recombination additions.
    ctx.compute(7 * half * half * kCyclesPerAddElem);
    ctx.touch(c_region, off, half * half * sizeof(double), 0);
  }
};

}  // namespace

front::TaskFn strassen_program(front::Engine& engine,
                               const StrassenParams& params) {
  GG_CHECK((params.matrix_size & (params.matrix_size - 1)) == 0);
  auto st = std::make_shared<State>();
  st->p = params;
  const u64 bytes = params.matrix_size * params.matrix_size * sizeof(double);
  st->a_region =
      engine.alloc_region("strassen.A", bytes, front::PagePlacement::FirstTouch);
  st->b_region =
      engine.alloc_region("strassen.B", bytes, front::PagePlacement::FirstTouch);
  st->c_region =
      engine.alloc_region("strassen.C", bytes, front::PagePlacement::FirstTouch);
  return [st](Ctx& ctx) { st->multiply(ctx, st->p.matrix_size, 0, 0); };
}

namespace {

// --- Real reference implementation (tests) ---------------------------------

void add_mat(const double* a, const double* b, double* c, u64 n, u64 lda,
             u64 ldb, u64 ldc) {
  for (u64 i = 0; i < n; ++i)
    for (u64 j = 0; j < n; ++j)
      c[i * ldc + j] = a[i * lda + j] + b[i * ldb + j];
}

void sub_mat(const double* a, const double* b, double* c, u64 n, u64 lda,
             u64 ldb, u64 ldc) {
  for (u64 i = 0; i < n; ++i)
    for (u64 j = 0; j < n; ++j)
      c[i * ldc + j] = a[i * lda + j] - b[i * ldb + j];
}

void naive_mul(const double* a, const double* b, double* c, u64 n, u64 lda,
               u64 ldb, u64 ldc) {
  for (u64 i = 0; i < n; ++i) {
    for (u64 j = 0; j < n; ++j) c[i * ldc + j] = 0.0;
    for (u64 k = 0; k < n; ++k) {
      const double aik = a[i * lda + k];
      for (u64 j = 0; j < n; ++j) c[i * ldc + j] += aik * b[k * ldb + j];
    }
  }
}

void strassen_rec(const double* a, const double* b, double* c, u64 n, u64 lda,
                  u64 ldb, u64 ldc, u64 cutoff) {
  if (n <= cutoff || n <= 2) {
    naive_mul(a, b, c, n, lda, ldb, ldc);
    return;
  }
  const u64 h = n / 2;
  const double* a11 = a;
  const double* a12 = a + h;
  const double* a21 = a + h * lda;
  const double* a22 = a + h * lda + h;
  const double* b11 = b;
  const double* b12 = b + h;
  const double* b21 = b + h * ldb;
  const double* b22 = b + h * ldb + h;
  double* c11 = c;
  double* c12 = c + h;
  double* c21 = c + h * ldc;
  double* c22 = c + h * ldc + h;

  std::vector<double> t1(h * h), t2(h * h);
  std::vector<double> m1(h * h), m2(h * h), m3(h * h), m4(h * h), m5(h * h),
      m6(h * h), m7(h * h);

  add_mat(a11, a22, t1.data(), h, lda, lda, h);
  add_mat(b11, b22, t2.data(), h, ldb, ldb, h);
  strassen_rec(t1.data(), t2.data(), m1.data(), h, h, h, h, cutoff);
  add_mat(a21, a22, t1.data(), h, lda, lda, h);
  strassen_rec(t1.data(), b11, m2.data(), h, h, ldb, h, cutoff);
  sub_mat(b12, b22, t2.data(), h, ldb, ldb, h);
  strassen_rec(a11, t2.data(), m3.data(), h, lda, h, h, cutoff);
  sub_mat(b21, b11, t2.data(), h, ldb, ldb, h);
  strassen_rec(a22, t2.data(), m4.data(), h, lda, h, h, cutoff);
  add_mat(a11, a12, t1.data(), h, lda, lda, h);
  strassen_rec(t1.data(), b22, m5.data(), h, h, ldb, h, cutoff);
  sub_mat(a21, a11, t1.data(), h, lda, lda, h);
  add_mat(b11, b12, t2.data(), h, ldb, ldb, h);
  strassen_rec(t1.data(), t2.data(), m6.data(), h, h, h, h, cutoff);
  sub_mat(a12, a22, t1.data(), h, lda, lda, h);
  add_mat(b21, b22, t2.data(), h, ldb, ldb, h);
  strassen_rec(t1.data(), t2.data(), m7.data(), h, h, h, h, cutoff);

  for (u64 i = 0; i < h; ++i) {
    for (u64 j = 0; j < h; ++j) {
      const u64 k = i * h + j;
      c11[i * ldc + j] = m1[k] + m4[k] - m5[k] + m7[k];
      c12[i * ldc + j] = m3[k] + m5[k];
      c21[i * ldc + j] = m2[k] + m4[k];
      c22[i * ldc + j] = m1[k] - m2[k] + m3[k] + m6[k];
    }
  }
}

}  // namespace

void strassen_multiply_reference(const double* a, const double* b, double* c,
                                 u64 n, u64 leaf_cutoff) {
  GG_CHECK((n & (n - 1)) == 0);
  strassen_rec(a, b, c, n, n, n, n, leaf_cutoff);
}

}  // namespace gg::apps
