#include "apps/uts.hpp"

#include <atomic>
#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerHash = 220;  // UTS does a SHA-1 per child

struct State {
  UtsParams p;
  std::atomic<long> visited{0};

  int num_children(u64 node_hash, int depth) const {
    if (depth >= p.max_depth) return 0;
    const double u =
        static_cast<double>(mix64(node_hash) >> 11) * 0x1.0p-53;
    if (u < p.leaf_prob) return 0;
    // Geometric with mean branch_factor / (1 - leaf_prob).
    const double v =
        static_cast<double>(mix64(node_hash ^ 0xabcdu) >> 11) * 0x1.0p-53;
    const double mean = p.branch_factor / (1.0 - p.leaf_prob);
    const int k = 1 + static_cast<int>(-mean * std::log1p(-std::min(v, 0.999999)));
    return std::min(k, 16);
  }

  void visit(Ctx& ctx, u64 node_hash, int depth) {
    visited.fetch_add(1, std::memory_order_relaxed);
    const int kids = num_children(node_hash, depth);
    ctx.compute(static_cast<Cycles>(1 + kids) * kCyclesPerHash);
    const bool spawn_tasks = p.cutoff == 0 || depth < p.cutoff;
    for (int k = 0; k < kids; ++k) {
      const u64 child = mix64(node_hash * 31 + static_cast<u64>(k) + 1);
      if (spawn_tasks) {
        ctx.spawn(GG_SRC_NAMED("uts.c", 318, "parTreeSearch"),
                  [this, child, depth](Ctx& c) { visit(c, child, depth + 1); });
      } else {
        visit(ctx, child, depth + 1);
      }
    }
    if (spawn_tasks && kids > 0) ctx.taskwait();
  }
};

}  // namespace

front::TaskFn uts_program(front::Engine& engine, const UtsParams& params,
                          long* nodes_visited) {
  (void)engine;
  GG_CHECK(params.root_children >= 1);
  auto st = std::make_shared<State>();
  st->p = params;
  return [st, nodes_visited](Ctx& ctx) {
    st->visited.fetch_add(1);
    ctx.compute(static_cast<Cycles>(st->p.root_children) * kCyclesPerHash);
    for (int k = 0; k < st->p.root_children; ++k) {
      const u64 child = mix64(st->p.seed * 1315423911u + static_cast<u64>(k));
      ctx.spawn(GG_SRC_NAMED("uts.c", 318, "parTreeSearch"),
                [st, child](Ctx& c) { st->visit(c, child, 1); });
    }
    ctx.taskwait();
    if (nodes_visited != nullptr) *nodes_visited = st->visited.load();
  };
}

}  // namespace gg::apps
