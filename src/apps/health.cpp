#include "apps/health.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerPatient = 2800;  // triage + treatment per patient

struct Village {
  int level = 0;
  u64 hash = 0;              // deterministic per-village randomness key
  std::vector<int> children;  // indices into the village array
  long waiting = 0;           // patients in the local queue
  long treated = 0;
};

struct State {
  HealthParams p;
  std::vector<Village> villages;
  front::RegionId region = front::kNoRegion;
  int root = 0;

  /// One timestep at one village: treat the local queue (capacity limited),
  /// escalate the surplus to the parent, recurse into sub-villages as tasks
  /// (the BOTS sim_village structure).
  void sim_village(Ctx& ctx, int v, int step, long* escalated) {
    Village& vil = villages[static_cast<size_t>(v)];
    // New arrivals, deterministic per (village, step).
    const u64 h = mix64(vil.hash * 31 + static_cast<u64>(step));
    vil.waiting += static_cast<long>(h % 4);
    // Local capacity: treat up to `cap` patients; the rest escalate.
    const long cap = 3 + vil.level;
    const long treat_now = std::min(vil.waiting, cap);
    vil.treated += treat_now;
    vil.waiting -= treat_now;
    const long up = vil.waiting / 2;  // half the backlog goes up a level
    vil.waiting -= up;
    *escalated = up;
    ctx.compute(static_cast<Cycles>(treat_now + 1) * kCyclesPerPatient);
    ctx.touch(region, static_cast<u64>(v) * 256, 256, 0);

    if (vil.children.empty()) return;
    // Sub-villages as tasks; their escalations land in our queue.
    auto ups = std::make_shared<std::vector<long>>(vil.children.size(), 0);
    for (size_t k = 0; k < vil.children.size(); ++k) {
      const int child = vil.children[k];
      long* slot = &(*ups)[k];
      ctx.spawn(GG_SRC_NAMED("health.c", 403, "sim_village"),
                [this, child, step, slot, ups](Ctx& c) {
                  sim_village(c, child, step, slot);
                });
    }
    ctx.taskwait();
    for (long u : *ups) vil.waiting += u;
  }
};

}  // namespace

front::TaskFn health_program(front::Engine& engine, const HealthParams& params,
                             long* treated) {
  GG_CHECK(params.levels >= 1 && params.branching >= 1);
  auto st = std::make_shared<State>();
  st->p = params;
  // Build the hierarchy breadth-first.
  Xoshiro256 rng(params.seed);
  std::function<int(int)> build = [&](int level) -> int {
    const int idx = static_cast<int>(st->villages.size());
    st->villages.emplace_back();
    st->villages[static_cast<size_t>(idx)].level = level;
    st->villages[static_cast<size_t>(idx)].hash = rng.next();
    if (level > 0) {
      for (int k = 0; k < params.branching; ++k) {
        const int child = build(level - 1);
        st->villages[static_cast<size_t>(idx)].children.push_back(child);
      }
    } else {
      st->villages[static_cast<size_t>(idx)].waiting = params.population;
    }
    return idx;
  };
  st->root = build(params.levels - 1);
  st->region = engine.alloc_region("health.villages",
                                   st->villages.size() * 256,
                                   front::PagePlacement::FirstTouch);
  return [st, treated](Ctx& ctx) {
    for (int step = 0; step < st->p.timesteps; ++step) {
      long up = 0;
      st->sim_village(ctx, st->root, step, &up);
      // The root has no parent: escalated patients wait another round.
      st->villages[static_cast<size_t>(st->root)].waiting += up;
    }
    if (treated != nullptr) {
      long total = 0;
      for (const Village& v : st->villages) total += v.treated;
      *treated = total;
    }
  };
}

}  // namespace gg::apps
