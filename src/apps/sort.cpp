#include "apps/sort.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerCompare = 9;
constexpr Cycles kCyclesPerMove = 4;

struct State {
  SortParams p;
  std::vector<u32> data;
  std::vector<u32> tmp;
  front::RegionId data_region = front::kNoRegion;
  front::RegionId tmp_region = front::kNoRegion;

  void touch_span(Ctx& ctx, front::RegionId r, u64 lo, u64 n,
                  u32 repeats = 1) {
    ctx.touch(r, lo * sizeof(u32), n * sizeof(u32), 0, repeats);
  }

  /// Sequential quicksort + insertion sort below the cutoff (BOTS seqquick).
  void seqquick(Ctx& ctx, u64 lo, u64 hi) {
    const u64 n = hi - lo;
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
              data.begin() + static_cast<std::ptrdiff_t>(hi));
    // n log n compares + the insertion-sorted tail's moves.
    const double logn = std::log2(std::max<double>(2.0, static_cast<double>(n)));
    ctx.compute(static_cast<Cycles>(static_cast<double>(n) * logn *
                                    kCyclesPerCompare));
    // Quicksort re-walks the range once per recursion level.
    touch_span(ctx, data_region, lo, n, static_cast<u32>(logn));
  }

  /// Sequential merge of data[lo1,hi1) and data[lo2,hi2) into tmp[dst...).
  void seqmerge(Ctx& ctx, u64 lo1, u64 hi1, u64 lo2, u64 hi2, u64 dst) {
    std::merge(data.begin() + static_cast<std::ptrdiff_t>(lo1),
               data.begin() + static_cast<std::ptrdiff_t>(hi1),
               data.begin() + static_cast<std::ptrdiff_t>(lo2),
               data.begin() + static_cast<std::ptrdiff_t>(hi2),
               tmp.begin() + static_cast<std::ptrdiff_t>(dst));
    const u64 n = (hi1 - lo1) + (hi2 - lo2);
    ctx.compute(n * (kCyclesPerCompare + kCyclesPerMove));
    touch_span(ctx, data_region, lo1, hi1 - lo1);
    touch_span(ctx, data_region, lo2, hi2 - lo2);
    touch_span(ctx, tmp_region, dst, n);
  }

  /// Parallel merge (BOTS cilkmerge): binary-search split until the merge
  /// cutoff.
  void pmerge(Ctx& ctx, u64 lo1, u64 hi1, u64 lo2, u64 hi2, u64 dst) {
    const u64 n = (hi1 - lo1) + (hi2 - lo2);
    if (n <= p.merge_cutoff || hi1 - lo1 == 0 || hi2 - lo2 == 0) {
      seqmerge(ctx, lo1, hi1, lo2, hi2, dst);
      return;
    }
    // Split the larger run at its median; binary-search the other run.
    if (hi1 - lo1 < hi2 - lo2) {
      std::swap(lo1, lo2);
      std::swap(hi1, hi2);
    }
    const u64 mid1 = (lo1 + hi1) / 2;
    const u32 pivot = data[mid1];
    const u64 split2 = static_cast<u64>(
        std::lower_bound(data.begin() + static_cast<std::ptrdiff_t>(lo2),
                         data.begin() + static_cast<std::ptrdiff_t>(hi2),
                         pivot) -
        data.begin());
    ctx.compute(static_cast<Cycles>(
        std::log2(std::max<double>(2.0, static_cast<double>(hi2 - lo2))) *
        kCyclesPerCompare * 2));
    const u64 left_n = (mid1 - lo1) + (split2 - lo2);
    ctx.spawn(GG_SRC_NAMED("sort.cpp", 70, "cilkmerge"),
              [this, lo1, mid1, lo2, split2, dst](Ctx& c) {
                pmerge(c, lo1, mid1, lo2, split2, dst);
              });
    ctx.spawn(GG_SRC_NAMED("sort.cpp", 74, "cilkmerge"),
              [this, mid1, hi1, split2, hi2, dst, left_n](Ctx& c) {
                pmerge(c, mid1, hi1, split2, hi2, dst + left_n);
              });
    ctx.taskwait();
  }

  /// Copies tmp back into data with a task per slice (the BOTS version
  /// ping-pongs buffers; tasked copies carry the same traffic in parallel).
  void copy_back(Ctx& ctx, u64 lo, u64 n) {
    const u64 slices = std::min<u64>(16, std::max<u64>(1, n / p.quick_cutoff));
    const u64 per = (n + slices - 1) / slices;
    for (u64 s = 0; s < slices; ++s) {
      const u64 s_lo = lo + s * per;
      const u64 s_n = std::min(per, lo + n > s_lo ? lo + n - s_lo : 0);
      if (s_n == 0) break;
      ctx.spawn(GG_SRC_NAMED("sort.cpp", 96, "copy_back"),
                [this, s_lo, s_n](Ctx& c) {
                  std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(s_lo),
                            tmp.begin() + static_cast<std::ptrdiff_t>(s_lo + s_n),
                            data.begin() + static_cast<std::ptrdiff_t>(s_lo));
                  c.compute(s_n * kCyclesPerMove);
                  touch_span(c, tmp_region, s_lo, s_n);
                  touch_span(c, data_region, s_lo, s_n);
                });
    }
    ctx.taskwait();
  }

  /// BOTS cilksort: 4-way recursive sort, then two parallel merges, then a
  /// final merge + copy back.
  void sort(Ctx& ctx, u64 lo, u64 n) {
    if (n <= p.quick_cutoff) {
      seqquick(ctx, lo, lo + n);
      return;
    }
    const u64 q = n / 4;
    const u64 a = lo, b = lo + q, c0 = lo + 2 * q, d = lo + 3 * q,
              end = lo + n;
    ctx.spawn(GG_SRC_NAMED("sort.cpp", 104, "cilksort"),
              [this, a, q](Ctx& c) { sort(c, a, q); });
    ctx.spawn(GG_SRC_NAMED("sort.cpp", 106, "cilksort"),
              [this, b, q](Ctx& c) { sort(c, b, q); });
    ctx.spawn(GG_SRC_NAMED("sort.cpp", 108, "cilksort"),
              [this, c0, q](Ctx& c) { sort(c, c0, q); });
    ctx.spawn(GG_SRC_NAMED("sort.cpp", 110, "cilksort"),
              [this, d, end](Ctx& c) { sort(c, d, end - d); });
    ctx.taskwait();
    ctx.spawn(GG_SRC_NAMED("sort.cpp", 113, "cilkmerge"),
              [this, a, b, c0](Ctx& c) { pmerge(c, a, b, b, c0, a); });
    ctx.spawn(GG_SRC_NAMED("sort.cpp", 115, "cilkmerge"),
              [this, c0, d, end](Ctx& c) { pmerge(c, c0, d, d, end, c0); });
    ctx.taskwait();
    // tmp now holds two sorted halves at [a, c0) and [c0, end): swap the
    // roles of data/tmp for the final merge by copying back first (the BOTS
    // version ping-pongs buffers; a copy keeps the code simple and costs
    // the same traffic).
    copy_back(ctx, a, n);
    pmerge(ctx, a, c0, c0, end, a);
    copy_back(ctx, a, n);
  }
};

}  // namespace

front::TaskFn sort_program(front::Engine& engine, const SortParams& params,
                           bool* sorted_ok) {
  auto st = std::make_shared<State>();
  st->p = params;
  st->data.resize(params.num_elements);
  st->tmp.resize(params.num_elements);
  Xoshiro256 rng(params.seed);
  for (u32& v : st->data) v = static_cast<u32>(rng.next());
  st->data_region =
      engine.alloc_region("sort.data", params.num_elements * sizeof(u32),
                          params.placement);
  st->tmp_region =
      engine.alloc_region("sort.tmp", params.num_elements * sizeof(u32),
                          params.placement);
  return [st, sorted_ok](Ctx& ctx) {
    st->sort(ctx, 0, st->p.num_elements);
    if (sorted_ok != nullptr) {
      *sorted_ok = std::is_sorted(st->data.begin(), st->data.end());
    }
  };
}

}  // namespace gg::apps
