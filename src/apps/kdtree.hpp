// 376.kdtree (SPEC OMP 2012) — §2 of the paper.
//
// Searches a k-d tree for neighbors within a radius of every point. Tasks
// sweep the tree; a cutoff parameter is meant to stop task creation below a
// recursion depth. The shipped program has a bug the grain graph exposed:
// kdnode::sweeptree() does not increment the depth on its recursive calls,
// so the cutoff never takes effect and ~N tasks are created (1,488,595 for
// the SPEC reference input). The fix increments the depth and separates the
// sweep cutoff from the original cutoff (§2: cutoff 2 -> 8, sweep cutoff 10
// for GCC/MIR, 100 for ICC).
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct KdtreeParams {
  int num_points = 20000;  ///< paper reference: 400000 (scaled; DESIGN.md)
  double radius = 10.0;
  int cutoff = 2;        ///< the original cutoff parameter
  int sweep_cutoff = 10; ///< used only when fixed == true
  bool fixed = false;    ///< apply the paper's fix (depth increment +
                         ///< separate sweep cutoff)
  u64 seed = 20160312;
};

/// Builds the program. The returned value of neighbor counting is
/// accumulated into *total_neighbors (for correctness checks); pass null to
/// skip.
front::TaskFn kdtree_program(front::Engine& engine, const KdtreeParams& params,
                             long* total_neighbors = nullptr);

}  // namespace gg::apps
