// Sort (BOTS) — §4.3.1 of the paper.
//
// Divide-and-conquer sort in three phases: parallel merge-sort, sequential
// quick sort below `quick_cutoff`, sequential insertion sort below
// `insertion_cutoff`; parallel merges split recursively until
// `merge_cutoff`. The paper's findings reproduced here:
//  * non-uniform, waxing-and-waning parallelism -> load imbalance that no
//    cutoff fixes (lower cutoffs raise parallelism but kill parallel
//    benefit, Fig. 5b);
//  * widespread work inflation + poor memory-hierarchy utilization under
//    first-touch page placement, reduced by round-robin placement
//    (the §4.3.1 table: 68.54% -> 37.08% inflated grains).
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct SortParams {
  u64 num_elements = 1u << 21;  ///< paper: 16M (scaled; DESIGN.md)
  u64 quick_cutoff = 1u << 15;  ///< "best" cutoff at paper scale ~ n/512
  u64 merge_cutoff = 1u << 15;
  u64 insertion_cutoff = 20;
  front::PagePlacement placement = front::PagePlacement::FirstTouch;
  u64 seed = 443;
};

/// Builds the program. If `sorted_ok` is non-null it receives the
/// correctness verdict after the run.
front::TaskFn sort_program(front::Engine& engine, const SortParams& params,
                           bool* sorted_ok = nullptr);

}  // namespace gg::apps
