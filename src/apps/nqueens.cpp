#include "apps/nqueens.hpp"

#include <atomic>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerNode = 24;

bool safe(const std::vector<int>& pos, int row, int col) {
  for (int r = 0; r < row; ++r) {
    if (pos[static_cast<size_t>(r)] == col ||
        pos[static_cast<size_t>(r)] - r == col - row ||
        pos[static_cast<size_t>(r)] + r == col + row) {
      return false;
    }
  }
  return true;
}

struct State {
  NQueensParams p;
  std::atomic<long> solutions{0};

  long solve_seq(std::vector<int>& pos, int row, Cycles* nodes) {
    ++*nodes;
    if (row == p.n) return 1;
    long found = 0;
    for (int col = 0; col < p.n; ++col) {
      if (safe(pos, row, col)) {
        pos[static_cast<size_t>(row)] = col;
        found += solve_seq(pos, row + 1, nodes);
      }
    }
    return found;
  }

  void solve(Ctx& ctx, std::vector<int> pos, int row) {
    if (row >= p.cutoff) {
      Cycles nodes = 0;
      solutions.fetch_add(solve_seq(pos, row, &nodes));
      ctx.compute(nodes * kCyclesPerNode);
      return;
    }
    ctx.compute(static_cast<Cycles>(p.n) * kCyclesPerNode);
    for (int col = 0; col < p.n; ++col) {
      if (!safe(pos, row, col)) continue;
      std::vector<int> next = pos;
      next[static_cast<size_t>(row)] = col;
      ctx.spawn(GG_SRC_NAMED("nqueens.c", 110, "nqueens"),
                [this, next = std::move(next), row](Ctx& c) mutable {
                  solve(c, std::move(next), row + 1);
                });
    }
    ctx.taskwait();
  }
};

}  // namespace

front::TaskFn nqueens_program(front::Engine& engine,
                              const NQueensParams& params, long* solutions) {
  (void)engine;
  GG_CHECK(params.n >= 1 && params.n <= 13);
  auto st = std::make_shared<State>();
  st->p = params;
  return [st, solutions](Ctx& ctx) {
    std::vector<int> pos(static_cast<size_t>(st->p.n), -1);
    st->solve(ctx, std::move(pos), 0);
    if (solutions != nullptr) *solutions = st->solutions.load();
  };
}

}  // namespace gg::apps
