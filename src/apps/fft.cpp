#include "apps/fft.hpp"

#include <cmath>
#include <complex>
#include <memory>
#include <numbers>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerButterfly = 34;  // complex mul + 2 adds
constexpr Cycles kCyclesPerMove = 6;

using cplx = std::complex<double>;

struct State {
  FftParams p;
  std::vector<cplx> data;
  std::vector<cplx> scratch;
  front::RegionId region = front::kNoRegion;

  /// Recursive radix-2 FFT over data[off, off+n). Uses scratch[off..] for
  /// the even/odd shuffle (BOTS fft_aux structure).
  void fft_aux(Ctx& ctx, u64 off, u64 n) {
    if (n <= 1) return;
    const u64 half = n / 2;
    // Even/odd shuffle through scratch — stride-2 reads, the cache-hostile
    // pattern behind Fig. 8.
    for (u64 i = 0; i < half; ++i) {
      scratch[off + i] = data[off + 2 * i];
      scratch[off + half + i] = data[off + 2 * i + 1];
    }
    std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(off),
              scratch.begin() + static_cast<std::ptrdiff_t>(off + n),
              data.begin() + static_cast<std::ptrdiff_t>(off));
    ctx.compute(n * kCyclesPerMove);
    ctx.touch(region, off * sizeof(cplx), n * sizeof(cplx),
              2 * sizeof(cplx));

    if (n > p.spawn_cutoff) {
      ctx.spawn(GG_SRC_NAMED("fft.c", 4680, "fft_aux"),
                [this, off, half](Ctx& c) { fft_aux(c, off, half); });
      ctx.spawn(GG_SRC_NAMED("fft.c", 4680, "fft_aux"),
                [this, off, half](Ctx& c) { fft_aux(c, off + half, half); });
      ctx.taskwait();
      // The combine is split in two tasks as well ("several tasks are
      // created for each divide").
      ctx.spawn(GG_SRC_NAMED("fft.c", 4712, "fft_twiddle"),
                [this, off, n](Ctx& c) { combine(c, off, n, 0, n / 4); });
      ctx.spawn(GG_SRC_NAMED("fft.c", 4714, "fft_twiddle"),
                [this, off, n](Ctx& c) { combine(c, off, n, n / 4, n / 2); });
      ctx.taskwait();
    } else {
      fft_aux(ctx, off, half);
      fft_aux(ctx, off + half, half);
      combine(ctx, off, n, 0, n / 2);
    }
  }

  /// Butterfly combine of rows [k_lo, k_hi) of the half-transforms.
  void combine(Ctx& ctx, u64 off, u64 n, u64 k_lo, u64 k_hi) {
    const u64 half = n / 2;
    for (u64 k = k_lo; k < k_hi; ++k) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n);
      const cplx w(std::cos(ang), std::sin(ang));
      const cplx e = data[off + k];
      const cplx o = data[off + half + k] * w;
      data[off + k] = e + o;
      data[off + half + k] = e - o;
    }
    const u64 count = k_hi - k_lo;
    ctx.compute(count * kCyclesPerButterfly);
    ctx.touch(region, (off + k_lo) * sizeof(cplx), count * sizeof(cplx), 0);
    ctx.touch(region, (off + half + k_lo) * sizeof(cplx),
              count * sizeof(cplx), 0);
  }
};

}  // namespace

front::TaskFn fft_program(front::Engine& engine, const FftParams& params,
                          double* spectrum_energy) {
  GG_CHECK((params.num_samples & (params.num_samples - 1)) == 0);
  auto st = std::make_shared<State>();
  st->p = params;
  st->data.resize(params.num_samples);
  st->scratch.resize(params.num_samples);
  Xoshiro256 rng(params.seed);
  for (cplx& v : st->data)
    v = cplx(rng.uniform01() - 0.5, rng.uniform01() - 0.5);
  st->region = engine.alloc_region("fft.samples",
                                   params.num_samples * sizeof(cplx) * 2,
                                   front::PagePlacement::FirstTouch);
  return [st, spectrum_energy](Ctx& ctx) {
    st->fft_aux(ctx, 0, st->p.num_samples);
    if (spectrum_energy != nullptr) {
      double acc = 0.0;
      for (const cplx& v : st->data) acc += std::norm(v);
      *spectrum_energy = acc;
    }
  };
}

}  // namespace gg::apps
