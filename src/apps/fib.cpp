#include "apps/fib.hpp"

#include <memory>

#include "common/check.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerCall = 18;

u64 fib_seq(int n, Cycles* calls) {
  ++*calls;
  if (n < 2) return static_cast<u64>(n);
  return fib_seq(n - 1, calls) + fib_seq(n - 2, calls);
}

struct State {
  FibParams p;
  u64 result = 0;

  void fib(Ctx& ctx, int n, int depth, u64* out) {
    if (n < 2) {
      *out = static_cast<u64>(n);
      ctx.compute(kCyclesPerCall);
      return;
    }
    if (depth >= p.cutoff) {
      Cycles calls = 0;
      *out = fib_seq(n, &calls);
      ctx.compute(calls * kCyclesPerCall);
      return;
    }
    auto a = std::make_shared<u64>(0);
    auto b = std::make_shared<u64>(0);
    ctx.spawn(GG_SRC_NAMED("fib.c", 33, "fib"), [this, n, depth, a](Ctx& c) {
      fib(c, n - 1, depth + 1, a.get());
    });
    ctx.spawn(GG_SRC_NAMED("fib.c", 35, "fib"), [this, n, depth, b](Ctx& c) {
      fib(c, n - 2, depth + 1, b.get());
    });
    ctx.taskwait();
    *out = *a + *b;
    ctx.compute(kCyclesPerCall);
  }
};

}  // namespace

front::TaskFn fib_program(front::Engine& engine, const FibParams& params,
                          u64* result) {
  (void)engine;
  // The real sequential leaves cost O(fib(n)) calls at capture time; 35 is
  // ~15M calls. The paper's input 48 is modeled by scaling (DESIGN.md).
  GG_CHECK(params.n >= 0 && params.n <= 35);
  auto st = std::make_shared<State>();
  st->p = params;
  return [st, result](Ctx& ctx) {
    st->fib(ctx, st->p.n, 0, &st->result);
    if (result != nullptr) *result = st->result;
  };
}

}  // namespace gg::apps
