// Strassen (BOTS) — §4.3.5 of the paper.
//
// Recursive Strassen matrix multiplication: matrices are decomposed into
// quadrants, seven submatrix products are computed as tasks, and plain
// multiplication runs at the recursion leaves once the submatrix size
// reaches the cutoff SC.
//
// The paper's finding: a HARD-CODED cutoff inside the decomposition
// functions overrides the user's SC, so the task tree stays shallow no
// matter the input (58 grains for 2048x2048, Fig. 11a) and exposes too
// little parallelism for 48 cores. Disabling the hard-coded cutoff lets the
// recursion honor SC (2801 grains, Fig. 11b), after which poor
// memory-hierarchy utilization surfaces. Scheduler choice also matters:
// work stealing keeps sibling tasks near each other while a central queue
// scatters them across sockets (Fig. 11c-d).
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct StrassenParams {
  u64 matrix_size = 2048;  ///< paper: 8192 for Fig. 1, 2048 for Fig. 11
  u64 sc = 128;            ///< submatrix-size cutoff (user parameter)
  bool hard_coded_cutoff = true;  ///< the shipped bug: decomposition stops
                                  ///< at a built-in depth regardless of SC
  /// Depth the hard-coded cutoff stops at (the shipped value allows only
  /// two levels of decomposition -> 1 + 7 + 49 = 57 tasks + root).
  int hard_coded_depth = 2;
  /// The fix catalog of Olivier et al. / Thottethodi et al. (§4.3.5): use a
  /// standard blocked multiplication at the recursion leaves (cache-aware
  /// tiling instead of the column-striding naive kernel).
  bool blocked_leaf = false;
  u64 seed = 4242;
};

/// Builds the program. Computation is cost-modeled (an 8192^2 Strassen
/// multiply is not executed for real); a small real Strassen-vs-naive check
/// lives in the tests instead.
front::TaskFn strassen_program(front::Engine& engine,
                               const StrassenParams& params);

/// Real (small-scale) Strassen multiply used by tests to validate the
/// algorithm itself: C = A * B, all matrices n x n row-major, n a power of
/// two.
void strassen_multiply_reference(const double* a, const double* b, double* c,
                                 u64 n, u64 leaf_cutoff);

}  // namespace gg::apps
