// Blackscholes (Parsec) — §4.3.6: the sole parallel for-loop prices a
// portfolio of options; over 65% of its chunks have poor memory-hierarchy
// utilization (the kernel streams large arrays) and ~33% also have low
// parallel benefit. Other metrics are healthy.
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct BlackscholesParams {
  u64 num_options = 200000;  ///< paper: 4M points (scaled; DESIGN.md)
  u64 chunk = 0;             ///< 0 = schedule default
  ScheduleKind sched = ScheduleKind::Static;
  int iterations = 1;        ///< Parsec repeats the pricing loop
  u64 seed = 2003;
};

/// Builds the program; *price_sum receives the summed option prices.
front::TaskFn blackscholes_program(front::Engine& engine,
                                   const BlackscholesParams& params,
                                   double* price_sum = nullptr);

}  // namespace gg::apps
