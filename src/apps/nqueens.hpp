// NQueens (BOTS) — §4.3.6: scales linearly for input 14 and all metrics
// indicate good behavior; serves as the "healthy program" control.
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct NQueensParams {
  int n = 11;      ///< paper: 14 (scaled; real backtracking runs at capture)
  int cutoff = 4;  ///< spawn tasks down to this board row
};

/// Builds the program; *solutions receives the solution count if non-null.
front::TaskFn nqueens_program(front::Engine& engine,
                              const NQueensParams& params,
                              long* solutions = nullptr);

}  // namespace gg::apps
