#include "apps/blackscholes.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;
using front::ForOpts;

namespace {

constexpr Cycles kCyclesPerOption = 180;  // CNDF evaluations dominate

struct Option {
  float spot, strike, rate, volatility, time;
  int type;  // 0 = call, 1 = put
};

double cndf(double x) {
  // Abramowitz & Stegun 26.2.17 — the same polynomial Parsec uses.
  const double a1 = 0.319381530, a2 = -0.356563782, a3 = 1.781477937,
               a4 = -1.821255978, a5 = 1.330274429;
  const bool neg = x < 0.0;
  if (neg) x = -x;
  const double k = 1.0 / (1.0 + 0.2316419 * x);
  const double poly = k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))));
  const double nd =
      1.0 - 1.0 / std::sqrt(2.0 * M_PI) * std::exp(-0.5 * x * x) * poly;
  return neg ? 1.0 - nd : nd;
}

double price(const Option& o) {
  const double sqrt_t = std::sqrt(o.time);
  const double d1 = (std::log(o.spot / o.strike) +
                     (o.rate + 0.5 * o.volatility * o.volatility) * o.time) /
                    (o.volatility * sqrt_t);
  const double d2 = d1 - o.volatility * sqrt_t;
  const double discounted = o.strike * std::exp(-o.rate * o.time);
  if (o.type == 0) return o.spot * cndf(d1) - discounted * cndf(d2);
  return discounted * cndf(-d2) - o.spot * cndf(-d1);
}

struct State {
  BlackscholesParams p;
  std::vector<Option> options;
  std::vector<double> prices;
  front::RegionId in_region = front::kNoRegion;
  front::RegionId out_region = front::kNoRegion;
};

}  // namespace

front::TaskFn blackscholes_program(front::Engine& engine,
                                   const BlackscholesParams& params,
                                   double* price_sum) {
  GG_CHECK(params.num_options >= 1);
  auto st = std::make_shared<State>();
  st->p = params;
  st->options.resize(params.num_options);
  st->prices.assign(params.num_options, 0.0);
  Xoshiro256 rng(params.seed);
  for (Option& o : st->options) {
    o.spot = static_cast<float>(50.0 + rng.uniform01() * 100.0);
    o.strike = static_cast<float>(50.0 + rng.uniform01() * 100.0);
    o.rate = static_cast<float>(0.01 + rng.uniform01() * 0.09);
    o.volatility = static_cast<float>(0.1 + rng.uniform01() * 0.5);
    o.time = static_cast<float>(0.25 + rng.uniform01() * 2.0);
    o.type = rng.bounded(2) == 0 ? 0 : 1;
  }
  st->in_region =
      engine.alloc_region("blackscholes.options",
                          params.num_options * sizeof(Option),
                          front::PagePlacement::FirstTouch);
  st->out_region =
      engine.alloc_region("blackscholes.prices",
                          params.num_options * sizeof(double),
                          front::PagePlacement::FirstTouch);
  return [st, price_sum](Ctx& ctx) {
    for (int it = 0; it < st->p.iterations; ++it) {
      ForOpts fo;
      fo.sched = st->p.sched;
      fo.chunk = st->p.chunk;
      ctx.parallel_for(
          GG_SRC_NAMED("blackscholes.c", 408, "bs_thread"), 0,
          st->p.num_options, fo, [st](u64 i, Ctx& c) {
            st->prices[i] = price(st->options[i]);
            c.compute(kCyclesPerOption);
            c.touch(st->in_region, i * sizeof(Option), sizeof(Option), 0);
            c.touch(st->out_region, i * sizeof(double), sizeof(double), 0);
          });
    }
    if (price_sum != nullptr) {
      double acc = 0.0;
      for (double v : st->prices) acc += v;
      *price_sum = acc;
    }
  };
}

}  // namespace gg::apps
