#include "apps/others.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;
using front::ForOpts;

// ---------------------------------------------------------------------------
// 358.botsalgn

front::TaskFn botsalgn_program(front::Engine& engine,
                               const BotsalgnParams& params, long* score_sum) {
  struct State {
    BotsalgnParams p;
    std::vector<std::vector<u8>> seqs;
    front::RegionId region;
    long total = 0;
  };
  auto st = std::make_shared<State>();
  st->p = params;
  Xoshiro256 rng(params.seed);
  st->seqs.resize(params.num_sequences);
  for (auto& s : st->seqs) {
    s.resize(params.seq_len);
    for (u8& c : s) c = static_cast<u8>(rng.bounded(20));
  }
  st->region = engine.alloc_region("botsalgn.seqs",
                                   params.num_sequences * params.seq_len,
                                   front::PagePlacement::FirstTouch);
  return [st, score_sum](Ctx& ctx) {
    // BOTS aligns every sequence against the first; tasks per pair. The
    // original spawns tasks from a loop; we keep the task form (alignments
    // are chunky and uniform -> all metrics healthy).
    for (u64 i = 1; i < st->p.num_sequences; ++i) {
      ctx.spawn(GG_SRC_NAMED("alignment.c", 580, "align"), [st, i](Ctx& c) {
        // Real Needleman-Wunsch-ish band score against sequence 0.
        const auto& a = st->seqs[0];
        const auto& b = st->seqs[i];
        long score = 0;
        for (size_t x = 0; x < a.size(); ++x)
          for (size_t y = x > 8 ? x - 8 : 0; y < std::min(b.size(), x + 8); ++y)
            score += a[x] == b[y] ? 2 : -1;
        st->total += score;  // capture is sequential; no race
        c.compute(a.size() * 16 * 6);
        c.touch(st->region, i * st->p.seq_len, st->p.seq_len, 0);
      });
    }
    ctx.taskwait();
    if (score_sum != nullptr) *score_sum = st->total;
  };
}

// ---------------------------------------------------------------------------
// 367.imagick

front::TaskFn imagick_program(front::Engine& engine,
                              const ImagickParams& params, double* pixel_sum) {
  struct State {
    ImagickParams p;
    std::vector<float> image;
    front::RegionId region;
  };
  auto st = std::make_shared<State>();
  st->p = params;
  st->image.assign(params.rows * params.columns, 0.0f);
  Xoshiro256 rng(params.seed);
  for (float& v : st->image) v = static_cast<float>(rng.uniform01());
  st->region = engine.alloc_region("imagick.image",
                                   params.rows * params.columns * sizeof(float),
                                   front::PagePlacement::FirstTouch);
  return [st, pixel_sum](Ctx& ctx) {
    struct Op {
      const char* file;
      int line;
      const char* func;
      Cycles per_row;   // per-row kernel cost
      bool has_throttle;  // loops that DO carry omp_throttle in the original
    };
    // The five §4.3.6 loops missing omp_throttle are cheap kernels; the
    // throttled ones are expensive (convolve/resize) so their chunks are
    // big regardless.
    const Op ops[] = {
        {"magick_shear.c", 1694, "XShearImage", 900, false},
        {"magick_decorate.c", 406, "FrameImage", 700, false},
        {"magick_enhance.c", 3554, "NegateImage", 600, false},
        {"magick_shear.c", 1474, "IntegralRotateImage", 800, false},
        {"magick_transform.c", 650, "FlopImage", 650, false},
        {"magick_resize.c", 2210, "ResizeImage", 90000, true},
        {"magick_fx.c", 3220, "ConvolveImage", 120000, true},
    };
    for (const Op& op : ops) {
      ForOpts fo;
      fo.sched = ScheduleKind::Dynamic;
      // omp_throttle raises the chunk so each chunk is worth its delivery;
      // un-throttled loops run chunk 1 over cheap rows.
      const bool throttle = op.has_throttle || st->p.throttled_everywhere;
      fo.chunk = throttle ? 64 : 1;
      ctx.parallel_for(GG_SRC_NAMED(op.file, op.line, op.func), 0, st->p.rows,
                       fo, [st, &op](u64 row, Ctx& c) {
                         float acc = 0.0f;
                         const u64 base = row * st->p.columns;
                         for (u64 x = 0; x < st->p.columns; x += 16)
                           acc += st->image[base + x];
                         st->image[base] = acc;
                         c.compute(op.per_row);
                         c.touch(st->region, base * sizeof(float),
                                 st->p.columns * sizeof(float), 0);
                       });
    }
    if (pixel_sum != nullptr) {
      double acc = 0.0;
      for (float v : st->image) acc += v;
      *pixel_sum = acc;
    }
  };
}

// ---------------------------------------------------------------------------
// 372.smithwa

front::TaskFn smithwa_program(front::Engine& engine,
                              const SmithwaParams& params, long* best_score) {
  struct State {
    SmithwaParams p;
    std::vector<u8> a, b;
    front::RegionId region;
    long best = 0;
  };
  auto st = std::make_shared<State>();
  st->p = params;
  Xoshiro256 rng(params.seed);
  st->a.resize(params.matrix_dim);
  st->b.resize(params.matrix_dim);
  for (u8& c : st->a) c = static_cast<u8>(rng.bounded(4));
  for (u8& c : st->b) c = static_cast<u8>(rng.bounded(4));
  st->region = engine.alloc_region(
      "smithwa.matrix", params.matrix_dim * params.matrix_dim * sizeof(int),
      front::PagePlacement::FirstTouch);
  return [st, best_score](Ctx& ctx) {
    // verifyData.c:46 — an imbalanced verification block outside the timed
    // region of the original (triangular work per row: later rows cost
    // more). Dynamic chunk 1 + skew = load imbalance.
    ForOpts verify;
    verify.sched = ScheduleKind::Dynamic;
    verify.chunk = 1;
    ctx.parallel_for(GG_SRC_NAMED("verifyData.c", 46, "verifyData"), 0,
                     st->p.matrix_dim, verify, [st](u64 row, Ctx& c) {
                       c.compute(250 * (row + 1));
                       c.touch(st->region, 0, (row + 1) * sizeof(int),
                               st->p.matrix_dim > 64
                                   ? static_cast<u32>(st->p.matrix_dim)
                                   : 0);
                     });
    // mergeAlignment.c:160 — anti-diagonal wavefront merge: small strided
    // chunks, poor mem-util and benefit. Real banded SW scoring row.
    ForOpts merge;
    merge.sched = ScheduleKind::Dynamic;
    merge.chunk = 1;
    ctx.parallel_for(
        GG_SRC_NAMED("mergeAlignment.c", 160, "mergeAlignment"), 0,
        st->p.matrix_dim, merge, [st](u64 row, Ctx& c) {
          long score = 0;
          for (u64 j = 0; j < st->p.matrix_dim; ++j)
            score += st->a[row % st->a.size()] == st->b[j] ? 3 : -1;
          st->best = std::max(st->best, score);
          c.compute(st->p.matrix_dim * 4);
          c.touch(st->region, row * st->p.matrix_dim * sizeof(int),
                  st->p.matrix_dim * sizeof(int),
                  static_cast<u32>(st->p.matrix_dim * sizeof(int) / 8));
        });
    if (best_score != nullptr) *best_score = st->best;
  };
}

// ---------------------------------------------------------------------------
// Bodytrack

front::TaskFn bodytrack_program(front::Engine& engine,
                                const BodytrackParams& params,
                                double* likelihood) {
  struct State {
    BodytrackParams p;
    std::vector<float> weights;
    front::RegionId region;
  };
  auto st = std::make_shared<State>();
  st->p = params;
  st->weights.assign(params.particles, 1.0f);
  st->region = engine.alloc_region("bodytrack.frames",
                                   params.image_rows * 4096,
                                   front::PagePlacement::FirstTouch);
  return [st, likelihood](Ctx& ctx) {
    for (int f = 0; f < st->p.frames; ++f) {
      // Cheap per-row filter loops (FlexFilterRowV / FlexFilterColumnV):
      // tiny chunks, poor benefit and mem-util — fusion candidates.
      for (const auto& [line, name] :
           {std::pair<int, const char*>{301, "FlexFilterRowVOMP"},
            std::pair<int, const char*>{355, "FlexFilterColumnVOMP"}}) {
        ForOpts fo;
        fo.sched = ScheduleKind::Dynamic;
        fo.chunk = 1;
        ctx.parallel_for(GG_SRC_NAMED("ImageMeasurements.cpp", line, name), 0,
                         st->p.image_rows, fo, [st](u64 row, Ctx& c) {
                           c.compute(420);
                           c.touch(st->region, row * 4096, 4096, 128);
                         });
      }
      // CalcWeights: the one healthy loop — substantial per-particle work.
      ForOpts fo;
      fo.sched = ScheduleKind::Dynamic;
      fo.chunk = 16;
      ctx.parallel_for(
          GG_SRC_NAMED("TrackingModelOMP.cpp", 117, "CalcWeights"), 0,
          st->p.particles, fo, [st, f](u64 i, Ctx& c) {
            st->weights[i] *= 0.9f + 0.2f * static_cast<float>(
                                                mix64(i * 31 + f) % 100) /
                                         100.0f;
            c.compute(45000);
            c.touch(st->region, (i % st->p.image_rows) * 4096, 4096, 0);
          });
      // Serial section between frames (also a §4.3.6 bottleneck).
      ctx.compute(2'000'000);
    }
    if (likelihood != nullptr) {
      double acc = 0.0;
      for (float w : st->weights) acc += w;
      *likelihood = acc;
    }
  };
}

}  // namespace gg::apps
