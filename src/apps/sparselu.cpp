#include "apps/sparselu.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerFlop = 2;

struct State {
  SparseLuParams p;
  int nb = 0;                 // blocks per dimension
  int bs = 0;                 // block size
  std::vector<std::vector<float>> block;  // nb*nb blocks
  std::vector<u8> pattern;    // static occupancy incl. precomputed fill-in
                              // (BOTS-style structure prediction; lets tasks
                              // run concurrently without allocation races)
  front::RegionId region = front::kNoRegion;

  std::vector<float>& at(int i, int j) {
    return block[static_cast<size_t>(i * nb + j)];
  }
  bool null_block(int i, int j) const {
    return pattern[static_cast<size_t>(i * nb + j)] == 0;
  }
  u64 block_offset(int i, int j) const {
    return static_cast<u64>(i * nb + j) * static_cast<u64>(bs) *
           static_cast<u64>(bs) * sizeof(float);
  }

  /// Annotates a whole-block access pattern. `stride_elems` 1 = unit
  /// stride; `repeats` = times the pattern is re-walked (the triple-nested
  /// kernels re-walk their blocks bs or bs^2 times).
  void touch_block(Ctx& ctx, int i, int j, u32 stride_elems,
                   u32 repeats = 1) {
    ctx.touch(region, block_offset(i, j),
              static_cast<u64>(bs) * bs * sizeof(float),
              stride_elems * static_cast<u32>(sizeof(float)), repeats);
  }

  /// Diagonal factorization (sparselu.c lu0).
  void lu0(Ctx& ctx, int kk) {
    auto& d = at(kk, kk);
    for (int k = 0; k < bs; ++k) {
      const float pivot = d[static_cast<size_t>(k * bs + k)] == 0.0f
                              ? 1.0f
                              : d[static_cast<size_t>(k * bs + k)];
      for (int i = k + 1; i < bs; ++i) {
        d[static_cast<size_t>(i * bs + k)] /= pivot;
        for (int j = k + 1; j < bs; ++j) {
          d[static_cast<size_t>(i * bs + j)] -=
              d[static_cast<size_t>(i * bs + k)] *
              d[static_cast<size_t>(k * bs + j)];
        }
      }
    }
    ctx.compute(static_cast<Cycles>(2.0 / 3.0 * bs * bs * bs *
                                    kCyclesPerFlop));
    touch_block(ctx, kk, kk, 1, static_cast<u32>(bs) / 2);
  }

  /// Forward elimination of a row block (sparselu.c:229 fwd).
  void fwd(Ctx& ctx, int kk, int jj) {
    auto& d = at(kk, kk);
    auto& b = at(kk, jj);
    for (int k = 0; k < bs; ++k)
      for (int i = k + 1; i < bs; ++i)
        for (int j = 0; j < bs; ++j)
          b[static_cast<size_t>(i * bs + j)] -=
              d[static_cast<size_t>(i * bs + k)] *
              b[static_cast<size_t>(k * bs + j)];
    ctx.compute(static_cast<Cycles>(1.0 * bs * bs * bs * kCyclesPerFlop));
    touch_block(ctx, kk, kk, 1, static_cast<u32>(bs) / 2);
    touch_block(ctx, kk, jj, 1, static_cast<u32>(bs) / 2);
  }

  /// Backward division of a column block (sparselu.c:235 bdiv).
  void bdiv(Ctx& ctx, int ii, int kk) {
    auto& d = at(kk, kk);
    auto& b = at(ii, kk);
    for (int i = 0; i < bs; ++i)
      for (int k = 0; k < bs; ++k) {
        const float pivot = d[static_cast<size_t>(k * bs + k)] == 0.0f
                                ? 1.0f
                                : d[static_cast<size_t>(k * bs + k)];
        b[static_cast<size_t>(i * bs + k)] /= pivot;
        for (int j = k + 1; j < bs; ++j)
          b[static_cast<size_t>(i * bs + j)] -=
              b[static_cast<size_t>(i * bs + k)] *
              d[static_cast<size_t>(k * bs + j)];
      }
    ctx.compute(static_cast<Cycles>(1.0 * bs * bs * bs * kCyclesPerFlop));
    touch_block(ctx, kk, kk, 1, static_cast<u32>(bs) / 2);
    touch_block(ctx, ii, kk, 1, static_cast<u32>(bs) / 2);
  }

  /// Block update (sparselu.c:246 bmod): C -= A * B.
  ///
  /// The shipped loop nest is (i, j, k): the innermost index strides through
  /// B column-wise — a cache-unfriendly pattern the paper identified as the
  /// work-inflation culprit. The interchange fix reorders to (i, k, j) so
  /// the inner loop walks B and C with unit stride.
  void bmod(Ctx& ctx, int ii, int jj, int kk) {
    auto& a = at(ii, kk);
    auto& b = at(kk, jj);
    auto& c0 = at(ii, jj);
    if (p.interchange) {
      for (int i = 0; i < bs; ++i)
        for (int k = 0; k < bs; ++k) {
          const float aik = a[static_cast<size_t>(i * bs + k)];
          for (int j = 0; j < bs; ++j)
            c0[static_cast<size_t>(i * bs + j)] -=
                aik * b[static_cast<size_t>(k * bs + j)];
        }
    } else {
      for (int i = 0; i < bs; ++i)
        for (int j = 0; j < bs; ++j) {
          float acc = 0.0f;
          for (int k = 0; k < bs; ++k)
            acc += a[static_cast<size_t>(i * bs + k)] *
                   b[static_cast<size_t>(k * bs + j)];
          c0[static_cast<size_t>(i * bs + j)] -= acc;
        }
    }
    ctx.compute(static_cast<Cycles>(2.0 * bs * bs * bs * kCyclesPerFlop));
    const u32 ubs = static_cast<u32>(bs);
    // A is walked row-wise bs times (once per j or per i block pass).
    touch_block(ctx, ii, kk, 1, ubs / 2);
    // B: the shipped (i,j,k) nest walks a column per (i,j) pair — every
    // access strides a full row and misses L1, bs^2 walks of bs accesses.
    // The interchange makes it bs sequential row walks per i.
    if (p.interchange) {
      touch_block(ctx, kk, jj, 1, ubs);
    } else {
      touch_block(ctx, kk, jj, ubs, ubs * ubs);
    }
    touch_block(ctx, ii, jj, 1, ubs / 2);
  }

  /// Data-flow factorization: every kernel is a task ordered purely by
  /// per-block depend clauses. lu0(kk) waits for the bmod updates to the
  /// diagonal; fwd/bdiv read the diagonal; bmod reads its row/column blocks
  /// and updates its target. One taskwait at the very end.
  void run_dataflow(Ctx& ctx) {
    auto handle = [this](int i, int j) {
      return static_cast<u64>(i * nb + j) + 1;  // block identity
    };
    for (int kk = 0; kk < nb; ++kk) {
      {
        front::Depends d;
        d.out = {handle(kk, kk)};
        ctx.spawn(GG_SRC_NAMED("sparselu.c", 215, "lu0"), d,
                  [this, kk](Ctx& c) { lu0(c, kk); });
      }
      for (int jj = kk + 1; jj < nb; ++jj) {
        if (null_block(kk, jj)) continue;
        front::Depends d;
        d.in = {handle(kk, kk)};
        d.out = {handle(kk, jj)};
        ctx.spawn(GG_SRC_NAMED("sparselu.c", 229, "fwd"), d,
                  [this, kk, jj](Ctx& c) { fwd(c, kk, jj); });
      }
      for (int ii = kk + 1; ii < nb; ++ii) {
        if (null_block(ii, kk)) continue;
        front::Depends d;
        d.in = {handle(kk, kk)};
        d.out = {handle(ii, kk)};
        ctx.spawn(GG_SRC_NAMED("sparselu.c", 235, "bdiv"), d,
                  [this, ii, kk](Ctx& c) { bdiv(c, ii, kk); });
      }
      for (int ii = kk + 1; ii < nb; ++ii) {
        if (null_block(ii, kk)) continue;
        for (int jj = kk + 1; jj < nb; ++jj) {
          if (null_block(kk, jj)) continue;
          front::Depends d;
          d.in = {handle(ii, kk), handle(kk, jj)};
          d.out = {handle(ii, jj)};
          ctx.spawn(GG_SRC_NAMED("sparselu.c", 246, "bmod"), d,
                    [this, ii, jj, kk](Ctx& c) { bmod(c, ii, jj, kk); });
        }
      }
    }
    ctx.taskwait();
  }

  void run(Ctx& ctx) {
    if (p.dataflow) {
      run_dataflow(ctx);
      return;
    }
    for (int kk = 0; kk < nb; ++kk) {
      lu0(ctx, kk);
      // Phase 1: fwd + bdiv (lighter parallelism).
      for (int jj = kk + 1; jj < nb; ++jj) {
        if (null_block(kk, jj)) continue;
        ctx.spawn(GG_SRC_NAMED("sparselu.c", 229, "fwd"),
                  [this, kk, jj](Ctx& c) { fwd(c, kk, jj); });
      }
      for (int ii = kk + 1; ii < nb; ++ii) {
        if (null_block(ii, kk)) continue;
        ctx.spawn(GG_SRC_NAMED("sparselu.c", 235, "bdiv"),
                  [this, ii, kk](Ctx& c) { bdiv(c, ii, kk); });
      }
      ctx.taskwait();
      // Phase 2: bmod over the trailing submatrix (large parallelism).
      for (int ii = kk + 1; ii < nb; ++ii) {
        if (null_block(ii, kk)) continue;
        for (int jj = kk + 1; jj < nb; ++jj) {
          if (null_block(kk, jj)) continue;
          ctx.spawn(GG_SRC_NAMED("sparselu.c", 246, "bmod"),
                    [this, ii, jj, kk](Ctx& c) { bmod(c, ii, jj, kk); });
        }
      }
      ctx.taskwait();
    }
  }

  double checksum() const {
    double acc = 0.0;
    for (const auto& b : block) {
      for (float v : b) {
        if (std::isfinite(v)) acc += static_cast<double>(v) * 1e-6;
      }
    }
    return acc;
  }
};

}  // namespace

front::TaskFn sparselu_program(front::Engine& engine,
                               const SparseLuParams& params,
                               double* checksum) {
  GG_CHECK(params.blocks >= 2 && params.block_size >= 4);
  auto st = std::make_shared<State>();
  st->p = params;
  st->nb = params.blocks;
  st->bs = params.block_size;
  st->block.resize(static_cast<size_t>(st->nb) * st->nb);
  Xoshiro256 rng(params.seed);
  st->pattern.assign(static_cast<size_t>(st->nb) * st->nb, 0);
  for (int i = 0; i < st->nb; ++i) {
    for (int j = 0; j < st->nb; ++j) {
      // BOTS genmat keeps the diagonal plus a random sparse pattern.
      const bool keep = i == j || rng.uniform01() < params.density;
      if (!keep) continue;
      st->pattern[static_cast<size_t>(i * st->nb + j)] = 1;
      auto& b = st->at(i, j);
      b.resize(static_cast<size_t>(st->bs) * st->bs);
      for (float& v : b)
        v = static_cast<float>(rng.uniform01() * 2.0 - 1.0 + (i == j ? 4.0 : 0.0));
    }
  }
  // Structure prediction: precompute the fill-in pattern and allocate fill
  // blocks up front so factorization tasks never mutate the structure
  // (required for data-flow execution; harmless for the barrier version).
  for (int kk = 0; kk < st->nb; ++kk) {
    for (int ii = kk + 1; ii < st->nb; ++ii) {
      if (st->null_block(ii, kk)) continue;
      for (int jj = kk + 1; jj < st->nb; ++jj) {
        if (st->null_block(kk, jj)) continue;
        auto& slot = st->pattern[static_cast<size_t>(ii * st->nb + jj)];
        if (slot == 0) {
          slot = 1;
          st->at(ii, jj).assign(static_cast<size_t>(st->bs) * st->bs, 0.0f);
        }
      }
    }
  }
  st->region = engine.alloc_region(
      "sparselu.blocks",
      static_cast<u64>(st->nb) * st->nb * st->bs * st->bs * sizeof(float),
      front::PagePlacement::FirstTouch);
  return [st, checksum](Ctx& ctx) {
    st->run(ctx);
    if (checksum != nullptr) *checksum = st->checksum();
  };
}

}  // namespace gg::apps
