// Behavioral models of the remaining §4.3.6 programs. Each reproduces the
// loop/block structure and the cost profile the paper reports; DESIGN.md
// records the substitutions (the originals depend on SPEC/Parsec inputs and
// large library codebases).
#pragma once

#include "front/front.hpp"

namespace gg::apps {

/// 358.botsalgn — protein alignment: one dynamically scheduled loop of
/// uniform, sizeable alignments. Scales linearly; all metrics healthy.
struct BotsalgnParams {
  u64 num_sequences = 300;
  u64 seq_len = 2000;  ///< alignment cost ~ len x band
  u64 seed = 358;
};
front::TaskFn botsalgn_program(front::Engine& engine,
                               const BotsalgnParams& params,
                               long* score_sum = nullptr);

/// 367.imagick — an image-operation chain where SOME for-loops miss the
/// conditional omp_throttle macro present elsewhere, leaving them with poor
/// parallel benefit (tiny per-row chunks on cheap filters).
struct ImagickParams {
  u64 rows = 960;
  u64 columns = 1280;
  bool throttled_everywhere = false;  ///< fix: apply omp_throttle to all
  u64 seed = 367;
};
front::TaskFn imagick_program(front::Engine& engine,
                              const ImagickParams& params,
                              double* pixel_sum = nullptr);

/// 372.smithwa — Smith-Waterman: parallel blocks mergeAlignment.c:160 and
/// verifyData.c:46 suffer load imbalance + low mem-util + poor benefit; the
/// verifyData imbalance hides outside the usual timed region but the grain
/// graph covers the whole program.
struct SmithwaParams {
  u64 matrix_dim = 256;
  u64 seed = 372;
};
front::TaskFn smithwa_program(front::Engine& engine,
                              const SmithwaParams& params,
                              long* best_score = nullptr);

/// Bodytrack (Parsec) — chunks of all loops except CalcWeights have poor
/// parallel benefit and low mem-util; serial sections between loops are
/// also bottlenecks. Models the per-frame filter/weights loop chain.
struct BodytrackParams {
  int frames = 4;
  u64 particles = 1024;
  u64 image_rows = 128;
  u64 seed = 512;
};
front::TaskFn bodytrack_program(front::Engine& engine,
                                const BodytrackParams& params,
                                double* likelihood = nullptr);

}  // namespace gg::apps
