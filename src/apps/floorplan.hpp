// Floorplan (BOTS) — §4.3.6: branch-and-bound search for an optimal cell
// placement. Pruning against the best-known area makes the executed tree
// depend on exploration order, so the program has non-determinism built in
// and the grain-graph shape changes across thread counts — the one paper
// program whose graph is NOT schedule-independent.
//
// Our capture executes sequentially (deterministic for a fixed
// `shape_seed`); the bench varies `shape_seed` with the simulated thread
// count to reproduce the shape-instability observation.
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct FloorplanParams {
  int num_cells = 8;
  int cutoff = 3;      ///< spawn tasks down to this placement depth
  u64 shape_seed = 1;  ///< perturbs exploration order (stands in for the
                       ///< scheduling-order dependence of pruning)
};

/// Builds the program; *best_area receives the optimum found if non-null.
front::TaskFn floorplan_program(front::Engine& engine,
                                const FloorplanParams& params,
                                long* best_area = nullptr);

}  // namespace gg::apps
