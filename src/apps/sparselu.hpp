// 359.botsspar (SPEC OMP 2012, descended from BOTS SparseLU) — §4.3.2.
//
// LU factorization of a sparse blocked matrix: per outer iteration kk,
// lu0 on the diagonal block, then a phase of fwd/bdiv tasks (less
// parallelism), a taskwait, then a phase of bmod tasks over all (ii,jj)
// pairs (much more parallelism), another taskwait. Parallelism interleaves
// the two phases and decreases as kk advances (Fig. 6a).
//
// The paper's finding: widespread per-grain work inflation, dominated by
// sparselu.c:246(bmod) whose body has a triple-nested loop with a
// cache-unfriendly access pattern; a manual loop interchange makes the
// access unit-stride and removes inflation from the large-parallelism phase
// (Fig. 6d). `interchange` applies that fix here.
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct SparseLuParams {
  int blocks = 20;      ///< paper evaluation input: 60x60 (uses 30x30 for
                        ///< space); scaled here (DESIGN.md)
  int block_size = 40;  ///< paper: 250x250 (scaled)
  double density = 0.45;  ///< fraction of non-null blocks initially
  bool interchange = false;  ///< apply the bmod loop-interchange fix
  /// OpenMP 4.0 data-flow mode (the paper's §6 future work): per-block
  /// depend clauses replace the per-phase taskwait barriers, exposing
  /// parallelism across outer iterations.
  bool dataflow = false;
  u64 seed = 359;
};

/// Builds the program; *checksum (optional) receives a deterministic digest
/// of the factored matrix for correctness comparisons across runs.
front::TaskFn sparselu_program(front::Engine& engine,
                               const SparseLuParams& params,
                               double* checksum = nullptr);

}  // namespace gg::apps
