#include "apps/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::apps {

using front::Ctx;

namespace {

constexpr Cycles kCyclesPerVisit = 55;  ///< distance test + traversal

struct Point {
  double x[3];
};

struct KdTree {
  // Node i covers points_[i]; children are explicit indices (-1 = none).
  std::vector<Point> points;
  std::vector<i32> left, right;
  std::vector<i32> axis;
  i32 root = -1;
  front::RegionId region = front::kNoRegion;

  i32 build(std::vector<i32>& idx, size_t lo, size_t hi, int depth) {
    if (lo >= hi) return -1;
    const int ax = depth % 3;
    const size_t mid = (lo + hi) / 2;
    std::nth_element(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                     idx.begin() + static_cast<std::ptrdiff_t>(mid),
                     idx.begin() + static_cast<std::ptrdiff_t>(hi),
                     [&](i32 a, i32 b) {
                       return points[static_cast<size_t>(a)].x[ax] <
                              points[static_cast<size_t>(b)].x[ax];
                     });
    const i32 node = idx[mid];
    axis[static_cast<size_t>(node)] = ax;
    left[static_cast<size_t>(node)] = build(idx, lo, mid, depth + 1);
    right[static_cast<size_t>(node)] = build(idx, mid + 1, hi, depth + 1);
    return node;
  }

  /// Real range search; returns neighbors found and counts visited nodes.
  long search(const Point& q, double radius, i32 node, u64& visited) const {
    if (node < 0) return 0;
    ++visited;
    const auto n = static_cast<size_t>(node);
    const Point& p = points[n];
    const double dx = p.x[0] - q.x[0], dy = p.x[1] - q.x[1],
                 dz = p.x[2] - q.x[2];
    const double d2 = dx * dx + dy * dy + dz * dz;
    long found = d2 <= radius * radius ? 1 : 0;
    const int ax = axis[n];
    const double delta = q.x[ax] - p.x[ax];
    const i32 near = delta <= 0 ? left[n] : right[n];
    const i32 far = delta <= 0 ? right[n] : left[n];
    found += search(q, radius, near, visited);
    if (delta * delta <= radius * radius)
      found += search(q, radius, far, visited);
    return found;
  }
};

struct State {
  KdTree tree;
  KdtreeParams params;
  long neighbors = 0;  // accumulated during capture (sequential)

  /// Searches neighbors of one point, annotating its cost.
  void search_point(Ctx& ctx, i32 node) {
    u64 visited = 0;
    neighbors += tree.search(tree.points[static_cast<size_t>(node)],
                             params.radius, tree.root, visited);
    ctx.compute(visited * kCyclesPerVisit);
    // The search touches scattered tree nodes: strided access pattern.
    ctx.touch(tree.region, 0, visited * sizeof(Point), sizeof(Point) * 4);
  }

  /// Sequentially sweeps a whole subtree.
  void sweep_seq(Ctx& ctx, i32 node) {
    if (node < 0) return;
    search_point(ctx, node);
    sweep_seq(ctx, tree.left[static_cast<size_t>(node)]);
    sweep_seq(ctx, tree.right[static_cast<size_t>(node)]);
  }

  /// kdnode::sweeptree(). Tasks are used both to sweep the tree AND to find
  /// neighbors for each point (§2). The SHIPPED code forgets `depth + 1` on
  /// the recursive task spawns — the bug §2 diagnoses. `fixed` restores the
  /// increment and uses the separate sweep cutoff.
  void sweeptree(Ctx& ctx, i32 node, int depth) {
    if (node < 0) return;
    const int limit = params.fixed ? params.sweep_cutoff : params.cutoff;
    if (depth < limit) {
      const int child_depth = params.fixed ? depth + 1 : depth;  // the bug
      const i32 l = tree.left[static_cast<size_t>(node)];
      const i32 r = tree.right[static_cast<size_t>(node)];
      if (l >= 0) {
        ctx.spawn(GG_SRC_NAMED("kdtree.cpp", 102, "sweeptree"),
                  [this, l, child_depth](Ctx& c) { sweeptree(c, l, child_depth); });
      }
      if (r >= 0) {
        ctx.spawn(GG_SRC_NAMED("kdtree.cpp", 106, "sweeptree"),
                  [this, r, child_depth](Ctx& c) { sweeptree(c, r, child_depth); });
      }
      ctx.spawn(GG_SRC_NAMED("kdtree.cpp", 110, "find_neighbors"),
                [this, node](Ctx& c) { search_point(c, node); });
      ctx.taskwait();
    } else {
      sweep_seq(ctx, node);
    }
  }
};

}  // namespace

front::TaskFn kdtree_program(front::Engine& engine, const KdtreeParams& params,
                             long* total_neighbors) {
  GG_CHECK(params.num_points > 0);
  auto state = std::make_shared<State>();
  state->params = params;
  KdTree& t = state->tree;
  const auto n = static_cast<size_t>(params.num_points);
  t.points.resize(n);
  t.left.assign(n, -1);
  t.right.assign(n, -1);
  t.axis.assign(n, 0);
  Xoshiro256 rng(params.seed);
  // Points in a cube sized so that a radius-10 ball holds a few dozen
  // neighbors regardless of point count (constant density).
  const double side = 50.0 * std::cbrt(static_cast<double>(n) / 1000.0);
  for (Point& p : t.points) {
    for (double& c : p.x) c = rng.uniform01() * side;
  }
  std::vector<i32> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<i32>(i);
  t.root = t.build(idx, 0, n, 0);
  t.region = engine.alloc_region("kdtree.points", n * sizeof(Point),
                                 front::PagePlacement::FirstTouch);

  return [state, total_neighbors](Ctx& ctx) {
    state->sweeptree(ctx, state->tree.root, 0);
    if (total_neighbors != nullptr) *total_neighbors = state->neighbors;
  };
}

}  // namespace gg::apps
