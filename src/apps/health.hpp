// Health (BOTS) — part of the paper's profiled suite (§4.1 profiles all
// C/C++ programs of BOTS). Simulates the Colombian health-care system: a
// multilevel hierarchy of villages, each with patients arriving, being
// treated locally, or escalated to the parent level. One task per village
// per simulated timestep, recursing down the hierarchy with a taskwait per
// level — the classic BOTS health structure.
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct HealthParams {
  int levels = 5;          ///< hierarchy depth (BOTS "small" uses 5)
  int branching = 3;       ///< sub-villages per village
  int timesteps = 20;
  int population = 20;     ///< initial patients per leaf village
  u64 seed = 1971;
};

/// Builds the program; *treated (optional) receives the total number of
/// patients treated across the run (deterministic for a fixed seed).
front::TaskFn health_program(front::Engine& engine, const HealthParams& params,
                             long* treated = nullptr);

}  // namespace gg::apps
