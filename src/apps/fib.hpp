// Fibonacci — the paper's common task-programming illustration (§4.3.6):
// for input 48 with cutoff 12 the metrics flag work-deviation and
// parallel-benefit problems, and the graph shows how depth cutoffs control
// recursion depth and leaf-grain size.
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct FibParams {
  int n = 30;       ///< paper: 48 (scaled — leaf work is modeled, not run)
  int cutoff = 12;  ///< recursion-depth cutoff; below it, sequential
};

/// Builds the program; *result receives fib(n) mod 2^63 if non-null.
front::TaskFn fib_program(front::Engine& engine, const FibParams& params,
                          u64* result = nullptr);

}  // namespace gg::apps
