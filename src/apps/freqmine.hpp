// Freqmine (Parsec) — §4.3.4 of the paper.
//
// Array-based FP-growth frequent-itemset mining. The performance-critical
// construct is FPGF — the dynamically scheduled (chunk size 1) parallel
// for-loop in FP_tree::FP_growth_first() — instantiated three times; the
// second instance takes ~70% of execution time and contains 1292 chunks of
// wildly disproportionate size: a few iterations mine huge conditional
// trees, spaced irregularly over the iteration range, so the greedy dynamic
// schedule gives some cores far more work (load balance 35.5 on 48 cores).
//
// The paper's resolution is resource trimming: a bin-packer shows 7 cores
// retain the same makespan, so the loop's team is limited with num_threads
// (load balance 1.06, Table 1). `fpgf_threads` applies that fix here.
//
// Our reimplementation generates a transaction database and mines per-item
// conditional pattern counts for real; the per-item mining cost follows the
// conditional-tree size, which is what produces the skew (DESIGN.md
// documents this substitution for the Parsec kosarak input).
#pragma once

#include "front/front.hpp"

namespace gg::apps {

struct FreqmineParams {
  u64 num_items = 1292;  ///< iteration count of the 2nd FPGF instance (paper)
  u64 num_transactions = 16000;
  u64 avg_transaction_len = 12;
  u64 min_support = 110;
  int fpgf_threads = 0;  ///< 0 = whole team; 7 = the paper's fix
  u64 seed = 997;
};

/// Builds the program; *patterns_found (optional) receives the number of
/// frequent patterns mined (for determinism checks).
front::TaskFn freqmine_program(front::Engine& engine,
                               const FreqmineParams& params,
                               long* patterns_found = nullptr);

}  // namespace gg::apps
