#include "sim/sim_engine.hpp"

namespace gg::sim {

SimEngine::SimEngine(SimOptions opts)
    : opts_(std::move(opts)), capture_(std::make_unique<Capture>()) {}

front::RegionId SimEngine::alloc_region(const std::string& name, u64 bytes,
                                        front::PagePlacement placement,
                                        int touch_node) {
  return capture_->alloc_region(name, bytes, placement, touch_node);
}

Trace SimEngine::run(const std::string& program_name,
                     const front::TaskFn& root) {
  Program prog = capture_->run(program_name, root);
  capture_ = std::make_unique<Capture>();  // allow further runs
  return simulate(prog, opts_);
}

}  // namespace gg::sim
