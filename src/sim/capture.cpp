#include "sim/capture.hpp"

#include <map>
#include <utility>

#include "common/check.hpp"
#include "trace/trace.hpp"

namespace gg::sim {

using front::Ctx;
using front::ForOpts;
using front::LoopFn;
using front::RegionId;
using front::SrcLoc;
using front::TaskFn;

Cycles Program::total_compute() const {
  Cycles total = 0;
  for (const TaskDef& t : tasks) {
    for (const Op& op : t.ops) {
      if (op.kind == Op::Kind::Compute) total += op.arg;
    }
  }
  for (const LoopDef& l : loops) {
    for (const IterDef& it : l.iters) total += it.compute;
  }
  return total;
}

/// Capture context: one instance per task being captured; spawn recurses.
class Capture::CtxImpl final : public Ctx {
 public:
  CtxImpl(Program* prog, u32 task_index)
      : prog_(prog), task_(task_index) {}

  void spawn(const SrcLoc& loc, TaskFn body) override {
    spawn_impl(loc, nullptr, std::move(body));
  }

  void spawn(const SrcLoc& loc, const front::Depends& deps,
             TaskFn body) override {
    spawn_impl(loc, &deps, std::move(body));
  }

  void spawn_impl(const SrcLoc& loc, const front::Depends* deps, TaskFn body) {
    GG_CHECK_MSG(iter_ == nullptr,
                 "spawning tasks from loop chunks is not supported");
    const u32 child = static_cast<u32>(prog_->tasks.size());
    {
      TaskDef def;
      def.parent = task_;
      def.child_index = next_child_index_++;
      def.src = intern_loc(loc);
      if (deps != nullptr && !deps->empty()) {
        def.dep_preds = resolve_dependences(*deps, child);
      }
      prog_->tasks.push_back(std::move(def));
    }
    Op op;
    op.kind = Op::Kind::Spawn;
    op.arg = child;
    ops().push_back(op);
    // Depth-first capture: run the child now; its ops land in its own def.
    // Sequential program order satisfies every dependence by construction.
    CtxImpl child_ctx(prog_, child);
    body(child_ctx);
  }

  /// OpenMP last-writer/reader resolution against earlier siblings.
  std::vector<u32> resolve_dependences(const front::Depends& deps, u32 child) {
    std::vector<u32> preds;
    auto add = [&](u32 p) {
      if (p == child) return;
      for (u32 q : preds) {
        if (q == p) return;
      }
      preds.push_back(p);
    };
    for (u64 h : deps.in) {
      auto it = dep_map_.find(h);
      if (it != dep_map_.end() && it->second.has_writer)
        add(it->second.last_writer);
    }
    for (u64 h : deps.out) {
      auto it = dep_map_.find(h);
      if (it != dep_map_.end()) {
        if (it->second.has_writer) add(it->second.last_writer);
        for (u32 r : it->second.readers) add(r);
      }
    }
    for (u64 h : deps.in) dep_map_[h].readers.push_back(child);
    for (u64 h : deps.out) {
      auto& e = dep_map_[h];
      e.has_writer = true;
      e.last_writer = child;
      e.readers.clear();
    }
    return preds;
  }

  void taskwait() override {
    GG_CHECK_MSG(iter_ == nullptr,
                 "taskwait inside loop chunks is not supported");
    Op op;
    op.kind = Op::Kind::Wait;
    ops().push_back(op);
  }

  void parallel_for(const SrcLoc& loc, u64 lo, u64 hi, const ForOpts& opts,
                    const LoopFn& body) override {
    GG_CHECK_MSG(task_ == 0 && iter_ == nullptr,
                 "parallel_for is only supported from the root task");
    const u32 loop_index = static_cast<u32>(prog_->loops.size());
    prog_->loops.emplace_back();
    {
      LoopDef& def = prog_->loops.back();
      def.enclosing_task = task_;
      def.src = intern_loc(loc);
      def.sched = opts.sched;
      def.chunk_param = opts.chunk;
      def.lo = lo;
      def.hi = hi;
      def.num_threads_req = opts.num_threads;
      def.iters.resize(hi > lo ? hi - lo : 0);
    }
    Op op;
    op.kind = Op::Kind::Loop;
    op.arg = loop_index;
    ops().push_back(op);
    for (u64 i = lo; i < hi; ++i) {
      // Point the annotation sink at this iteration's cost record. Re-read
      // the loop def each iteration: the body may not grow loops (no nested
      // parallelism) but keeping the access local is cheap and safe.
      iter_ = &prog_->loops[loop_index].iters[i - lo];
      body(i, *this);
      iter_ = nullptr;
    }
  }

  void compute(Cycles cycles) override {
    if (iter_ != nullptr) {
      iter_->compute += cycles;
      return;
    }
    auto& v = ops();
    if (!v.empty() && v.back().kind == Op::Kind::Compute) {
      v.back().arg += cycles;  // merge adjacent compute annotations
    } else {
      Op op;
      op.kind = Op::Kind::Compute;
      op.arg = cycles;
      v.push_back(op);
    }
  }

  void touch(RegionId region, u64 offset, u64 bytes, u32 stride,
             u32 repeats) override {
    GG_CHECK_MSG(region != front::kNoRegion &&
                     region < prog_->regions.size(),
                 "touch() on an unallocated region");
    TouchOp t;
    t.region = region;
    t.offset = offset;
    t.span = bytes;
    t.stride = stride;
    t.repeats = repeats == 0 ? 1 : repeats;
    if (iter_ != nullptr) {
      iter_->touches.push_back(t);
      return;
    }
    Op op;
    op.kind = Op::Kind::Touch;
    op.touch = t;
    ops().push_back(op);
  }

  int worker() const override { return 0; }
  int num_workers() const override { return 1; }

 private:
  std::vector<Op>& ops() { return prog_->tasks[task_].ops; }

  StrId intern_loc(const SrcLoc& loc) {
    return intern_src(prog_->strings, loc.file, loc.line, loc.func);
  }

  struct DepEntry {
    bool has_writer = false;
    u32 last_writer = 0;
    std::vector<u32> readers;
  };

  Program* prog_;
  u32 task_;
  u32 next_child_index_ = 0;
  IterDef* iter_ = nullptr;  ///< non-null while capturing a loop iteration
  std::map<u64, DepEntry> dep_map_;
};

Capture::Capture() : program_(std::make_unique<Program>()) {
  program_->regions.push_back(RegionDef{"<none>", 0,
                                        front::PagePlacement::FirstTouch, 0});
}

front::RegionId Capture::alloc_region(const std::string& name, u64 bytes,
                                      front::PagePlacement placement,
                                      int touch_node) {
  RegionDef def;
  def.name = name;
  def.bytes = bytes;
  def.placement = placement;
  def.home_node = touch_node < 0 ? 0 : touch_node;
  program_->regions.push_back(std::move(def));
  return static_cast<front::RegionId>(program_->regions.size() - 1);
}

Program Capture::run(const std::string& program_name, const TaskFn& root) {
  GG_CHECK_MSG(program_->tasks.empty() && !program_->regions.empty(),
               "Capture::run may only be called once per Capture");
  program_->name = program_name;
  TaskDef root_def;
  root_def.is_root = true;
  root_def.src = program_->strings.intern("<root>");
  program_->tasks.push_back(std::move(root_def));
  CtxImpl ctx(program_.get(), 0);
  root(ctx);
  return std::move(*program_);
}

Program capture_program(const std::string& name, const front::TaskFn& root) {
  Capture cap;
  return cap.run(name, root);
}

Trace CaptureRegionEngine::run(const std::string&, const front::TaskFn&) {
  GG_CHECK_MSG(false,
               "CaptureRegionEngine only allocates regions; use Capture::run");
  return Trace{};  // unreachable
}

}  // namespace gg::sim
