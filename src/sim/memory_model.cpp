#include "sim/memory_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace gg::sim {

MemoryModel::MemoryModel(const Topology& topo,
                         const std::vector<RegionDef>& regions, int num_cores)
    : topo_(topo), regions_(regions) {
  const MemoryParams& mp = topo.memory();
  capacity_segments_ =
      std::max<u64>(1, mp.private_cache_bytes / kSegmentBytes);
  caches_.resize(static_cast<size_t>(num_cores));
  frontiers_.resize(static_cast<size_t>(num_cores));
}

void MemoryModel::reset() {
  for (auto& c : caches_) {
    c.lru.clear();
    c.index.clear();
  }
  for (auto& f : frontiers_) f.clear();
}

bool MemoryModel::lookup_insert(int core, const SegKey& key) {
  CoreCache& cache = caches_[static_cast<size_t>(core)];
  auto it = cache.index.find(key);
  if (it != cache.index.end()) {
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
    return true;
  }
  cache.lru.push_front(key);
  cache.index.emplace(key, cache.lru.begin());
  if (cache.lru.size() > capacity_segments_) {
    cache.index.erase(cache.lru.back());
    cache.lru.pop_back();
  }
  return false;
}

double MemoryModel::miss_latency(int core, const RegionDef& region,
                                 int active_cores) const {
  const MemoryParams& mp = topo_.memory();
  const int my_node = topo_.numa_of_core(core);
  const int nodes = topo_.num_numa_nodes();

  // Expected line latency over the region's home-node distribution and the
  // expected memory-controller queueing at those nodes.
  auto line_cycles = [&](int dist) {
    // dist 10 (local) -> base latency; each extra distance unit adds
    // distance_unit_cycles.
    return static_cast<double>(mp.local_line_cycles) +
           static_cast<double>(mp.distance_unit_cycles) *
               static_cast<double>(std::max(0, dist - 10));
  };
  double lat = 0.0;
  double node_share = 1.0;  // fraction of this region homed per node
  switch (region.placement) {
    case front::PagePlacement::FirstTouch:
    case front::PagePlacement::Local:
      lat = line_cycles(topo_.numa_distance(my_node, region.home_node));
      node_share = 1.0;
      break;
    case front::PagePlacement::RoundRobin: {
      double acc = 0.0;
      for (int n = 0; n < nodes; ++n)
        acc += line_cycles(topo_.numa_distance(my_node, n));
      lat = acc / nodes;
      node_share = 1.0 / nodes;
      break;
    }
  }
  // Contention: other busy cores are assumed to miss at a similar rate; the
  // expected number queueing on this region's controller(s) scales with the
  // share of pages homed there.
  const double pressure =
      std::max(0.0, static_cast<double>(active_cores) * node_share - 1.0);
  const double contention = 1.0 + mp.contention_factor * pressure;
  return lat * contention;
}

TouchCost MemoryModel::on_touch(int core, const TouchOp& touch,
                                int active_cores) {
  TouchCost cost;
  if (touch.span == 0 || touch.region == front::kNoRegion ||
      touch.region >= regions_.size()) {
    return cost;
  }
  const RegionDef& region = regions_[touch.region];
  const MemoryParams& mp = topo_.memory();
  const u64 line = std::max<u32>(1, mp.line_bytes);
  const u64 repeats = std::max<u32>(1, touch.repeats);

  // ---- L1 behaviour (analytic, stateless) --------------------------------
  // A walk with stride > line misses L1 on every access (the bmod column
  // walk, §4.3.2); sequential walks are prefetched and pay a small per-line
  // refill. Repeats multiply: re-walking a block larger than L1 re-misses.
  const u64 accesses_per_walk =
      touch.stride > line ? std::max<u64>(1, touch.span / touch.stride)
                          : std::max<u64>(1, touch.span / line);
  Cycles l1_stall = 0;
  u64 l1_misses = 0;
  if (touch.stride > line) {
    l1_misses = accesses_per_walk * repeats;
    // Under multicore execution a share of these misses is serviced by
    // remote caches (the block was produced by another core): coherence
    // traffic that inflates per-grain work relative to 1-core runs.
    const double remote_frac =
        mp.coherence_rate *
        (caches_.size() <= 1
             ? 0.0
             : static_cast<double>(active_cores - 1) /
                   static_cast<double>(caches_.size() - 1));
    const double per_miss =
        static_cast<double>(mp.l1_miss_cycles) +
        remote_frac * miss_latency(core, region, active_cores);
    l1_stall = static_cast<Cycles>(static_cast<double>(l1_misses) * per_miss);
  } else {
    l1_misses = accesses_per_walk * repeats;
    l1_stall = l1_misses * mp.l1_stream_cycles;
  }

  // ---- Private-cache residency + NUMA (stateful) --------------------------
  // Distinct lines eventually brought in from memory: the whole span once
  // (repeats hit the private cache). Resident segments hit; absent ones
  // miss their share and pay the distance/contention latency.
  const u64 distinct_lines = std::max<u64>(1, touch.span / line);
  const u64 seg_lo = touch.offset / kSegmentBytes;
  const u64 seg_hi = (touch.offset + touch.span - 1) / kSegmentBytes;
  const u64 nsegs = seg_hi - seg_lo + 1;
  u64 missed_segments = 0;
  for (u64 s = seg_lo; s <= seg_hi; ++s) {
    if (!lookup_insert(core, SegKey{touch.region, s})) ++missed_segments;
  }
  const double miss_fraction =
      static_cast<double>(missed_segments) / static_cast<double>(nsegs);
  u64 missed_lines = static_cast<u64>(
      std::llround(static_cast<double>(distinct_lines) * miss_fraction));

  // Streaming frontier: fresh bytes beyond anything this core has seen in
  // the region are memory fetches even when the 16 KB segment already
  // counts as resident (a sequence of sub-segment touches walking forward).
  {
    Frontier& fr = frontiers_[static_cast<size_t>(core)][touch.region];
    const u64 end = touch.offset + touch.span;
    if (end > fr.end) {
      const u64 from = std::max(fr.end, touch.offset);
      fr.frac_bytes += end - from;
      fr.end = end;
      const u64 fresh_lines = fr.frac_bytes / line;
      fr.frac_bytes %= line;
      missed_lines = std::max(missed_lines, fresh_lines);
    }
  }

  cost.line_misses = l1_misses * (touch.stride > line ? 1 : 0) + missed_lines;
  cost.bytes = touch.span * repeats;
  cost.stall =
      l1_stall + static_cast<Cycles>(std::llround(
                     static_cast<double>(missed_lines) *
                     miss_latency(core, region, active_cores)));
  return cost;
}

}  // namespace gg::sim
