// Phase A: capture. Runs the app once, sequentially, recording its parallel
// structure and cost annotations into a sim::Program.
#pragma once

#include <memory>
#include <string>

#include "front/front.hpp"
#include "sim/program.hpp"

namespace gg::sim {

/// Captures programs written against front::Ctx. Regions must be allocated
/// before run(). The capture executes task bodies depth-first at spawn
/// (inline), so real results are computed exactly once.
class Capture {
 public:
  Capture();

  /// Registers a region with the (future) memory model.
  front::RegionId alloc_region(const std::string& name, u64 bytes,
                               front::PagePlacement placement,
                               int touch_node = -1);

  /// Runs the root body and returns the captured program.
  Program run(const std::string& program_name, const front::TaskFn& root);

 private:
  class CtxImpl;
  std::unique_ptr<Program> program_;
};

/// One-call convenience.
Program capture_program(const std::string& name, const front::TaskFn& root);

/// front::Engine adapter over a Capture for app builders that only need
/// region allocation before the capture run (benches capture once and then
/// simulate under many configurations). run() aborts — use Capture::run.
class CaptureRegionEngine final : public front::Engine {
 public:
  explicit CaptureRegionEngine(Capture& cap) : cap_(cap) {}
  front::RegionId alloc_region(const std::string& name, u64 bytes,
                               front::PagePlacement placement,
                               int touch_node = -1) override {
    return cap_.alloc_region(name, bytes, placement, touch_node);
  }
  Trace run(const std::string&, const front::TaskFn&) override;

 private:
  Capture& cap_;
};

}  // namespace gg::sim
