// SimEngine: front::Engine convenience wrapper around capture + simulate.
// For parameter sweeps (e.g. Fig. 1 speedup curves over core counts and
// policies) capture once with sim::Capture and call sim::simulate() per
// configuration instead — the capture is reused.
#pragma once

#include <memory>

#include "front/front.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

namespace gg::sim {

class SimEngine final : public front::Engine {
 public:
  explicit SimEngine(SimOptions opts);

  front::RegionId alloc_region(const std::string& name, u64 bytes,
                               front::PagePlacement placement,
                               int touch_node = -1) override;

  Trace run(const std::string& program_name, const front::TaskFn& root) override;

  const SimOptions& options() const { return opts_; }

 private:
  SimOptions opts_;
  std::unique_ptr<Capture> capture_;
};

}  // namespace gg::sim
