#include "sim/des.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "obs/exposition.hpp"
#include "trace/recorder.hpp"

namespace gg::sim {

namespace {

constexpr u32 kNoLoop = ~u32{0};

class Simulator {
 public:
  Simulator(const Program& prog, const SimOptions& opts)
      : prog_(prog),
        opts_(opts),
        ncores_(std::min(opts.num_cores, opts.topology.num_cores())),
        mem_(opts.topology, prog.regions, ncores_),
        recorder_(1),
        writer_(recorder_.writer(0)) {
    GG_CHECK(ncores_ >= 1);
    GG_CHECK(!prog_.tasks.empty() && prog_.tasks.front().is_root);
  }

  Trace run();

 private:
  // -- per-task dynamic state ------------------------------------------------
  struct TaskState {
    TimeNs ready_at = 0;  ///< when the enqueue became visible (no thief may
                          ///< start the task earlier — avoids DES
                          ///< event-atomicity anachronisms)
    u32 dep_pending = 0;  ///< unfinished dependence predecessors
    bool finished = false;
    std::vector<u32> dep_succs;  ///< tasks waiting on this one
    u32 live_children = 0;
    u32 children_since_join = 0;
    u32 next_frag_seq = 0;
    u32 next_join_seq = 0;
    u32 pending_join_seq = 0;
    TimeNs join_start = 0;
    bool waiting = false;  // suspended in taskwait / implicit barrier
    bool ready = false;    // wait condition satisfied; resumable
  };

  struct Frame {
    u32 task = 0;
    size_t pc = 0;
    TimeNs frag_start = 0;
    Counters frag_cnt;
    enum class Block : u8 { None, InlineChild, Children, Barrier, Loop };
    Block block = Block::None;
  };

  struct Core {
    int id = 0;
    TimeNs time = 0;
    bool sleeping = false;
    bool has_event = false;
    std::optional<Frame> current;
    std::vector<Frame> stack;  // suspended frames; back() is the top
    std::deque<u32> deque;     // WS deque: back = bottom (owner side)
    Xoshiro256 rng{0};
    // per-loop participation bookkeeping
    u32 participating_loop = kNoLoop;
    u32 finished_loop = kNoLoop;
    u32 loop_bk_seq = 0;
    u32 loop_chunk_seq = 0;
    bool loop_worked = false;
    // Modeled scheduler-introspection counters (mirror of the threaded
    // engine's SchedCounters; the DES has no CAS races or deque growth, so
    // those fields stay zero in the emitted stats).
    u64 tasks_spawned = 0;
    u64 tasks_executed = 0;
    u64 tasks_inlined = 0;
    u64 steals = 0;
    u64 steal_failures = 0;
    u64 queue_pushes = 0;
    u64 queue_pops = 0;
    u64 taskwait_helps = 0;
    TimeNs idle_ns = 0;
    TimeNs sleep_since = 0;  // valid while sleeping
  };

  struct LoopRun {
    u32 def_index = 0;
    LoopId uid = 0;
    u64 cursor = 0;
    u64 done_iters = 0;
    u64 total = 0;
    u64 chunk_min = 1;
    int team = 1;
    std::vector<std::vector<std::pair<u64, u64>>> static_chunks;
    std::vector<u32> static_pos;
    TimeNs start_time = 0;
    TimeNs max_end = 0;
    u16 starting_core = 0;
    u32 seq = 0;
    bool done = false;   ///< all iterations executed
    int active = 0;      ///< workers that got chunks but have not yet
                         ///< recorded their final empty book-keeping step
  };

  // -- helpers ---------------------------------------------------------------
  TimeNs ns(Cycles c) const { return opts_.topology.cycles_to_ns(c); }

  void schedule(Core& c) {
    if (!c.has_event) {
      c.has_event = true;
      events_.push({c.time, c.id});
    }
  }

  void wake(Core& c, TimeNs at) {
    if (c.sleeping) {
      c.sleeping = false;
      --sleeping_count_;
      c.time = std::max(c.time, at);
      c.idle_ns += c.time - c.sleep_since;  // modeled time parked
      schedule(c);
    }
  }

  void wake_all(TimeNs at) {
    for (auto& c : cores_) wake(c, at);
  }

  void sleep(Core& c) {
    if (!c.sleeping) {
      c.sleeping = true;
      ++sleeping_count_;
      c.sleep_since = c.time;
    }
  }

  int active_cores() const { return ncores_ - sleeping_count_; }

  /// Charges one deferred-task queue operation (enqueue/dequeue/steal).
  /// Lock-serialized runtimes fully serialize on the lock; lock-free ones
  /// still pay a global coherence-bandwidth share. See SimPolicy.
  void charge_queue_op(Core& c) {
    const SimPolicy& pol = opts_.policy;
    const Cycles serial =
        pol.lock_serialized ? pol.lock_cycles : pol.coherence_serial_cycles;
    if (ncores_ == 1) {
      c.time += ns(serial);
      return;
    }
    const TimeNs start = std::max(queue_busy_until_, c.time);
    queue_busy_until_ = start + ns(serial);
    c.time = queue_busy_until_;
  }

  StrId remap_str(StrId program_str) {
    // Program strings and trace strings are separate tables; intern lazily.
    if (program_str >= str_map_.size()) str_map_.resize(program_str + 1, 0);
    // Index 0 always maps to 0. Others are interned on first use; an
    // interned id is never 0 for a non-empty string, so 0 means "unmapped".
    if (program_str == 0) return 0;
    if (str_map_[program_str] == 0) {
      str_map_[program_str] =
          recorder_.intern(prog_.strings.get(program_str));
    }
    return str_map_[program_str];
  }

  // -- record emission -------------------------------------------------------
  // Fragments end at the moment the runtime call began (matching the
  // threaded engine): spawn/taskwait/loop-setup costs live between
  // fragments, in the fork/join node intervals, never in grain exec time.
  void emit_fragment_end_at(Core& c, Frame& f, TimeNs end, FragmentEnd reason,
                            u64 ref) {
    FragmentRec rec;
    rec.task = f.task;
    rec.seq = tstate_[f.task].next_frag_seq++;
    rec.start = f.frag_start;
    rec.end = end;
    rec.core = static_cast<u16>(c.id);
    rec.counters = f.frag_cnt;
    rec.end_reason = reason;
    rec.end_ref = ref;
    writer_.fragment(rec);
    f.frag_cnt = Counters{};
  }

  void emit_fragment_end(Core& c, Frame& f, FragmentEnd reason, u64 ref) {
    emit_fragment_end_at(c, f, c.time, reason, ref);
  }

  void emit_task_rec(u32 child, u16 core, TimeNs create_time,
                     TimeNs creation_cost, bool inlined) {
    const TaskDef& def = prog_.tasks[child];
    TaskRec rec;
    rec.uid = child;
    rec.parent = def.parent;
    rec.child_index = def.child_index;
    rec.src = remap_str(def.src);
    rec.create_time = create_time;
    rec.create_core = core;
    rec.creation_cost = creation_cost;
    rec.inlined = inlined;
    writer_.task(rec);
  }

  // -- core behavior ---------------------------------------------------------
  void step(int core_id, TimeNs t) {
    Core& c = cores_[static_cast<size_t>(core_id)];
    c.has_event = false;
    c.time = std::max(c.time, t);
    if (done_) return;
    if (c.current.has_value()) {
      exec_one_op(c);
    } else {
      find_work(c);
    }
  }

  void exec_one_op(Core& c);
  void find_work(Core& c);
  void start_task(Core& c, u32 task);
  void complete_current(Core& c);
  void on_task_finished(u32 task, TimeNs at);
  bool participate_in_loop(Core& c);
  std::optional<std::pair<u64, u64>> claim_chunk(LoopRun& L, int core);
  void run_chunk(Core& c, LoopRun& L, u64 lo, u64 hi);
  void begin_loop(Core& c, Frame& f, u32 loop_index);
  void finish_root(Core& c, Frame& f);

  // -- members ---------------------------------------------------------------
  const Program& prog_;
  SimOptions opts_;
  int ncores_;
  MemoryModel mem_;
  TraceRecorder recorder_;
  TraceRecorder::Writer writer_;

  std::vector<TaskState> tstate_;
  std::vector<Core> cores_;
  std::deque<u32> central_;
  std::optional<LoopRun> loop_;
  u64 live_tasks_ = 0;
  int sleeping_count_ = 0;
  LoopId next_loop_uid_ = 1;
  TimeNs queue_busy_until_ = 0;  // global queue lock / coherence timeline
  u32 root_loop_seq_ = 0;
  bool done_ = false;
  TimeNs region_end_ = 0;

  using Ev = std::pair<TimeNs, int>;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> events_;
  std::vector<StrId> str_map_;
  std::vector<u8> inlined_;  // task index -> executed inline (undeferred)
};

void Simulator::start_task(Core& c, u32 task) {
  if (task != 0) {
    ++c.tasks_executed;  // root's implicit task is not counted (matches rts)
    if (!c.stack.empty() &&
        (c.stack.back().block == Frame::Block::Children ||
         c.stack.back().block == Frame::Block::Barrier)) {
      ++c.taskwait_helps;  // picked up while a frame waits on this core
    }
  }
  Frame f;
  f.task = task;
  f.pc = 0;
  f.frag_start = c.time;
  c.current = f;
}

void Simulator::on_task_finished(u32 task, TimeNs at) {
  const TaskDef& def = prog_.tasks[task];
  TaskState& pts = tstate_[def.parent];
  tstate_[task].finished = true;
  pts.live_children--;
  live_tasks_--;
  if (pts.waiting && pts.live_children == 0) {
    pts.ready = true;
    wake_all(at);
  }
  // Root implicit barrier waits for the global count.
  TaskState& root = tstate_[0];
  if (live_tasks_ == 0 && root.waiting) {
    root.ready = true;
    wake_all(at);
  }
}

void Simulator::complete_current(Core& c) {
  Frame f = *c.current;
  c.current.reset();
  emit_fragment_end(c, f, FragmentEnd::TaskEnd, 0);
  const u32 task = f.task;
  if (task == 0) {
    // Root finished: the simulation is over.
    done_ = true;
    region_end_ = c.time;
    return;
  }
  // Release dependence successors onto the completing core's queue (the
  // threaded runtime does the same).
  tstate_[task].finished = true;
  for (u32 succ : tstate_[task].dep_succs) {
    if (--tstate_[succ].dep_pending == 0) {
      tstate_[succ].ready_at = c.time;
      ++c.queue_pushes;
      if (opts_.policy.scheduler == SimSchedulerKind::WorkStealing) {
        c.deque.push_back(succ);
      } else {
        central_.push_back(succ);
      }
      wake_all(c.time);
    }
  }
  tstate_[task].dep_succs.clear();
  if (!inlined_[task]) {
    on_task_finished(task, c.time);
  }
  // If an inlined spawn suspended the parent right below us, resume it now.
  if (!c.stack.empty() && c.stack.back().block == Frame::Block::InlineChild) {
    Frame parent = c.stack.back();
    c.stack.pop_back();
    parent.block = Frame::Block::None;
    parent.frag_start = c.time;
    c.current = parent;
  }
  schedule(c);
}

void Simulator::exec_one_op(Core& c) {
  Frame& f = *c.current;
  const TaskDef& def = prog_.tasks[f.task];
  if (f.pc >= def.ops.size()) {
    if (f.task == 0) {
      finish_root(c, f);
    } else {
      complete_current(c);
    }
    return;
  }
  const Op& op = def.ops[f.pc];
  const SimPolicy& pol = opts_.policy;
  switch (op.kind) {
    case Op::Kind::Compute: {
      c.time += ns(op.arg);
      f.frag_cnt.compute += op.arg;
      f.pc++;
      break;
    }
    case Op::Kind::Touch: {
      if (opts_.memory_model) {
        const TouchCost cost = mem_.on_touch(c.id, op.touch, active_cores());
        c.time += ns(cost.stall);
        f.frag_cnt.stall += cost.stall;
        f.frag_cnt.cache_misses += cost.line_misses;
        f.frag_cnt.bytes_accessed += cost.bytes;
      }
      f.pc++;
      break;
    }
    case Op::Kind::Spawn: {
      const u32 child = static_cast<u32>(op.arg);
      const TimeNs fork_t = c.time;
      // Dependences: record edges, count live predecessors.
      u32 live_preds = 0;
      for (u32 p : prog_.tasks[child].dep_preds) {
        DependRec d;
        d.pred = p;
        d.succ = child;
        writer_.depend(d);
        if (!tstate_[p].finished) {
          tstate_[p].dep_succs.push_back(child);
          ++live_preds;
        }
      }
      tstate_[child].dep_pending = live_preds;
      // Internal-cutoff decision (same rules as the threaded runtime). A
      // task with unsatisfied dependences can never run inline.
      bool inline_child = false;
      if (live_preds == 0) {
        if (pol.task_throttle_per_worker > 0 &&
            live_tasks_ >=
                pol.task_throttle_per_worker * static_cast<u64>(ncores_)) {
          inline_child = true;
        }
        if (!inline_child && pol.inline_queue_limit > 0) {
          const size_t qsize =
              pol.scheduler == SimSchedulerKind::WorkStealing
                  ? c.deque.size()
                  : central_.size();
          if (qsize >= pol.inline_queue_limit) inline_child = true;
        }
      }
      c.time += ns(inline_child ? pol.inline_exec_cycles
                                : pol.task_create_cycles);
      if (!inline_child) charge_queue_op(c);
      emit_fragment_end_at(c, f, fork_t, FragmentEnd::Fork, child);
      emit_task_rec(child, static_cast<u16>(c.id), fork_t, c.time - fork_t,
                    inline_child);
      inlined_[child] = inline_child;
      ++c.tasks_spawned;
      if (inline_child) ++c.tasks_inlined;
      TaskState& ts = tstate_[f.task];
      ts.children_since_join++;
      f.pc++;
      if (inline_child) {
        Frame parent = f;
        parent.block = Frame::Block::InlineChild;
        c.stack.push_back(parent);
        c.current.reset();
        start_task(c, child);
      } else {
        ts.live_children++;
        live_tasks_++;
        if (live_preds == 0) {
          tstate_[child].ready_at = c.time;
          ++c.queue_pushes;
          if (pol.scheduler == SimSchedulerKind::WorkStealing) {
            c.deque.push_back(child);
          } else {
            central_.push_back(child);
          }
          wake_all(c.time);
        }
        // else: released by the last finishing predecessor.
        f.frag_start = c.time;
      }
      break;
    }
    case Op::Kind::Wait: {
      TaskState& ts = tstate_[f.task];
      f.pc++;
      if (ts.children_since_join == 0 && ts.live_children == 0) {
        break;  // structural no-op
      }
      const TimeNs wait_t = c.time;
      c.time += ns(pol.taskwait_cycles);
      const u32 jseq = ts.next_join_seq++;
      emit_fragment_end_at(c, f, wait_t, FragmentEnd::Join, jseq);
      if (ts.live_children == 0) {
        JoinRec j;
        j.task = f.task;
        j.seq = jseq;
        j.start = wait_t;
        j.end = c.time;
        j.core = static_cast<u16>(c.id);
        writer_.join(j);
        ts.children_since_join = 0;
        f.frag_start = c.time;
        break;
      }
      ts.waiting = true;
      ts.ready = false;
      ts.pending_join_seq = jseq;
      ts.join_start = wait_t;
      Frame blocked = f;
      blocked.block = Frame::Block::Children;
      c.current.reset();
      c.stack.push_back(blocked);
      break;
    }
    case Op::Kind::Loop: {
      begin_loop(c, f, static_cast<u32>(op.arg));
      break;
    }
  }
  schedule(c);
}

void Simulator::begin_loop(Core& c, Frame& f, u32 loop_index) {
  const LoopDef& ld = prog_.loops[loop_index];
  const SimPolicy& pol = opts_.policy;
  const TimeNs loop_t = c.time;
  c.time += ns(pol.loop_setup_cycles);
  f.pc++;
  const LoopId uid = next_loop_uid_++;
  const u32 seq = root_loop_seq_++;
  emit_fragment_end_at(c, f, loop_t, FragmentEnd::Loop, uid);

  if (ld.iters.empty()) {
    LoopRec rec;
    rec.uid = uid;
    rec.enclosing_task = f.task;
    rec.src = remap_str(ld.src);
    rec.sched = ld.sched;
    rec.chunk_param = ld.chunk_param;
    rec.iter_begin = ld.lo;
    rec.iter_end = ld.hi;
    rec.num_threads = static_cast<u16>(
        ld.num_threads_req > 0 ? std::min(ld.num_threads_req, ncores_)
                               : ncores_);
    rec.starting_thread = static_cast<u16>(c.id);
    rec.seq = seq;
    rec.start = c.time;
    rec.end = c.time;
    writer_.loop(rec);
    f.frag_start = c.time;
    return;
  }

  LoopRun L;
  L.def_index = loop_index;
  L.uid = uid;
  L.seq = seq;
  L.starting_core = static_cast<u16>(c.id);
  L.total = ld.hi - ld.lo;
  L.team = ld.num_threads_req > 0 ? std::min(ld.num_threads_req, ncores_)
                                  : ncores_;
  L.cursor = ld.lo;
  L.start_time = c.time;
  L.max_end = c.time;
  if (ld.sched == ScheduleKind::Static) {
    const u64 team = static_cast<u64>(L.team);
    const u64 csize = ld.chunk_param > 0
                          ? ld.chunk_param
                          : std::max<u64>(1, (L.total + team - 1) / team);
    L.chunk_min = csize;
    L.static_chunks.assign(static_cast<size_t>(L.team), {});
    L.static_pos.assign(static_cast<size_t>(L.team), 0);
    u64 pos = ld.lo;
    u64 index = 0;
    while (pos < ld.hi) {
      const u64 end = std::min(pos + csize, ld.hi);
      L.static_chunks[static_cast<size_t>(index % team)].emplace_back(pos,
                                                                      end);
      pos = end;
      ++index;
    }
  } else {
    L.chunk_min = std::max<u64>(1, ld.chunk_param);
  }
  loop_ = std::move(L);

  Frame blocked = f;
  blocked.block = Frame::Block::Loop;
  c.current.reset();
  c.stack.push_back(blocked);
  wake_all(c.time);
}

void Simulator::finish_root(Core& c, Frame& f) {
  TaskState& ts = tstate_[0];
  if ((ts.children_since_join > 0 || live_tasks_ > 0) && !ts.waiting) {
    const u32 jseq = ts.next_join_seq++;
    emit_fragment_end(c, f, FragmentEnd::Join, jseq);
    if (live_tasks_ == 0) {
      JoinRec j;
      j.task = 0;
      j.seq = jseq;
      j.start = c.time;
      j.end = c.time;
      j.core = static_cast<u16>(c.id);
      writer_.join(j);
      ts.children_since_join = 0;
      f.frag_start = c.time;
      complete_current(c);
      return;
    }
    ts.waiting = true;
    ts.ready = false;
    ts.pending_join_seq = jseq;
    ts.join_start = c.time;
    Frame blocked = f;
    blocked.block = Frame::Block::Barrier;
    c.current.reset();
    c.stack.push_back(blocked);
    schedule(c);
    return;
  }
  complete_current(c);
}

std::optional<std::pair<u64, u64>> Simulator::claim_chunk(LoopRun& L,
                                                          int core) {
  const LoopDef& ld = prog_.loops[L.def_index];
  switch (ld.sched) {
    case ScheduleKind::Static: {
      auto& pos = L.static_pos[static_cast<size_t>(core)];
      const auto& mine = L.static_chunks[static_cast<size_t>(core)];
      if (pos >= mine.size()) return std::nullopt;
      return mine[pos++];
    }
    case ScheduleKind::Dynamic: {
      if (L.cursor >= ld.hi) return std::nullopt;
      const u64 lo = L.cursor;
      const u64 hi = std::min(lo + L.chunk_min, ld.hi);
      L.cursor = hi;
      return std::make_pair(lo, hi);
    }
    case ScheduleKind::Guided: {
      if (L.cursor >= ld.hi) return std::nullopt;
      const u64 remaining = ld.hi - L.cursor;
      const u64 size = std::max<u64>(
          L.chunk_min, remaining / (2 * static_cast<u64>(L.team)));
      const u64 take = std::min(size, remaining);
      const u64 lo = L.cursor;
      L.cursor += take;
      return std::make_pair(lo, L.cursor);
    }
  }
  return std::nullopt;
}

void Simulator::run_chunk(Core& c, LoopRun& L, u64 lo, u64 hi) {
  const LoopDef& ld = prog_.loops[L.def_index];
  const TimeNs t0 = c.time;
  Counters cnt;
  for (u64 i = lo; i < hi; ++i) {
    const IterDef& it = ld.iters[i - ld.lo];
    cnt.compute += it.compute;
    c.time += ns(it.compute);
    if (opts_.memory_model) {
      for (const TouchOp& touch : it.touches) {
        const TouchCost cost = mem_.on_touch(c.id, touch, active_cores());
        c.time += ns(cost.stall);
        cnt.stall += cost.stall;
        cnt.cache_misses += cost.line_misses;
        cnt.bytes_accessed += cost.bytes;
      }
    }
  }
  ChunkRec rec;
  rec.loop = L.uid;
  rec.thread = static_cast<u16>(c.id);
  rec.core = static_cast<u16>(c.id);
  rec.seq_on_thread = c.loop_chunk_seq++;
  rec.iter_begin = lo;
  rec.iter_end = hi;
  rec.start = t0;
  rec.end = c.time;
  rec.counters = cnt;
  writer_.chunk(rec);
  L.done_iters += hi - lo;
  L.max_end = std::max(L.max_end, c.time);
  if (L.done_iters == L.total) {
    L.done = true;
    // The frame blocked on this loop becomes resumable.
    wake_all(c.time);
  }
}

bool Simulator::participate_in_loop(Core& c) {
  if (!loop_.has_value()) return false;
  LoopRun& L = *loop_;
  if (c.id >= L.team || c.finished_loop == L.uid) return false;
  const bool worked = c.participating_loop == L.uid && c.loop_worked;
  if (L.done && !worked) return false;  // latecomer: stays silent
  if (c.participating_loop != L.uid) {
    c.participating_loop = L.uid;
    c.loop_bk_seq = 0;
    c.loop_chunk_seq = 0;
    c.loop_worked = false;
  }
  const TimeNs bk0 = c.time;
  c.time += ns(opts_.policy.bookkeep_cycles);
  auto range = claim_chunk(L, c.id);
  if (range.has_value() || c.loop_worked) {
    BookkeepRec b;
    b.loop = L.uid;
    b.thread = static_cast<u16>(c.id);
    b.core = static_cast<u16>(c.id);
    b.seq_on_thread = c.loop_bk_seq++;
    b.start = bk0;
    b.end = c.time;
    b.got_chunk = range.has_value();
    writer_.bookkeep(b);
    L.max_end = std::max(L.max_end, c.time);
  } else {
    c.time = bk0;  // silent latecomer: no work, no trace pollution
  }
  if (!range.has_value()) {
    c.finished_loop = L.uid;
    if (c.loop_worked) {
      // This worker's final book-keeping is recorded; once all workers have
      // drained the blocked frame becomes resumable (rts's active == 0).
      if (--L.active == 0 && L.done) {
        wake_all(c.time);
        // This very core may host the blocked frame and has already passed
        // the resume check this round — run find_work again.
        schedule(c);
        return true;
      }
    }
    return false;
  }
  if (!c.loop_worked) {
    c.loop_worked = true;
    ++L.active;
  }
  run_chunk(c, L, range->first, range->second);
  schedule(c);
  return true;
}

void Simulator::find_work(Core& c) {
  // 1. Resume the top suspended frame when its wait condition holds.
  if (!c.stack.empty()) {
    Frame& top = c.stack.back();
    const TaskState& ts = tstate_[top.task];
    const bool children_ready =
        (top.block == Frame::Block::Children ||
         top.block == Frame::Block::Barrier) &&
        ts.ready;
    const bool loop_ready = top.block == Frame::Block::Loop &&
                            loop_.has_value() && loop_->done &&
                            loop_->active == 0;
    if (children_ready) {
      Frame f = c.stack.back();
      c.stack.pop_back();
      TaskState& st = tstate_[f.task];
      JoinRec j;
      j.task = f.task;
      j.seq = st.pending_join_seq;
      j.start = st.join_start;
      j.end = c.time;
      j.core = static_cast<u16>(c.id);
      writer_.join(j);
      st.waiting = false;
      st.ready = false;
      st.children_since_join = 0;
      f.block = Frame::Block::None;
      f.frag_start = c.time;
      c.current = f;
      schedule(c);
      return;
    }
    if (loop_ready) {
      Frame f = c.stack.back();
      c.stack.pop_back();
      const LoopRun& L = *loop_;
      const LoopDef& ld = prog_.loops[L.def_index];
      LoopRec rec;
      rec.uid = L.uid;
      rec.enclosing_task = f.task;
      rec.src = remap_str(ld.src);
      rec.sched = ld.sched;
      rec.chunk_param = ld.chunk_param;
      rec.iter_begin = ld.lo;
      rec.iter_end = ld.hi;
      rec.num_threads = static_cast<u16>(L.team);
      rec.starting_thread = L.starting_core;
      rec.seq = L.seq;
      rec.start = L.start_time;
      rec.end = L.max_end;
      writer_.loop(rec);
      loop_.reset();
      c.time = std::max(c.time, rec.end);
      f.block = Frame::Block::None;
      f.frag_start = c.time;
      c.current = f;
      schedule(c);
      return;
    }
  }
  const SimPolicy& pol = opts_.policy;
  // 2. Own queue.
  if (pol.scheduler == SimSchedulerKind::WorkStealing) {
    if (!c.deque.empty()) {
      const u32 task = c.deque.back();
      c.deque.pop_back();
      ++c.queue_pops;
      c.time = std::max(c.time, tstate_[task].ready_at);
      c.time += ns(pol.task_dispatch_cycles);
      charge_queue_op(c);
      start_task(c, task);
      schedule(c);
      return;
    }
  } else if (!central_.empty()) {
    const u32 task = central_.front();
    central_.pop_front();
    ++c.queue_pops;
    c.time = std::max(c.time, tstate_[task].ready_at);
    c.time += ns(pol.task_dispatch_cycles);
    charge_queue_op(c);
    start_task(c, task);
    schedule(c);
    return;
  }
  // 3. Steal.
  if (pol.scheduler == SimSchedulerKind::WorkStealing && ncores_ > 1) {
    const int start = static_cast<int>(
        c.rng.bounded(static_cast<u64>(ncores_)));
    for (int i = 0; i < ncores_; ++i) {
      const int victim = (start + i) % ncores_;
      if (victim == c.id) continue;
      Core& v = cores_[static_cast<size_t>(victim)];
      if (!v.deque.empty()) {
        const u32 task = v.deque.front();  // thieves take the top (oldest)
        v.deque.pop_front();
        ++c.steals;
        c.time = std::max(c.time, tstate_[task].ready_at);
        c.time += ns(pol.steal_cycles);
        charge_queue_op(c);
        start_task(c, task);
        schedule(c);
        return;
      }
      ++c.steal_failures;
      c.time += ns(pol.steal_fail_cycles);
    }
  }
  // 4. Loop participation.
  if (participate_in_loop(c)) return;
  // 5. Nothing to do.
  sleep(c);
}

Trace Simulator::run() {
  tstate_.assign(prog_.tasks.size(), TaskState{});
  inlined_.assign(prog_.tasks.size(), 0);
  cores_.clear();
  cores_.resize(static_cast<size_t>(ncores_));
  for (int i = 0; i < ncores_; ++i) {
    Core& c = cores_[static_cast<size_t>(i)];
    c.id = i;
    c.rng = Xoshiro256(mix64(opts_.seed * 0x51ul + static_cast<u64>(i)));
    if (i != 0) {
      c.sleeping = true;
      ++sleeping_count_;
    }
  }

  // Root task record + initial frame on core 0.
  {
    TaskRec rec;
    rec.uid = kRootTask;
    rec.parent = kNoTask;
    rec.src = remap_str(prog_.tasks[0].src);
    writer_.task(rec);
  }
  start_task(cores_[0], 0);
  schedule(cores_[0]);

  while (!events_.empty() && !done_) {
    const auto [t, core] = events_.top();
    events_.pop();
    step(core, t);
  }
  GG_CHECK_MSG(done_, "simulation deadlocked (event queue drained early)");

  // Modeled per-core scheduler stats. cas_failures and deque_resizes stay
  // zero: the DES model is deterministic and its queues never "grow".
  for (const Core& c : cores_) {
    WorkerStatsRec s;
    s.worker = static_cast<u16>(c.id);
    s.tasks_spawned = c.tasks_spawned;
    s.tasks_executed = c.tasks_executed;
    s.tasks_inlined = c.tasks_inlined;
    s.steals = c.steals;
    s.steal_failures = c.steal_failures;
    s.deque_pushes = c.queue_pushes;
    s.deque_pops = c.queue_pops;
    s.taskwait_helps = c.taskwait_helps;
    s.idle_ns = c.idle_ns +
                (c.sleeping ? region_end_ - c.sleep_since : TimeNs{0});
    writer_.stats(s);
  }

  TraceMeta meta;
  meta.program = prog_.name;
  meta.runtime = "sim/" + opts_.policy.name;
  meta.topology = opts_.topology.name();
  meta.num_workers = ncores_;
  meta.num_cores = ncores_;
  meta.ghz = opts_.topology.ghz();
  meta.region_start = 0;
  meta.region_end = region_end_;
  meta.notes.push_back("seed=" + std::to_string(opts_.seed));
  meta.notes.push_back(std::string("memory_model=") +
                       (opts_.memory_model ? "on" : "off"));
  meta.profiled = true;
  meta.clock_source = "virtual";
  return recorder_.finish(meta);
}

}  // namespace

Trace simulate(const Program& prog, const SimOptions& opts) {
  Simulator sim(prog, opts);
  Trace trace = sim.run();
  // Modeled self-telemetry: publish the threaded engine's `engine.*` schema
  // from the simulated trace — deterministically, after the event loop, so
  // the simulation itself stays byte-identical whether or not a registry is
  // attached.
  obs::Registry* telemetry = opts.telemetry;
  if (telemetry == nullptr && obs::env_enabled())
    telemetry = &obs::process_registry();
  if (telemetry != nullptr) {
    u64 spawned = 0, executed = 0, inlined = 0, steals = 0, steal_fails = 0;
    for (const WorkerStatsRec& s : trace.worker_stats) {
      spawned += s.tasks_spawned;
      executed += s.tasks_executed;
      inlined += s.tasks_inlined;
      steals += s.steals;
      steal_fails += s.steal_failures;
    }
    telemetry->counter("engine.tasks_spawned")->add(spawned);
    telemetry->counter("engine.tasks_executed")->add(executed);
    telemetry->counter("engine.tasks_inlined")->add(inlined);
    telemetry->counter("engine.steals")->add(steals);
    telemetry->counter("engine.steal_failures")->add(steal_fails);
    obs::Histogram* task_lat = telemetry->histogram("engine.task_latency_ns");
    for (const FragmentRec& f : trace.fragments)
      task_lat->observe(f.end > f.start ? f.end - f.start : 0);
    obs::Histogram* chunk_lat =
        telemetry->histogram("engine.chunk_latency_ns");
    for (const ChunkRec& c : trace.chunks)
      chunk_lat->observe(c.end > c.start ? c.end - c.start : 0);
    telemetry->gauge("engine.progress")
        ->set(static_cast<double>(trace.grain_count()));
    telemetry->gauge("engine.live_tasks")->set(0.0);
  }
  // Modeled supervision: the scan must precede the spool round-trip so a
  // detected stall's provenance note survives in the spooled footer.
  if (opts.supervisor.enabled) {
    rts::SupervisorReport rep;
    if (rts::supervisor_scan_trace(trace, opts.supervisor, &rep)) {
      std::string line = rep.render();
      while (!line.empty() && line.back() == '\n') line.pop_back();
      for (char& c : line) {
        if (c == '\n') c = ';';
      }
      trace.meta.notes.push_back("supervisor " + line);
    }
  }
  // Modeled crash-safe spooling: write the finished trace through the real
  // sink and reconstruct it with the real recovery pass, so the simulator
  // exercises the same frame format and recovery invariants as the
  // threaded runtime — deterministically.
  if (opts.spool.enabled()) {
    spool::SpoolOptions sopts = opts.spool;
    if (telemetry != nullptr) {
      // Deterministic modeled 'T' frames: one snapshot per seal round (the
      // registry is already fully populated, so every frame is identical —
      // what matters is that the frame/recover/ggstat path is exercised).
      sopts.telemetry = telemetry;
      if (!sopts.telemetry_source) {
        sopts.telemetry_source = [telemetry] {
          return obs::encode_telemetry_payload(telemetry->snapshot());
        };
      }
    }
    std::string err;
    if (spool::spool_trace(trace, sopts, &err)) {
      spool::RecoverResult rr = spool::recover_spool_file(opts.spool.path);
      if (rr.usable) {
        trace = std::move(rr.trace);
      } else {
        trace.meta.notes.push_back("spool recovery failed: " +
                                   rr.report.summary());
      }
    } else {
      trace.meta.notes.push_back("spool disabled: " + err);
    }
  }
  if (opts.fault_plan) {
    const fault::InjectionReport rep = fault::inject(trace, *opts.fault_plan);
    trace.meta.notes.push_back(
        "fault_injection seed=" + std::to_string(opts.fault_plan->seed) +
        " " + rep.summary());
  }
  return trace;
}

}  // namespace gg::sim
