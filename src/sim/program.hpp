// Captured-program representation for the simulator.
//
// The simulator works in two phases (DESIGN.md §3):
//   Phase A (capture): the app's root body runs once, sequentially and
//   depth-first. Real computation happens here; cost annotations
//   (compute/touch) and structure (spawn/taskwait/parallel_for) are recorded
//   into the op lists below. For a deterministic program the captured
//   structure is schedule-independent — exactly the property the paper
//   relies on for grain graphs ("independent from machine size and
//   scheduling choices", §3.1).
//   Phase B (simulate): a discrete-event scheduler replays the ops on a
//   modeled NUMA machine under a runtime policy, producing a Trace.
#pragma once

#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/types.hpp"
#include "front/front.hpp"
#include "trace/records.hpp"

namespace gg::sim {

/// A memory access recorded by front::Ctx::touch().
struct TouchOp {
  front::RegionId region = front::kNoRegion;
  u64 offset = 0;   ///< start byte within the region
  u64 span = 0;     ///< bytes covered by the access pattern
  u32 stride = 0;   ///< bytes between consecutive accesses; 0 = sequential
  u32 repeats = 1;  ///< times the pattern is re-walked
};

/// One recorded action of a task body.
struct Op {
  enum class Kind : u8 { Compute, Touch, Spawn, Wait, Loop };
  Kind kind = Kind::Compute;
  u64 arg = 0;  ///< Compute: cycles; Spawn: child task index; Loop: loop index
  TouchOp touch;  ///< valid when kind == Touch
};

/// One task instance (capture runs each dynamic task exactly once, so a
/// definition here IS an instance). Index 0 is the root task.
struct TaskDef {
  u32 parent = 0;       ///< parent task index (ignored for root)
  u32 child_index = 0;  ///< creation index among the parent's children
  StrId src = 0;
  bool is_root = false;
  std::vector<Op> ops;
  std::vector<u32> dep_preds;  ///< task indices this task depends on
                               ///< (OpenMP depend clauses, resolved at
                               ///< capture in program order)
};

/// Cost of one loop iteration: straight-line compute/touch ops only
/// (spawning from chunks is not supported, matching the profiler's
/// no-nested-parallelism restriction).
struct IterDef {
  Cycles compute = 0;
  std::vector<TouchOp> touches;
};

/// One parallel for-loop instance.
struct LoopDef {
  u32 enclosing_task = 0;
  StrId src = 0;
  ScheduleKind sched = ScheduleKind::Static;
  u64 chunk_param = 0;
  u64 lo = 0;
  u64 hi = 0;
  int num_threads_req = 0;  ///< 0 = whole team
  std::vector<IterDef> iters;  ///< size == hi - lo
};

/// A registered memory region and its page-placement policy.
struct RegionDef {
  std::string name;
  u64 bytes = 0;
  front::PagePlacement placement = front::PagePlacement::FirstTouch;
  int home_node = 0;  ///< FirstTouch/Local: the single home NUMA node
};

/// A fully captured program, ready to be simulated any number of times
/// under different machine sizes and runtime policies.
struct Program {
  std::string name;
  std::vector<TaskDef> tasks;   ///< [0] is the root
  std::vector<LoopDef> loops;
  std::vector<RegionDef> regions;  ///< [0] is a dummy (kNoRegion)
  StringTable strings;

  /// Total annotated compute cycles across all tasks and loop iterations —
  /// the serial work lower bound (T1 without memory effects).
  Cycles total_compute() const;

  /// Number of grains the program will produce: tasks (minus root) plus a
  /// schedule-dependent number of chunks (so loops are counted as their
  /// iteration totals only by the simulator; here we count tasks only).
  size_t task_count() const { return tasks.empty() ? 0 : tasks.size() - 1; }
};

}  // namespace gg::sim
