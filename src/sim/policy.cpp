#include "sim/policy.hpp"

namespace gg::sim {

SimPolicy SimPolicy::mir() {
  SimPolicy p;
  p.name = "mir";
  p.scheduler = SimSchedulerKind::WorkStealing;
  p.task_create_cycles = 1100;
  p.task_dispatch_cycles = 350;
  p.steal_cycles = 2600;
  return p;
}

SimPolicy SimPolicy::gcc() {
  SimPolicy p;
  p.name = "gcc";
  p.scheduler = SimSchedulerKind::WorkStealing;
  // libgomp uses a lock-protected team queue; creation and dispatch are
  // noticeably more expensive than lock-free deques.
  p.task_create_cycles = 2600;
  p.task_dispatch_cycles = 900;
  p.steal_cycles = 3200;
  p.lock_serialized = true;  // the libgomp team task lock
  p.task_throttle_per_worker = 64;  // gomp's 64x-threads creation throttle
  return p;
}

SimPolicy SimPolicy::icc() {
  SimPolicy p;
  p.name = "icc";
  p.scheduler = SimSchedulerKind::WorkStealing;
  p.task_create_cycles = 1400;
  p.task_dispatch_cycles = 450;
  p.steal_cycles = 2800;
  // The Intel RTL inlines ("undeferred" execution) once the per-thread queue
  // reaches a small bound — the internal cutoff the paper found in the
  // 15.0.1 sources (§4.3.3). This is what rescues unoptimized kdtree/FFT.
  p.inline_queue_limit = 8;
  return p;
}

SimPolicy SimPolicy::zero_overhead() {
  SimPolicy p;
  p.name = "zero";
  p.scheduler = SimSchedulerKind::WorkStealing;
  // Every runtime operation is free: fragment and chunk times reduce to the
  // annotated compute costs exactly, which is what lets the differential
  // oracle (src/check/oracle.hpp) demand bit-exact agreement between the
  // serial reference elaborator and the simulator.
  p.task_create_cycles = 0;
  p.task_dispatch_cycles = 0;
  p.inline_exec_cycles = 0;
  p.steal_cycles = 0;
  p.steal_fail_cycles = 0;
  p.taskwait_cycles = 0;
  p.bookkeep_cycles = 0;
  p.loop_setup_cycles = 0;
  p.lock_serialized = false;
  p.lock_cycles = 0;
  p.coherence_serial_cycles = 0;
  return p;
}

SimPolicy SimPolicy::mir_of() {
  SimPolicy p = mir();
  p.name = "mir-of";
  // No shared top/bottom counters to ping-pong — claims are per-cell — but
  // a steal walks the Taken prefix before finding work.
  p.coherence_serial_cycles = 35;
  p.steal_cycles = 2900;
  return p;
}

SimPolicy SimPolicy::mir_fc() {
  SimPolicy p = mir();
  p.name = "mir-fc";
  // Combining batches amortize the synchronization away almost entirely,
  // but every operation waits for a combiner pass: dispatch gets slower
  // while the global coherence cost collapses.
  p.coherence_serial_cycles = 15;
  p.task_create_cycles = 1250;
  p.task_dispatch_cycles = 500;
  p.steal_cycles = 2200;
  return p;
}

SimPolicy SimPolicy::mir_ts() {
  SimPolicy p = mir();
  p.name = "mir-ts";
  // Stuttering clocks replace the contended counter (cheap coherence), at
  // a fixed stamp-acquisition cost folded into every push.
  p.coherence_serial_cycles = 40;
  p.task_create_cycles = 1200;
  p.steal_cycles = 2700;
  return p;
}

SimPolicy SimPolicy::mir_central() {
  SimPolicy p = mir();
  p.name = "mir-central";
  p.scheduler = SimSchedulerKind::CentralQueue;
  // Every push/pop crosses a shared lock.
  p.task_create_cycles = 1900;
  p.task_dispatch_cycles = 1200;
  p.lock_serialized = true;
  return p;
}

}  // namespace gg::sim
