// Runtime-policy models for the simulator.
//
// The paper evaluates each program on three OpenMP runtime systems — GCC
// (libgomp), ICC (Intel OpenMP RTL), and MIR — and shows that their internal
// cutoff strategies explain cross-runtime differences (e.g. ICC's queue-size
// internal cutoff rescues the unoptimized 376.kdtree and FFT, §2 and §4.3.3;
// GCC throttles task creation at 64x the thread count [34]). A SimPolicy
// captures those strategies plus per-operation overhead costs.
#pragma once

#include <string>

#include "common/types.hpp"

namespace gg::sim {

enum class SimSchedulerKind : u8 { WorkStealing, CentralQueue };

struct SimPolicy {
  std::string name = "mir";
  SimSchedulerKind scheduler = SimSchedulerKind::WorkStealing;

  // Per-operation overheads, in processor cycles.
  Cycles task_create_cycles = 1100;   ///< allocate + enqueue a deferred task
  Cycles task_dispatch_cycles = 350;  ///< dequeue + start a deferred task
  Cycles inline_exec_cycles = 120;    ///< start an inlined (undeferred) task
  Cycles steal_cycles = 2600;         ///< successful steal (remote CAS+fetch)
  Cycles steal_fail_cycles = 250;     ///< failed victim probe
  Cycles taskwait_cycles = 200;       ///< taskwait entry bookkeeping
  Cycles bookkeep_cycles = 220;       ///< claim one chunk (loop book-keeping)
  Cycles loop_setup_cycles = 900;     ///< publish a loop to the team

  // Queue contention. Every deferred-task queue operation (enqueue,
  // dequeue, successful steal) consumes a shared resource:
  //  * lock_serialized runtimes (libgomp's team task lock, the central
  //    queue) serialize fully at lock_cycles per op — the mechanism that
  //    makes 1.5M-task programs like unoptimized 376.kdtree collapse;
  //  * lock-free runtimes still pay coherence_serial_cycles of global
  //    cacheline ping-pong per op.
  bool lock_serialized = false;
  Cycles lock_cycles = 380;
  Cycles coherence_serial_cycles = 60;

  // Internal cutoffs.
  u64 inline_queue_limit = 0;       ///< ICC-like: inline when the spawning
                                    ///< worker's queue holds >= limit tasks
  u64 task_throttle_per_worker = 0; ///< GCC-like: inline when live tasks >=
                                    ///< throttle x workers (libgomp uses 64)

  /// MIR: work-stealing with lock-free Chase-Lev deques, no internal cutoff.
  static SimPolicy mir();
  /// GCC libgomp: locked queues (higher costs), 64x-threads task throttle.
  static SimPolicy gcc();
  /// ICC Intel RTL: efficient tasking plus a queue-size internal cutoff.
  static SimPolicy icc();
  /// MIR with the central locked queue (Fig. 11d scatter foil).
  static SimPolicy mir_central();
  /// MIR on the obstruction-free segmented deque (rts/of_deque.hpp):
  /// per-cell claims, no shared top/bottom CAS — cheaper coherence, but a
  /// steal scans the consumed prefix.
  static SimPolicy mir_of();
  /// MIR on the flat-combining deque (rts/fc_deque.hpp): combining batches
  /// amortize synchronization, at a dispatch latency premium.
  static SimPolicy mir_fc();
  /// MIR on the timestamped deque (rts/ts_deque.hpp): stuttering per-thread
  /// clocks replace the contended counter; stamping adds a fixed per-push
  /// cost.
  static SimPolicy mir_ts();
  /// All overheads zero: grain times equal annotated compute exactly. The
  /// differential oracle's exact-agreement tier compares the serial
  /// reference elaborator against simulations under this policy.
  static SimPolicy zero_overhead();
};

}  // namespace gg::sim
