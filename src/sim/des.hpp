// Phase B: the discrete-event machine simulator.
//
// Replays a captured Program on a modeled machine (topology + cores) under a
// runtime policy (scheduler kind, operation overheads, internal cutoffs),
// producing a Trace identical in format to threaded executions. All
// scheduling is deterministic: per-core PRNGs drive victim selection, the
// event queue breaks ties by core id, and the memory model is
// expected-value based. Simulating the same program twice yields
// byte-identical traces.
//
// Faithfulness notes (matching rts::ThreadedEngine semantics):
//  * help-first work stealing: spawned children are pushed to the owner's
//    deque bottom; thieves steal from the top; a waiting parent's core
//    executes other tasks and resumes the parent only when its own stack
//    unwinds back to it.
//  * taskwait blocks until all direct live children finish.
//  * parallel for-loops run on the team with per-chunk book-keeping; static
//    chunks are pre-assigned round-robin; dynamic/guided claim from a
//    shared cursor.
//  * the region ends with an implicit barrier that drains all tasks.
#pragma once

#include <optional>

#include "fault/fault.hpp"
#include "rts/supervisor.hpp"
#include "sim/memory_model.hpp"
#include "sim/policy.hpp"
#include "sim/program.hpp"
#include "obs/metrics.hpp"
#include "topology/topology.hpp"
#include "trace/spool.hpp"
#include "trace/trace.hpp"

namespace gg::sim {

struct SimOptions {
  Topology topology = Topology::opteron48();
  int num_cores = 48;  ///< cores (== workers) used, <= topology.num_cores()
  SimPolicy policy = SimPolicy::mir();
  u64 seed = 42;  ///< steal-victim selection seed
  bool memory_model = true;  ///< false = zero-cost memory (pure task costs)
  /// Fault-injection harness hook: when set, the plan's record-level faults
  /// are applied deterministically to the simulated trace. Testing only.
  std::optional<fault::FaultPlan> fault_plan;
  /// Modeled crash-safe spooling: when spool.path is set, the simulated
  /// trace is written through the real spool sink (partitioned per worker,
  /// interleaved epoch frames) and reconstructed via the real recovery
  /// pass — the deterministic twin of the threaded engine's spooled run.
  spool::SpoolOptions spool;
  /// Modeled supervision: after simulation the trace is scanned for
  /// no-progress windows exceeding the stall deadline (supervisor.enabled);
  /// a hit stamps a "supervisor ..." provenance note. A healthy simulation
  /// never trips this.
  rts::SupervisorOptions supervisor;
  /// Modeled self-telemetry: when set (or GG_TELEMETRY=1 falls back to the
  /// process registry), the simulator publishes the same `engine.*` metric
  /// schema the threaded runtime emits — modeled counterparts, so analyses
  /// built on one engine's telemetry read the other's unchanged. With
  /// spooling, deterministic 'T' frames are interleaved into the spool.
  obs::Registry* telemetry = nullptr;
};

/// Simulates `prog` and returns the finalized trace.
Trace simulate(const Program& prog, const SimOptions& opts);

}  // namespace gg::sim
