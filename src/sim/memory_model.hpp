// The simulator's cache/NUMA cost model.
//
// This is the substitution for the paper's real 48-core Opteron memory
// system + PAPI counters (DESIGN.md §1). It is intentionally simple but
// carries exactly the effects the paper's analyses hinge on:
//
//  * private-cache reuse — a per-core LRU over fixed-size region segments;
//    repeated touches of a resident working set are free. This produces
//    beneficial work deviation (< 1) when per-core working sets shrink
//    under multicore execution (§3.2).
//  * stride sensitivity — a touch with stride > line size misses on every
//    element instead of every line. Fixing the bmod triple-loop access
//    pattern by interchange (359.botsspar, §4.3.2) shows up as a ~line/elem
//    reduction in misses.
//  * NUMA distance — each missed line pays a latency scaled by the distance
//    between the executing core's node and the region's home node(s).
//  * memory-controller contention — with first-touch placement every page
//    homes on one node and all cores queue on its controller; round-robin
//    placement (the Sort fix, §4.3.1) spreads the pressure.
//
// All effects are deterministic expected-value computations — no randomness.
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/program.hpp"
#include "topology/topology.hpp"

namespace gg::sim {

/// Result of costing one touch.
struct TouchCost {
  Cycles stall = 0;
  u64 line_misses = 0;
  u64 bytes = 0;
};

class MemoryModel {
 public:
  /// `active_cores` is queried at each touch to estimate contention.
  MemoryModel(const Topology& topo, const std::vector<RegionDef>& regions,
              int num_cores);

  /// Costs a touch executed on `core` while `active_cores` cores are busy.
  /// Updates the core's private-cache state.
  TouchCost on_touch(int core, const TouchOp& touch, int active_cores);

  /// Drops all private-cache state (used between independent phases).
  void reset();

  /// Cache segment granularity (bytes) used for residency tracking.
  static constexpr u64 kSegmentBytes = 16 * 1024;

 private:
  struct SegKey {
    u32 region;
    u64 segment;
    bool operator==(const SegKey& o) const {
      return region == o.region && segment == o.segment;
    }
  };
  struct SegKeyHash {
    size_t operator()(const SegKey& k) const {
      return std::hash<u64>()(k.segment * 1315423911u + k.region);
    }
  };
  /// Per-core LRU of resident segments.
  struct CoreCache {
    std::list<SegKey> lru;  // front = most recent
    std::unordered_map<SegKey, std::list<SegKey>::iterator, SegKeyHash> index;
  };

  /// Expected line latency (cycles) for a miss from `core` into `region`,
  /// taking home-node distance and controller contention into account.
  double miss_latency(int core, const RegionDef& region,
                      int active_cores) const;

  bool lookup_insert(int core, const SegKey& key);

  /// Per-(core, region) stream frontier: the furthest byte yet touched plus
  /// a sub-line byte accumulator, so sequential streams of tiny touches
  /// (e.g. one option per loop iteration) still pay one memory fetch per
  /// fresh line.
  struct Frontier {
    u64 end = 0;
    u64 frac_bytes = 0;
  };

  const Topology& topo_;
  const std::vector<RegionDef>& regions_;
  size_t capacity_segments_;
  std::vector<CoreCache> caches_;
  std::vector<std::unordered_map<u32, Frontier>> frontiers_;  // per core
};

}  // namespace gg::sim
