#include "obs/exposition.hpp"

#include <cinttypes>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace gg::obs {

namespace {

// Little-endian put/get, self-contained (the spool's helpers are
// file-local to spool.cpp on purpose — the two modules share no code).
void put_u8(std::string* out, u8 v) { out->push_back(static_cast<char>(v)); }
void put_u16(std::string* out, u16 v) {
  for (int i = 0; i < 2; ++i) put_u8(out, static_cast<u8>(v >> (8 * i)));
}
void put_u32(std::string* out, u32 v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<u8>(v >> (8 * i)));
}
void put_u64(std::string* out, u64 v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<u8>(v >> (8 * i)));
}
void put_name(std::string* out, const std::string& s) {
  const u16 n = static_cast<u16>(s.size() > 0xffff ? 0xffff : s.size());
  put_u16(out, n);
  out->append(s.data(), n);
}

struct Reader {
  const char* p;
  const char* end;
  bool ok = true;

  bool need(size_t n) {
    if (!ok || static_cast<size_t>(end - p) < n) ok = false;
    return ok;
  }
  u8 get_u8() {
    if (!need(1)) return 0;
    return static_cast<u8>(*p++);
  }
  u16 get_u16() {
    u16 v = 0;
    if (!need(2)) return 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<u16>(static_cast<u8>(*p++)) << (8 * i);
    return v;
  }
  u32 get_u32() {
    u32 v = 0;
    if (!need(4)) return 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(static_cast<u8>(*p++)) << (8 * i);
    return v;
  }
  u64 get_u64() {
    u64 v = 0;
    if (!need(8)) return 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(static_cast<u8>(*p++)) << (8 * i);
    return v;
  }
  std::string get_name() {
    const u16 n = get_u16();
    if (!need(n)) return {};
    std::string s(p, n);
    p += n;
    return s;
  }
};

std::string prom_name(const std::string& name) {
  std::string out = "gg_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_str(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20) os << "\\u0020";
    else os << c;
  }
  os << '"';
}

}  // namespace

void render_prometheus(std::ostream& os, const MetricsSnapshot& snap) {
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << fmt_double(v) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    u64 cum = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;
      cum += h.counts[b];
      os << n << "_bucket{le=\"" << HistogramSnapshot::bucket_upper(b)
         << "\"} " << cum << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << n << "_sum " << h.sum << "\n";
    os << n << "_count " << h.count << "\n";
  }
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  render_prometheus(os, snap);
  return os.str();
}

void render_json(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\"ts_ns\":" << snap.ts_ns << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) os << ",";
    first = false;
    json_str(os, name);
    os << ":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) os << ",";
    first = false;
    json_str(os, name);
    os << ":" << fmt_double(v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ",";
    first = false;
    json_str(os, name);
    os << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"buckets\":[";
    bool bfirst = true;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      os << "[" << HistogramSnapshot::bucket_upper(b) << ","
         << h.counts[b] << "]";
    }
    os << "]}";
  }
  os << "}}\n";
}

std::string render_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  render_json(os, snap);
  return os.str();
}

void render_text(std::ostream& os, const MetricsSnapshot& snap) {
  for (const auto& [name, v] : snap.counters)
    os << "  " << std::left << std::setw(40) << name << " " << v << "\n";
  for (const auto& [name, v] : snap.gauges)
    os << "  " << std::left << std::setw(40) << name << " " << fmt_double(v)
       << "\n";
  for (const auto& [name, h] : snap.histograms) {
    os << "  " << std::left << std::setw(40) << name << " count=" << h.count
       << " sum=" << h.sum;
    if (h.count > 0) {
      os << " min=" << h.min << " max=" << h.max
         << " avg=" << (h.sum / h.count);
    }
    os << "\n";
  }
}

std::string encode_telemetry_payload(const MetricsSnapshot& snap) {
  std::string out;
  put_u8(&out, 1);  // payload version
  put_u64(&out, snap.ts_ns);
  put_u32(&out, static_cast<u32>(snap.counters.size()));
  for (const auto& [name, v] : snap.counters) {
    put_name(&out, name);
    put_u64(&out, v);
  }
  put_u32(&out, static_cast<u32>(snap.gauges.size()));
  for (const auto& [name, v] : snap.gauges) {
    put_name(&out, name);
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(&out, bits);
  }
  put_u32(&out, static_cast<u32>(snap.histograms.size()));
  for (const auto& [name, h] : snap.histograms) {
    put_name(&out, name);
    put_u64(&out, h.count);
    put_u64(&out, h.sum);
    put_u64(&out, h.min);
    put_u64(&out, h.max);
    u32 nonzero = 0;
    for (u64 c : h.counts)
      if (c != 0) ++nonzero;
    put_u32(&out, nonzero);
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;
      put_u8(&out, static_cast<u8>(b));
      put_u64(&out, h.counts[b]);
    }
  }
  return out;
}

bool decode_telemetry_payload(std::string_view payload, MetricsSnapshot* out) {
  Reader r{payload.data(), payload.data() + payload.size()};
  MetricsSnapshot snap;
  if (r.get_u8() != 1) return false;
  snap.ts_ns = r.get_u64();
  const u32 nc = r.get_u32();
  for (u32 i = 0; i < nc && r.ok; ++i) {
    std::string name = r.get_name();
    const u64 v = r.get_u64();
    if (r.ok) snap.counters[std::move(name)] = v;
  }
  const u32 ng = r.get_u32();
  for (u32 i = 0; i < ng && r.ok; ++i) {
    std::string name = r.get_name();
    const u64 bits = r.get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    if (r.ok) snap.gauges[std::move(name)] = v;
  }
  const u32 nh = r.get_u32();
  for (u32 i = 0; i < nh && r.ok; ++i) {
    std::string name = r.get_name();
    HistogramSnapshot h;
    h.count = r.get_u64();
    h.sum = r.get_u64();
    h.min = r.get_u64();
    h.max = r.get_u64();
    const u32 nb = r.get_u32();
    for (u32 b = 0; b < nb && r.ok; ++b) {
      const u8 idx = r.get_u8();
      const u64 cnt = r.get_u64();
      if (r.ok && idx < h.counts.size()) h.counts[idx] = cnt;
    }
    if (r.ok) snap.histograms[std::move(name)] = h;
  }
  if (!r.ok) return false;
  *out = std::move(snap);
  return true;
}

}  // namespace gg::obs
