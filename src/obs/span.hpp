// Span tracer: scoped RAII spans over the tool's *own* execution phases
// (parse, graph build, grain derivation, metric passes, exporters), with
// thread attribution, exportable as a Chrome trace-event file.
//
// Spans are coarse (one per pipeline phase, not per record), so a mutexed
// append at span end is cheap; the constructor takes no lock at all.
#pragma once

#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gg::obs {

/// Steady-clock nanoseconds (the span/telemetry timebase — monotonic,
/// comparable across threads, unrelated to the traced program's clock).
u64 mono_ns();

struct SpanRec {
  std::string name;
  int tid = 0;      ///< obs::thread_index() of the emitting thread
  u64 start_ns = 0; ///< mono_ns at entry
  u64 end_ns = 0;   ///< mono_ns at exit
};

class SpanTracer {
 public:
  void record(std::string name, int tid, u64 start_ns, u64 end_ns) {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(SpanRec{std::move(name), tid, start_ns, end_ns});
  }

  std::vector<SpanRec> spans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRec> spans_;
};

/// Chrome trace-event JSON ("X" complete events, microsecond units) — load
/// in chrome://tracing or Perfetto. Timestamps are rebased to the earliest
/// span so the viewer starts at t=0.
void write_chrome_spans(std::ostream& os, const std::vector<SpanRec>& spans);

}  // namespace gg::obs
