#include "obs/span.hpp"

#include <algorithm>
#include <chrono>

namespace gg::obs {

u64 mono_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void write_chrome_spans(std::ostream& os, const std::vector<SpanRec>& spans) {
  u64 base = ~u64{0};
  for (const SpanRec& s : spans) base = std::min(base, s.start_ns);
  if (spans.empty()) base = 0;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRec& s : spans) {
    if (!first) os << ",";
    first = false;
    const u64 ts = (s.start_ns - base) / 1000;
    const u64 dur = s.end_ns >= s.start_ns ? (s.end_ns - s.start_ns) / 1000 : 0;
    os << "{\"name\":\"" << s.name << "\",\"cat\":\"gg\",\"ph\":\"X\""
       << ",\"ts\":" << ts << ",\"dur\":" << dur << ",\"pid\":0,\"tid\":"
       << s.tid << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace gg::obs
