// Self-telemetry metrics: a lock-free registry of counters, gauges and
// log-bucketed histograms the tool uses to observe *itself*.
//
// The paper's profiler discipline (MIR keeps instrumentation under 2.5%)
// only holds if the tool can measure its own cost, and the planned
// `ggserved` streaming service (ROADMAP item 1) needs health exposition.
// Design constraints, in order:
//   1. The disabled path must be bit-identical to not having the subsystem
//      at all — call sites hold a raw `Registry*` that defaults to null and
//      guard every update with one branch.
//   2. Updates are wait-free: counters and histograms shard across a small
//      fixed set of cache-line-padded relaxed atomics indexed by a
//      per-thread slot, so concurrent workers never contend on a line.
//   3. Reads are deterministic: value() / snapshot() sum shards in fixed
//      index order, so the merged totals are identical regardless of which
//      threads did the incrementing (histogram merge determinism is a test).
//   4. Multi-instance safe: all mutable state lives in the Registry
//      instance; nothing global except the optional process-wide default.
#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace gg::obs {

/// Stable small index for the calling thread (assigned on first use,
/// round-robin). Used to pick a metric shard and to attribute spans.
int thread_index();

inline constexpr size_t kShards = 16;

/// Monotonically increasing counter. add() is a relaxed fetch_add on the
/// calling thread's shard; value() merges shards in fixed order.
class Counter {
 public:
  void add(u64 delta = 1) {
    shards_[static_cast<size_t>(thread_index()) & (kShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  u64 value() const {
    u64 sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<u64> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-writer-wins double value (stored as IEEE-754 bits in one atomic).
class Gauge {
 public:
  void set(double v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    bits_.store(bits, std::memory_order_relaxed);
  }
  double value() const {
    const u64 bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

 private:
  std::atomic<u64> bits_{0};
};

/// Point-in-time histogram contents, merged deterministically.
struct HistogramSnapshot {
  u64 count = 0;
  u64 sum = 0;
  u64 min = 0;  ///< meaningful only when count > 0
  u64 max = 0;
  /// counts[i] holds observations v with bit_width(v) == i, i.e. bucket 0
  /// is exactly {0} and bucket i covers [2^(i-1), 2^i - 1].
  std::array<u64, 64> counts{};

  /// Inclusive upper bound of bucket i (u64 max for the last bucket).
  static u64 bucket_upper(size_t i);
};

/// Log2-bucketed histogram for latencies / sizes. observe() touches only
/// the calling thread's shard (plus two relaxed CAS loops for min/max,
/// which are order-independent and therefore still deterministic to merge).
class Histogram {
 public:
  void observe(u64 v);
  HistogramSnapshot snapshot_values() const;

 private:
  static size_t bucket_of(u64 v);

  struct alignas(64) Shard {
    std::atomic<u64> count{0};
    std::atomic<u64> sum{0};
    std::array<std::atomic<u64>, 64> buckets{};
  };
  std::array<Shard, kShards> shards_;
  std::atomic<u64> min_{~u64{0}};
  std::atomic<u64> max_{0};
};

// --- snapshots --------------------------------------------------------------

struct MetricsSnapshot {
  /// Nanosecond timestamp the snapshot was taken (steady clock), 0 if the
  /// producer did not stamp one.
  u64 ts_ns = 0;
  /// Name-sorted (std::map) so every exposition format is deterministic.
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named-metric registry. Lookup takes a mutex (call sites cache the
/// returned pointer, exactly like string interning in the recorder);
/// updates through the returned handles are lock-free. Handles stay valid
/// for the registry's lifetime (std::deque storage).
class Registry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Deterministic point-in-time capture of every metric, name-sorted.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter*, std::less<>> counters_;
  std::map<std::string, Gauge*, std::less<>> gauges_;
  std::map<std::string, Histogram*, std::less<>> histograms_;
  std::deque<Counter> counter_store_;
  std::deque<Gauge> gauge_store_;
  std::deque<Histogram> histogram_store_;
};

/// The process-wide default registry (used when GG_TELEMETRY=1 enables
/// telemetry without explicit wiring). Distinct Registry instances remain
/// fully independent — this is a convenience instance, not a singleton
/// requirement.
Registry& process_registry();

/// True when the GG_TELEMETRY environment variable requests telemetry
/// ("1"/"true"/"on"; cached on first call).
bool env_enabled();

}  // namespace gg::obs
