#include "obs/metrics.hpp"

#include <cstdlib>

namespace gg::obs {

int thread_index() {
  static std::atomic<int> next{0};
  thread_local int idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

// --- Histogram --------------------------------------------------------------

size_t Histogram::bucket_of(u64 v) {
  // bit_width(v): 0 for 0, otherwise index of the highest set bit + 1.
  size_t w = 0;
  while (v != 0) {
    v >>= 1;
    ++w;
  }
  return w;  // 0..64; bucket 64 is impossible (w==64 needs the top bit, ok)
}

u64 HistogramSnapshot::bucket_upper(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~u64{0};
  return (u64{1} << i) - 1;
}

void Histogram::observe(u64 v) {
  Shard& s = shards_[static_cast<size_t>(thread_index()) & (kShards - 1)];
  const size_t b = bucket_of(v) & 63;  // bit_width 64 folds into bucket 63
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  u64 cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot_values() const {
  HistogramSnapshot out;
  // Fixed shard order: the merged totals are independent of which threads
  // observed which values (integer addition commutes).
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < out.counts.size(); ++b)
      out.counts[b] += s.buckets[b].load(std::memory_order_relaxed);
  }
  if (out.count > 0) {
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
  }
  return out;
}

// --- Registry ---------------------------------------------------------------

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  counter_store_.emplace_back();
  Counter* c = &counter_store_.back();
  counters_.emplace(std::string(name), c);
  return c;
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  gauge_store_.emplace_back();
  Gauge* g = &gauge_store_.back();
  gauges_.emplace(std::string(name), g);
  return g;
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  histogram_store_.emplace_back();
  Histogram* h = &histogram_store_.back();
  histograms_.emplace(std::string(name), h);
  return h;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    out.histograms[name] = h->snapshot_values();
  return out;
}

Registry& process_registry() {
  static Registry reg;
  return reg;
}

bool env_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("GG_TELEMETRY");
    if (v == nullptr) return false;
    const std::string_view s{v};
    return s == "1" || s == "true" || s == "on";
  }();
  return enabled;
}

}  // namespace gg::obs
