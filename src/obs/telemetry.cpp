#include "obs/telemetry.hpp"

namespace gg::obs {

namespace {
std::atomic<Telemetry*> g_current{nullptr};
}  // namespace

void install(Telemetry* t) { g_current.store(t, std::memory_order_release); }

Telemetry* current() { return g_current.load(std::memory_order_acquire); }

}  // namespace gg::obs
