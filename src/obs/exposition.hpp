// Snapshot publishers: Prometheus text exposition, JSON, human text, and
// the compact binary payload carried by GGSPOOL1 'T' (telemetry) frames.
//
// The payload codec lives here — not in trace/spool — so the spool stays a
// dumb byte carrier: 'T' frames are opaque to it, and a reader without
// this module simply skips them. decode never throws; a false return means
// "telemetry unavailable", never a recovery failure.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace gg::obs {

/// Prometheus text exposition format (v0.0.4): counters as `gg_<name>`
/// TYPE counter, gauges as TYPE gauge, histograms as cumulative
/// `_bucket{le=...}` series plus `_sum`/`_count`. Metric names have
/// '.'/'-' mapped to '_'; deterministic (name-sorted input).
void render_prometheus(std::ostream& os, const MetricsSnapshot& snap);
std::string render_prometheus(const MetricsSnapshot& snap);

/// One JSON object: {"ts_ns":..,"counters":{..},"gauges":{..},
/// "histograms":{name:{count,sum,min,max,buckets:[[le,count],..]}}}.
void render_json(std::ostream& os, const MetricsSnapshot& snap);
std::string render_json(const MetricsSnapshot& snap);

/// Aligned human-readable dump (ggstat's one-shot mode).
void render_text(std::ostream& os, const MetricsSnapshot& snap);

/// Binary 'T'-frame payload (version 1, little-endian). Empty snapshot
/// still encodes (a heartbeat with no metrics yet).
std::string encode_telemetry_payload(const MetricsSnapshot& snap);

/// Strict decode; returns false (and leaves *out untouched) on any
/// truncation, bad version or malformed field.
bool decode_telemetry_payload(std::string_view payload, MetricsSnapshot* out);

}  // namespace gg::obs
