// Process-level telemetry context: one Registry + one SpanTracer installed
// behind a single atomic pointer.
//
// The analysis pipeline (analyze(), compute_metrics(), the exporters) is
// library code that any tool may call; threading a Registry* through every
// signature would churn APIs that tests byte-compare. Instead the pipeline
// asks `current()` — one relaxed atomic load per *phase* (never per
// record). When nothing is installed (the compiled-in-but-off default)
// every probe returns null and the code path is bit-identical to a build
// without telemetry.
//
// The engines (rts::Options, SimOptions) take an explicit `Registry*`
// instead — they are multi-instance (future ggserved runs one per client)
// and must not share the process context.
#pragma once

#include <atomic>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace gg::obs {

struct Telemetry {
  Registry registry;
  SpanTracer tracer;
};

/// Installs `t` as the process-wide current context (null to uninstall).
/// The caller keeps ownership; uninstall before destroying it.
void install(Telemetry* t);
Telemetry* current();

inline Registry* current_registry() {
  Telemetry* t = current();
  return t != nullptr ? &t->registry : nullptr;
}
inline SpanTracer* current_tracer() {
  Telemetry* t = current();
  return t != nullptr ? &t->tracer : nullptr;
}

/// RAII phase span against the current context. When no context is
/// installed the constructor is one atomic load and the destructor one
/// branch — the disabled path does not read the clock.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name)
      : tracer_(current_tracer()), name_(name) {
    if (tracer_ != nullptr) start_ns_ = mono_ns();
  }
  ~PhaseSpan() { end(); }

  /// Ends the span early (idempotent); useful when a phase boundary falls
  /// mid-scope and re-indenting the whole pass into a block would obscure it.
  void end() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, thread_index(), start_ns_, mono_ns());
      tracer_ = nullptr;
    }
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  SpanTracer* tracer_;
  const char* name_;
  u64 start_ns_ = 0;
};

}  // namespace gg::obs
