// Deterministic fault injection for the profiling pipeline.
//
// A production profiler sees crashes mid-run, lossy flushes, skewed clocks
// and half-written files far more often than pristine traces. This module
// reproduces those conditions on demand so every recovery path in the
// ingestion layer (trace/load_result.hpp, trace/salvage.hpp) is exercised by
// a regression corpus instead of waiting for a real outage.
//
// Two fault surfaces:
//  * record-level — inject() mutates an in-memory Trace the way a sick
//    recorder would (dropped/duplicated records, per-worker clock skew,
//    recorder buffer overflow, worker death mid-task). Both execution
//    engines accept an optional FaultPlan (rts::Options::fault_plan,
//    sim::SimOptions::fault_plan) and apply it to the trace they produce.
//  * stream-level — corrupt serialized bytes the way a sick filesystem
//    would (truncation mid-record or mid-trailer, bit flips, record
//    reordering). These are free functions over the serialized string.
//
// Everything is seeded: the same FaultPlan applied to the same trace yields
// bit-identical damage, so a failing corpus case is a reproducible test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gg::fault {

/// The fault classes the harness can inject. Used for reporting and for
/// iterating "one test per fault class" corpora.
enum class FaultKind : u8 {
  DropRecord,       ///< record never reaches the merged trace
  DuplicateRecord,  ///< record is delivered twice
  ReorderRecords,   ///< serialized records shuffled out of canonical order
  TruncateStream,   ///< serialized bytes cut mid-record / mid-trailer
  BitFlip,          ///< single bit flipped in the serialized stream
  ClockSkew,        ///< per-worker clock offset (unsynchronized TSCs)
  BufferOverflow,   ///< recorder ring filled; later records lost
  WorkerDeath,      ///< worker crashed mid-task; its tail records lost
  SpoolEpochTruncate,  ///< spool cut at a frame boundary (lost epochs)
  SpoolTornFrame,      ///< spool's final frame half-written (torn write)
  SpoolChecksumFlip,   ///< one spool frame's checksum no longer matches
  SpoolSlowWriter,     ///< live writer appending in tiny unaligned slices
  SpoolMidStreamGarble,  ///< garbled span mid-stream, valid frames after
  SpoolFooterLoss,       ///< writer died after its last epoch, no footer
  WireReset,           ///< connection reset at a wire-frame boundary
  WireMidFrameReset,   ///< connection reset mid-frame (partial send lands)
  WirePartialWrite,    ///< frame split across many tiny writes (benign)
  WireDuplicate,       ///< one wire frame sent twice (retransmit overlap)
  WireBitFlip,         ///< one bit flipped in a wire frame in flight
  WireSlowloris,       ///< sender stalls mid-frame past the read deadline
  WireGarbage,         ///< garbage preamble injected before a frame
};

const char* to_string(FaultKind kind);

/// Seeded description of the record-level faults to inject into one trace.
/// Default-constructed plans inject nothing.
struct FaultPlan {
  u64 seed = 1;  ///< drives every probabilistic choice below

  double drop_rate = 0.0;       ///< P(each record is dropped), in [0,1]
  double duplicate_rate = 0.0;  ///< P(each record is duplicated), in [0,1]

  /// Max per-worker clock offset in ns; each worker gets a deterministic
  /// offset in [0, clock_skew_max_ns] added to all of its timestamps,
  /// modelling unsynchronized per-core clocks. 0 disables.
  TimeNs clock_skew_max_ns = 0;

  /// Per-worker record budget modelling a fixed-capacity recorder ring that
  /// stops accepting records once full: each worker keeps only its
  /// `buffer_capacity` chronologically-earliest fragment/join/chunk/bookkeep
  /// records. 0 disables.
  u64 buffer_capacity = 0;

  /// Workers that die at `death_time_ns`: every record they produced that
  /// ends at or after the instant of death is lost (their buffer tail was
  /// never flushed), and they never emit WorkerStatsRec.
  std::vector<u16> dead_workers;
  TimeNs death_time_ns = 0;

  bool enabled() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || clock_skew_max_ns > 0 ||
           buffer_capacity > 0 || !dead_workers.empty();
  }
};

/// What inject() actually did — asserted on by tests and appended to the
/// trace's provenance notes by the engines.
struct InjectionReport {
  u64 dropped = 0;           ///< records removed by drop_rate
  u64 duplicated = 0;        ///< records delivered twice
  u64 overflow_dropped = 0;  ///< records lost to buffer_capacity
  u64 death_dropped = 0;     ///< records lost to worker death
  u64 skewed_workers = 0;    ///< workers whose clock was offset

  bool any() const {
    return dropped || duplicated || overflow_dropped || death_dropped ||
           skewed_workers;
  }
  std::string summary() const;
};

/// Applies the plan's record-level faults to `trace` in place and
/// re-finalizes it. Deterministic in (plan, trace). The damaged trace is
/// typically *invalid* — that is the point; feed it to the salvage path.
InjectionReport inject(Trace& trace, const FaultPlan& plan);

// --- stream-level corruptions (serialized traces) --------------------------

/// Cuts the serialized stream after `keep` bytes (mid-record, mid-trailer —
/// wherever it lands).
std::string truncate_stream(std::string bytes, size_t keep);

/// Flips one bit of byte `offset` (no-op when out of range).
std::string flip_bit(std::string bytes, size_t offset, int bit);

/// Deterministically shuffles the record lines of a *text* trace, keeping
/// the "ggtrace N" header first — models unordered flushes of per-worker
/// buffers. A correct text loader accepts any record order.
std::string shuffle_lines(const std::string& text, u64 seed);

// --- spool-level corruptions (crash-spool frame streams) --------------------
//
// These aim damage at the epoch-frame structure of a .ggspool stream
// (trace/spool.hpp) rather than at raw byte offsets, modelling the three
// ways a spool actually gets hurt in the field: the file ends early at a
// frame boundary (epochs that never hit the disk), the final frame is torn
// mid-write (the crash landed inside write(2)), and a frame's payload rots
// so its checksum no longer matches. All are deterministic; recovery must
// keep every intact frame before the damage.

/// Cuts the spool so that only the first `keep_frames` frames remain
/// (header preserved). No-op when the stream has fewer frames.
std::string truncate_spool_at_frame(std::string bytes, size_t keep_frames);

/// Tears frame `frame_index`: its header plus `keep_payload` payload bytes
/// are kept, the rest of the stream is cut — models a crash mid-write.
/// No-op when the frame does not exist.
std::string tear_spool_frame(std::string bytes, size_t frame_index,
                             size_t keep_payload);

/// Flips one payload bit of frame `frame_index` (seeded position) without
/// touching its length fields: the frame still parses but fails checksum
/// verification, so recovery must skip exactly that frame.
std::string flip_spool_frame_checksum(std::string bytes, size_t frame_index,
                                      u64 seed);

/// Cuts the stream right after `keep_payload` bytes of the `index`-th
/// telemetry ('T') frame's payload — a crash mid-telemetry-write. Frames
/// of other types do not count toward `index`. No-op when there is no such
/// frame. Recovery must degrade to "telemetry unavailable" (or to the
/// previous 'T' snapshot) without losing any record frame written before.
std::string truncate_spool_telemetry(std::string bytes, size_t index,
                                     size_t keep_payload);

/// Flips one payload bit of the `index`-th telemetry frame (seeded
/// position). The damage must surface as telemetry_corrupt — never as a
/// damaged trace.
std::string flip_spool_telemetry(std::string bytes, size_t index, u64 seed);

// --- live-tail injection (serving layer) ------------------------------------
//
// The batch corruptions above damage a *finished* file; a streaming
// ingester (src/serve/) additionally has to survive damage that unfolds
// over time: a slow writer whose write(2) boundaries land mid-frame, a
// tail that stays torn because the writer died inside a write, garbage in
// the middle of an otherwise healthy stream, and a worker SIGKILLed after
// its last epoch but before the footer. LiveSpoolWriter replays a
// finished spool byte stream through exactly those shapes, one
// deterministic slice per step(), so tailer tests interleave writer
// progress with poll() calls under a fake clock.

struct LiveWriterPlan {
  u64 seed = 1;  ///< drives the write-slice schedule and garbage bytes

  /// Every step() appends one slice of [chunk_min, chunk_max] bytes —
  /// deliberately unaligned with frame boundaries (SpoolSlowWriter).
  size_t chunk_min = 1;
  size_t chunk_max = 4096;

  enum class Ending : u8 {
    Clean,           ///< whole stream lands, footer included
    FooterlessCrash, ///< SIGKILL after the last epoch: footer never written
    TornFrame,       ///< crash inside write(2): final frame's header plus
                     ///< torn_payload_bytes land, the rest never does
    Garbage,         ///< tail rot: garbage_bytes of noise after the last
                     ///< intact frame (which is checksum-valid)
  };
  Ending ending = Ending::Clean;
  size_t torn_payload_bytes = 5;  ///< for TornFrame
  size_t garbage_bytes = 64;      ///< for Garbage

  /// When < SIZE_MAX: frame `garble_frame`'s magic is overwritten with
  /// noise (length preserved), so a tailer sees a garbled span followed by
  /// checksum-valid frames — the resync-past-the-deadline scenario
  /// (SpoolMidStreamGarble). Batch recovery over the same final file stops
  /// at the garble; the tailer is allowed to do better (lose one frame).
  size_t garble_frame = SIZE_MAX;
};

/// Appends a transformed spool stream to `path`, one deterministic slice
/// per step(). The transformation (ending + garble) happens up front, so
/// total_bytes() is the final file size from the start.
class LiveSpoolWriter {
 public:
  LiveSpoolWriter(std::string path, std::string spool_bytes,
                  const LiveWriterPlan& plan = {});

  /// Appends the next slice; returns bytes written, 0 once done.
  size_t step();
  /// step() until done (the batch-equivalent final file).
  void finish();

  bool done() const { return pos_ >= bytes_.size(); }
  size_t total_bytes() const { return bytes_.size(); }
  size_t written_bytes() const { return pos_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string bytes_;  ///< post-transformation stream
  size_t pos_ = 0;
  u64 rng_state_;
  LiveWriterPlan plan_;
};

// --- wire injection (network ingestion) -------------------------------------
//
// GGWIRE1 (src/serve/wire.hpp) streams spool frames into ggserved over a
// socket; the network is the flakiest component in that loop, so the fault
// surface grows a wire tier: resets at frame and byte granularity, partial
// writes, duplicated sends (retransmit overlap), bit flips in flight,
// stalled senders, and garbage preambles. The plan plugs into two places:
// the wire client's send path (client-side faults, deterministic) and the
// WireFaultProxy (wire_fault.hpp), which damages the byte stream between a
// well-behaved client and the server.

struct WireFaultPlan {
  enum class Kind : u8 {
    None,
    ResetAtFrame,     ///< close the connection instead of sending the frame
    ResetMidFrame,    ///< send a prefix of the frame, then close
    PartialWrite,     ///< deliver the frame in 1..7-byte slices (benign)
    DuplicateFrame,   ///< send the frame twice; the receiver must dedupe
    BitFlip,          ///< flip one seeded bit of the frame in flight
    Slowloris,        ///< send a prefix, stall stall_ns, then the rest
    GarbagePreamble,  ///< inject garbage_bytes of noise before the frame
  };

  Kind kind = Kind::None;
  /// Which EPOCH (1-based wire seq) to hit; 0 hits the first frame of any
  /// type that flows after arming.
  u32 target_seq = 1;
  /// How many times to inject before the plan goes clean (reconnects after
  /// a fault replay the same seq — a repeating fault must eventually clear
  /// or the loss bound is untestable).
  u32 repeat = 1;
  u64 seed = 1;              ///< bit positions, garbage bytes, split sizes
  u64 stall_ns = 0;          ///< Slowloris stall (0 = plan default)
  size_t garbage_bytes = 32; ///< GarbagePreamble noise length

  bool enabled() const { return kind != Kind::None; }
};

}  // namespace gg::fault
