#include "fault/wire_fault.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/prng.hpp"

namespace gg::fault {

namespace {

constexpr char kWireMagic[4] = {'G', 'G', 'W', '1'};
constexpr size_t kWireHeaderBytes = 4 + 1 + 4 + 8 + 8;

u32 le32_at(const char* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

u64 le64_at(const char* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<u64>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

bool fill_addr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

bool send_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

WireFaultProxy::WireFaultProxy(std::string listen_path,
                               std::string upstream_path, WireFaultPlan plan)
    : listen_path_(std::move(listen_path)),
      upstream_path_(std::move(upstream_path)),
      plan_(plan) {}

WireFaultProxy::~WireFaultProxy() { stop(); }

bool WireFaultProxy::start(std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(listen_path_, &addr)) {
    if (error != nullptr) *error = "socket path too long: " + listen_path_;
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  ::unlink(listen_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr)
      *error = "cannot bind " + listen_path_ + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void WireFaultProxy::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  while (active_.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(listen_path_.c_str());
}

void WireFaultProxy::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    active_.fetch_add(1, std::memory_order_acq_rel);
    std::thread([this, fd] {
      proxy_connection(fd);
      active_.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  }
}

void WireFaultProxy::proxy_connection(int client_fd) {
  sockaddr_un addr;
  int server_fd = -1;
  if (fill_addr(upstream_path_, &addr)) {
    server_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (server_fd >= 0 &&
        ::connect(server_fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(server_fd);
      server_fd = -1;
    }
  }
  if (server_fd < 0) {
    ::close(client_fd);
    return;
  }
  std::string upstream_buf;
  bool alive = true;
  while (alive && !stop_.load(std::memory_order_acquire)) {
    pollfd pfds[2] = {{client_fd, POLLIN, 0}, {server_fd, POLLIN, 0}};
    const int ready = ::poll(pfds, 2, /*timeout_ms=*/50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    char buf[64 * 1024];
    if (pfds[0].revents != 0) {
      const ssize_t n = ::read(client_fd, buf, sizeof buf);
      if (n <= 0 && !(n < 0 && errno == EINTR)) break;
      if (n > 0) {
        upstream_buf.append(buf, static_cast<size_t>(n));
        if (!forward_upstream(client_fd, server_fd, &upstream_buf)) break;
      }
    }
    if (pfds[1].revents != 0) {
      const ssize_t n = ::read(server_fd, buf, sizeof buf);
      if (n <= 0 && !(n < 0 && errno == EINTR)) break;
      // ACKs pass through untouched: the faults under test live on the
      // ingestion path.
      if (n > 0 && !send_all(client_fd, buf, static_cast<size_t>(n)))
        alive = false;
    }
  }
  ::close(client_fd);
  ::close(server_fd);
}

bool WireFaultProxy::forward_upstream(int client_fd, int server_fd,
                                      std::string* buf) {
  while (!buf->empty()) {
    if (buf->size() < kWireHeaderBytes ||
        std::memcmp(buf->data(), kWireMagic, sizeof kWireMagic) != 0) {
      // Not at a frame boundary we can delimit (short header, or a stream
      // already damaged upstream of us): pass the bytes through raw.
      if (!send_all(server_fd, buf->data(), buf->size())) return false;
      buf->clear();
      return true;
    }
    const u32 seq = le32_at(buf->data() + 5);
    const u64 payload_len = le64_at(buf->data() + 9);
    const u64 frame_len = kWireHeaderBytes + payload_len;
    if (payload_len > (64ull << 20) || buf->size() < frame_len)
      return true;  // wait for the full frame
    std::string frame = buf->substr(0, static_cast<size_t>(frame_len));
    buf->erase(0, static_cast<size_t>(frame_len));

    const char type = frame[4];
    const bool match =
        plan_.enabled() &&
        injections_.load(std::memory_order_acquire) < plan_.repeat &&
        (plan_.target_seq == 0 || (type == 'E' && seq == plan_.target_seq));
    if (!match) {
      if (!send_all(server_fd, frame.data(), frame.size())) return false;
      continue;
    }
    const u64 nth = injections_.fetch_add(1, std::memory_order_acq_rel);
    SplitMix64 rng(plan_.seed + nth);
    switch (plan_.kind) {
      case WireFaultPlan::Kind::None:
        break;
      case WireFaultPlan::Kind::ResetAtFrame:
        // Drop the frame and kill the connection: the client saw the bytes
        // leave but the server never did.
        ::shutdown(client_fd, SHUT_RDWR);
        return false;
      case WireFaultPlan::Kind::ResetMidFrame: {
        const size_t keep = 1 + rng.next() % (frame.size() - 1);
        send_all(server_fd, frame.data(), keep);
        ::shutdown(client_fd, SHUT_RDWR);
        return false;
      }
      case WireFaultPlan::Kind::PartialWrite: {
        size_t off = 0;
        while (off < frame.size()) {
          const size_t slice =
              std::min<size_t>(1 + rng.next() % 7, frame.size() - off);
          if (!send_all(server_fd, frame.data() + off, slice)) return false;
          off += slice;
        }
        break;
      }
      case WireFaultPlan::Kind::DuplicateFrame:
        if (!send_all(server_fd, frame.data(), frame.size())) return false;
        if (!send_all(server_fd, frame.data(), frame.size())) return false;
        break;
      case WireFaultPlan::Kind::BitFlip: {
        const size_t byte = rng.next() % frame.size();
        frame[byte] = static_cast<char>(
            static_cast<u8>(frame[byte]) ^ (1u << (rng.next() % 8)));
        if (!send_all(server_fd, frame.data(), frame.size())) return false;
        break;
      }
      case WireFaultPlan::Kind::Slowloris: {
        const size_t keep = 1 + rng.next() % (frame.size() - 1);
        if (!send_all(server_fd, frame.data(), keep)) return false;
        const u64 stall =
            plan_.stall_ns != 0 ? plan_.stall_ns : 200'000'000ull;
        std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
        if (!send_all(server_fd, frame.data() + keep, frame.size() - keep))
          return false;
        break;
      }
      case WireFaultPlan::Kind::GarbagePreamble: {
        std::string garbage(plan_.garbage_bytes, '\0');
        for (char& c : garbage) c = static_cast<char>(rng.next() & 0xff);
        if (!send_all(server_fd, garbage.data(), garbage.size()))
          return false;
        if (!send_all(server_fd, frame.data(), frame.size())) return false;
        break;
      }
    }
  }
  return true;
}

}  // namespace gg::fault
