#include "fault/fault.hpp"

#include <fstream>
#include <algorithm>
#include <optional>
#include <sstream>
#include <tuple>

#include "common/prng.hpp"
#include "trace/spool.hpp"

namespace gg::fault {

namespace {

// Distinct sub-seeds per fault class so enabling one class never changes the
// random choices of another.
enum : u64 {
  kDropSalt = 0xD809,
  kDupSalt = 0xD0B1,
  kSkewSalt = 0xC10C,
  kShuffleSalt = 0x5F0F,
  kSpoolSalt = 0x5B001,
};

bool coin(Xoshiro256& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rng.uniform01() < p;
}

// Applies drop/duplicate decisions to one record vector. The root task
// record is exempt from dropping: it is written at region start and would
// have been flushed long before any fault window — and dropping it makes
// every damaged trace look the same (everything orphaned), which hides the
// more interesting recovery paths.
template <typename Rec, typename IsRoot>
void drop_dup(std::vector<Rec>& recs, const FaultPlan& plan, Xoshiro256& rng,
              InjectionReport& rep, const IsRoot& is_root) {
  std::vector<Rec> out;
  out.reserve(recs.size());
  for (const Rec& r : recs) {
    if (!is_root(r) && coin(rng, plan.drop_rate)) {
      ++rep.dropped;
      continue;
    }
    out.push_back(r);
    if (coin(rng, plan.duplicate_rate)) {
      out.push_back(r);
      ++rep.duplicated;
    }
  }
  recs.swap(out);
}

template <typename Rec>
void drop_dup(std::vector<Rec>& recs, const FaultPlan& plan, Xoshiro256& rng,
              InjectionReport& rep) {
  drop_dup(recs, plan, rng, rep, [](const Rec&) { return false; });
}

TimeNs worker_skew(const FaultPlan& plan, u16 worker) {
  if (plan.clock_skew_max_ns == 0) return 0;
  return mix64(plan.seed ^ (kSkewSalt << 16) ^ worker) %
         (plan.clock_skew_max_ns + 1);
}

bool is_dead(const FaultPlan& plan, u16 worker) {
  return std::find(plan.dead_workers.begin(), plan.dead_workers.end(),
                   worker) != plan.dead_workers.end();
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::DropRecord: return "drop-record";
    case FaultKind::DuplicateRecord: return "duplicate-record";
    case FaultKind::ReorderRecords: return "reorder-records";
    case FaultKind::TruncateStream: return "truncate-stream";
    case FaultKind::BitFlip: return "bit-flip";
    case FaultKind::ClockSkew: return "clock-skew";
    case FaultKind::BufferOverflow: return "buffer-overflow";
    case FaultKind::WorkerDeath: return "worker-death";
    case FaultKind::SpoolEpochTruncate: return "spool-epoch-truncate";
    case FaultKind::SpoolTornFrame: return "spool-torn-frame";
    case FaultKind::SpoolChecksumFlip: return "spool-checksum-flip";
    case FaultKind::SpoolSlowWriter: return "spool-slow-writer";
    case FaultKind::SpoolMidStreamGarble: return "spool-mid-stream-garble";
    case FaultKind::SpoolFooterLoss: return "spool-footer-loss";
    case FaultKind::WireReset: return "wire-reset";
    case FaultKind::WireMidFrameReset: return "wire-mid-frame-reset";
    case FaultKind::WirePartialWrite: return "wire-partial-write";
    case FaultKind::WireDuplicate: return "wire-duplicate";
    case FaultKind::WireBitFlip: return "wire-bit-flip";
    case FaultKind::WireSlowloris: return "wire-slowloris";
    case FaultKind::WireGarbage: return "wire-garbage";
  }
  return "?";
}

std::string InjectionReport::summary() const {
  std::ostringstream os;
  os << "dropped=" << dropped << " duplicated=" << duplicated
     << " overflow_dropped=" << overflow_dropped
     << " death_dropped=" << death_dropped
     << " skewed_workers=" << skewed_workers;
  return os.str();
}

InjectionReport inject(Trace& trace, const FaultPlan& plan) {
  InjectionReport rep;
  if (!plan.enabled()) return rep;

  // 1. Worker death: the tail of a dead worker's buffer never reaches the
  // merged trace. Applied first — a dead worker's records cannot then be
  // duplicated or skewed.
  if (!plan.dead_workers.empty()) {
    auto dead_after = [&](u16 worker, TimeNs end) {
      return is_dead(plan, worker) && end >= plan.death_time_ns;
    };
    auto purge = [&](auto& recs, auto worker_of, auto end_of) {
      const size_t before = recs.size();
      std::erase_if(recs, [&](const auto& r) {
        return dead_after(worker_of(r), end_of(r));
      });
      rep.death_dropped += before - recs.size();
    };
    purge(trace.fragments, [](const FragmentRec& f) { return f.core; },
          [](const FragmentRec& f) { return f.end; });
    purge(trace.joins, [](const JoinRec& j) { return j.core; },
          [](const JoinRec& j) { return j.end; });
    purge(trace.chunks, [](const ChunkRec& c) { return c.core; },
          [](const ChunkRec& c) { return c.end; });
    purge(trace.bookkeeps, [](const BookkeepRec& b) { return b.core; },
          [](const BookkeepRec& b) { return b.end; });
    purge(trace.tasks, [](const TaskRec& t) { return t.create_core; },
          [](const TaskRec& t) { return t.create_time; });
    // Region-end stats are never written by a dead worker.
    const size_t before = trace.worker_stats.size();
    std::erase_if(trace.worker_stats, [&](const WorkerStatsRec& s) {
      return is_dead(plan, s.worker);
    });
    rep.death_dropped += before - trace.worker_stats.size();
  }

  // 2. Buffer overflow: per worker, keep only the chronologically-earliest
  // `buffer_capacity` high-volume records (a full ring stops recording).
  if (plan.buffer_capacity > 0) {
    // (time, class, index) per worker; classes: 0=frag 1=join 2=chunk 3=book.
    struct Entry {
      TimeNs time;
      int cls;
      size_t idx;
    };
    std::vector<std::vector<Entry>> per_worker;
    auto slot = [&](u16 w) -> std::vector<Entry>& {
      if (per_worker.size() <= w) per_worker.resize(size_t{w} + 1);
      return per_worker[w];
    };
    for (size_t i = 0; i < trace.fragments.size(); ++i)
      slot(trace.fragments[i].core).push_back({trace.fragments[i].start, 0, i});
    for (size_t i = 0; i < trace.joins.size(); ++i)
      slot(trace.joins[i].core).push_back({trace.joins[i].start, 1, i});
    for (size_t i = 0; i < trace.chunks.size(); ++i)
      slot(trace.chunks[i].core).push_back({trace.chunks[i].start, 2, i});
    for (size_t i = 0; i < trace.bookkeeps.size(); ++i)
      slot(trace.bookkeeps[i].core).push_back({trace.bookkeeps[i].start, 3, i});
    std::vector<std::vector<bool>> doomed(4);
    doomed[0].resize(trace.fragments.size());
    doomed[1].resize(trace.joins.size());
    doomed[2].resize(trace.chunks.size());
    doomed[3].resize(trace.bookkeeps.size());
    for (auto& entries : per_worker) {
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  return std::tie(a.time, a.cls, a.idx) <
                         std::tie(b.time, b.cls, b.idx);
                });
      for (size_t i = plan.buffer_capacity; i < entries.size(); ++i) {
        doomed[static_cast<size_t>(entries[i].cls)][entries[i].idx] = true;
        ++rep.overflow_dropped;
      }
    }
    auto sweep = [](auto& recs, const std::vector<bool>& kill) {
      size_t i = 0;
      std::erase_if(recs, [&](const auto&) { return kill[i++]; });
    };
    sweep(trace.fragments, doomed[0]);
    sweep(trace.joins, doomed[1]);
    sweep(trace.chunks, doomed[2]);
    sweep(trace.bookkeeps, doomed[3]);
  }

  // 3. Per-worker clock skew: every timestamp a worker produced shifts by
  // its deterministic offset, breaking cross-worker interval ordering and
  // the recorded region bounds.
  if (plan.clock_skew_max_ns > 0) {
    std::vector<u16> seen;
    auto skew_of = [&](u16 w) {
      if (std::find(seen.begin(), seen.end(), w) == seen.end()) seen.push_back(w);
      return worker_skew(plan, w);
    };
    for (FragmentRec& f : trace.fragments) {
      const TimeNs d = skew_of(f.core);
      f.start += d;
      f.end += d;
    }
    for (JoinRec& j : trace.joins) {
      const TimeNs d = skew_of(j.core);
      j.start += d;
      j.end += d;
    }
    for (ChunkRec& c : trace.chunks) {
      const TimeNs d = skew_of(c.core);
      c.start += d;
      c.end += d;
    }
    for (BookkeepRec& b : trace.bookkeeps) {
      const TimeNs d = skew_of(b.core);
      b.start += d;
      b.end += d;
    }
    for (TaskRec& t : trace.tasks) t.create_time += skew_of(t.create_core);
    for (LoopRec& l : trace.loops) {
      const TimeNs d = skew_of(l.starting_thread);
      l.start += d;
      l.end += d;
    }
    rep.skewed_workers = seen.size();
  }

  // 4. Random drops and duplicates across every record class.
  if (plan.drop_rate > 0.0 || plan.duplicate_rate > 0.0) {
    Xoshiro256 rng(mix64(plan.seed ^ kDropSalt) ^ kDupSalt);
    drop_dup(trace.tasks, plan, rng, rep,
             [](const TaskRec& t) { return t.uid == kRootTask; });
    drop_dup(trace.fragments, plan, rng, rep);
    drop_dup(trace.joins, plan, rng, rep);
    drop_dup(trace.loops, plan, rng, rep);
    drop_dup(trace.chunks, plan, rng, rep);
    drop_dup(trace.bookkeeps, plan, rng, rep);
    drop_dup(trace.depends, plan, rng, rep);
    drop_dup(trace.worker_stats, plan, rng, rep);
  }

  trace.finalize();
  return rep;
}

std::string truncate_stream(std::string bytes, size_t keep) {
  if (keep < bytes.size()) bytes.resize(keep);
  return bytes;
}

std::string flip_bit(std::string bytes, size_t offset, int bit) {
  if (offset < bytes.size() && bit >= 0 && bit < 8)
    bytes[offset] = static_cast<char>(
        static_cast<unsigned char>(bytes[offset]) ^ (1u << bit));
  return bytes;
}

std::string shuffle_lines(const std::string& text, u64 seed) {
  std::istringstream is(text);
  std::string header, line;
  std::vector<std::string> lines;
  if (!std::getline(is, header)) return text;
  while (std::getline(is, line)) lines.push_back(line);
  // Fisher–Yates with our deterministic generator.
  Xoshiro256 rng(mix64(seed ^ kShuffleSalt));
  for (size_t i = lines.size(); i > 1; --i)
    std::swap(lines[i - 1], lines[rng.bounded(i)]);
  std::string out = header + "\n";
  for (const std::string& l : lines) out += l + "\n";
  return out;
}

std::string truncate_spool_at_frame(std::string bytes, size_t keep_frames) {
  const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
  if (keep_frames >= frames.size()) return bytes;
  const size_t cut = keep_frames == 0
                         ? frames.front().offset
                         : frames[keep_frames - 1].offset +
                               frames[keep_frames - 1].size;
  bytes.resize(cut);
  return bytes;
}

std::string tear_spool_frame(std::string bytes, size_t frame_index,
                             size_t keep_payload) {
  const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
  if (frame_index >= frames.size()) return bytes;
  const spool::FrameSpan& f = frames[frame_index];
  const size_t payload = f.size - spool::kFrameHeaderBytes;
  const size_t cut =
      f.offset + spool::kFrameHeaderBytes + std::min(keep_payload, payload);
  if (cut < bytes.size()) bytes.resize(cut);
  return bytes;
}

std::string flip_spool_frame_checksum(std::string bytes, size_t frame_index,
                                      u64 seed) {
  const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
  if (frame_index >= frames.size()) return bytes;
  const spool::FrameSpan& f = frames[frame_index];
  const size_t payload = f.size - spool::kFrameHeaderBytes;
  if (payload == 0) return bytes;
  Xoshiro256 rng(mix64(seed ^ kSpoolSalt));
  const size_t offset =
      f.offset + spool::kFrameHeaderBytes + rng.bounded(payload);
  const int bit = static_cast<int>(rng.bounded(8));
  return flip_bit(std::move(bytes), offset, bit);
}

namespace {

/// The `index`-th frame of type 'T', or nullopt.
std::optional<spool::FrameSpan> nth_telemetry_frame(std::string_view bytes,
                                                    size_t index) {
  size_t seen = 0;
  for (const spool::FrameSpan& f : spool::scan_frames(bytes)) {
    if (f.type != spool::FrameType::Telemetry) continue;
    if (seen == index) return f;
    ++seen;
  }
  return std::nullopt;
}

}  // namespace

std::string truncate_spool_telemetry(std::string bytes, size_t index,
                                     size_t keep_payload) {
  const auto f = nth_telemetry_frame(bytes, index);
  if (!f.has_value()) return bytes;
  const size_t payload = f->size - spool::kFrameHeaderBytes;
  const size_t cut =
      f->offset + spool::kFrameHeaderBytes + std::min(keep_payload, payload);
  if (cut < bytes.size()) bytes.resize(cut);
  return bytes;
}

std::string flip_spool_telemetry(std::string bytes, size_t index, u64 seed) {
  const auto f = nth_telemetry_frame(bytes, index);
  if (!f.has_value()) return bytes;
  const size_t payload = f->size - spool::kFrameHeaderBytes;
  if (payload == 0) return bytes;
  Xoshiro256 rng(mix64(seed ^ kSpoolSalt));
  const size_t offset =
      f->offset + spool::kFrameHeaderBytes + rng.bounded(payload);
  const int bit = static_cast<int>(rng.bounded(8));
  return flip_bit(std::move(bytes), offset, bit);
}

// --- live-tail injection ----------------------------------------------------

namespace {

constexpr u64 kLiveSalt = 0x11F3;

/// A noise byte that can never start a "GGSF" magic, so injected garbage
/// stays garbage no matter how the resync scanner lands on it.
u8 noise_byte(Xoshiro256& rng) {
  const u8 b = static_cast<u8>(rng.bounded(256));
  return b == 'G' ? 0xA5 : b;
}

std::string transform_for_plan(std::string bytes,
                               const LiveWriterPlan& plan) {
  Xoshiro256 rng(mix64(plan.seed ^ kLiveSalt));
  if (plan.garble_frame != SIZE_MAX) {
    const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
    if (plan.garble_frame < frames.size()) {
      const size_t off = frames[plan.garble_frame].offset;
      for (size_t i = 0; i < 4 && off + i < bytes.size(); ++i) {
        bytes[off + i] = static_cast<char>(noise_byte(rng));
      }
    }
  }
  switch (plan.ending) {
    case LiveWriterPlan::Ending::Clean:
      break;
    case LiveWriterPlan::Ending::FooterlessCrash: {
      const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
      if (!frames.empty() &&
          (frames.back().type == spool::FrameType::CleanFooter ||
           frames.back().type == spool::FrameType::CrashFooter)) {
        bytes.resize(frames.back().offset);
      }
      break;
    }
    case LiveWriterPlan::Ending::TornFrame: {
      const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
      if (!frames.empty()) {
        bytes = tear_spool_frame(std::move(bytes), frames.size() - 1,
                                 plan.torn_payload_bytes);
      }
      break;
    }
    case LiveWriterPlan::Ending::Garbage: {
      for (size_t i = 0; i < plan.garbage_bytes; ++i) {
        bytes.push_back(static_cast<char>(noise_byte(rng)));
      }
      break;
    }
  }
  return bytes;
}

}  // namespace

LiveSpoolWriter::LiveSpoolWriter(std::string path, std::string spool_bytes,
                                 const LiveWriterPlan& plan)
    : path_(std::move(path)),
      bytes_(transform_for_plan(std::move(spool_bytes), plan)),
      rng_state_(mix64(plan.seed ^ kLiveSalt) ^ 0x51ED),
      plan_(plan) {}

size_t LiveSpoolWriter::step() {
  if (done()) return 0;
  const size_t lo = std::max<size_t>(plan_.chunk_min, 1);
  const size_t hi = std::max(plan_.chunk_max, lo);
  rng_state_ += 0x9e3779b97f4a7c15ull;
  const size_t span = lo + static_cast<size_t>(mix64(rng_state_) %
                                               (hi - lo + 1));
  const size_t n = std::min(span, bytes_.size() - pos_);
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  os.write(bytes_.data() + pos_, static_cast<std::streamsize>(n));
  os.flush();
  if (!os) return 0;
  pos_ += n;
  return n;
}

void LiveSpoolWriter::finish() {
  while (!done()) {
    if (step() == 0) break;
  }
}

}  // namespace gg::fault
