// Fault-injecting AF_UNIX proxy for GGWIRE1 streams.
//
// Sits between a well-behaved wire client and ggserved's ingest socket and
// damages the client→server byte stream per a WireFaultPlan: resets at
// frame or byte granularity, re-slicing into tiny writes, duplicated
// frames, bit flips, stalls, garbage preambles. Server→client bytes (ACKs)
// pass through untouched — the faults under test are on the ingestion
// path, and a damaged ACK stream is just another client-side reconnect.
//
// The proxy delimits frames with its own minimal GGW1 header scan (magic +
// length field only — deliberately duplicated from serve/wire.hpp so the
// fault layer stays below the serve layer in the dependency graph). It
// never verifies checksums: it damages streams, it does not validate them.
//
// One fault is injected per matching frame occurrence until plan.repeat
// injections have happened; after that the proxy is a clean pipe, so a
// resuming client always eventually gets through — the property the chaos
// tests need to terminate.
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "fault/fault.hpp"

namespace gg::fault {

class WireFaultProxy {
 public:
  /// Listens on `listen_path`, forwards each connection to `upstream_path`.
  WireFaultProxy(std::string listen_path, std::string upstream_path,
                 WireFaultPlan plan);
  ~WireFaultProxy();

  WireFaultProxy(const WireFaultProxy&) = delete;
  WireFaultProxy& operator=(const WireFaultProxy&) = delete;

  bool start(std::string* error);
  void stop();

  const std::string& listen_path() const { return listen_path_; }
  u64 injections() const {
    return injections_.load(std::memory_order_acquire);
  }

 private:
  void accept_loop();
  void proxy_connection(int client_fd);
  /// Forwards client→server bytes, injecting per the plan. Returns false
  /// when the client connection must be torn down (reset faults).
  bool forward_upstream(int client_fd, int server_fd, std::string* buf);

  std::string listen_path_;
  std::string upstream_path_;
  WireFaultPlan plan_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<u64> injections_{0};
  std::atomic<size_t> active_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace gg::fault
