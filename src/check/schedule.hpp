// Deterministic schedule exploration for the threaded runtime.
//
// The ScheduleController implements rts::PreemptObserver with CHESS-style
// cooperative serialization: exactly one registered thread runs at a time
// (it "holds the token"), and at every preemption point the running thread
// consults a seeded strategy to decide which thread runs next. Because only
// the token holder executes between points, the interleaving of all
// scheduling-relevant steps is a pure function of {strategy, seed,
// preemption bound} and the program — any failing schedule replays exactly
// from that triple.
//
// Strategies:
//  * RoundRobin  — switch to the next runnable thread at every point;
//    guarantees progress and quickly covers "fully alternating" schedules.
//  * RandomWalk  — uniform seeded pick (including staying put) at every
//    point; covers irregular interleavings.
//  * SleepSet    — RandomWalk that additionally parks threads that reported
//    an empty-handed idle iteration until someone publishes work (a push
//    point); inspired by sleep-set partial-order reduction, it spends the
//    schedule budget on threads that can make progress.
//
// The preemption bound (`max_preemptions`) counts switches away from a
// thread at a NON-idle point, i.e. genuine preemptions inside an operation.
// Idle points are voluntary yields and always allow a switch — otherwise a
// bounded schedule could spin a starving thread forever.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"
#include "rts/preempt.hpp"

namespace gg::check {

enum class Strategy : u8 { RoundRobin, RandomWalk, SleepSet };

const char* to_string(Strategy s);

struct ScheduleOptions {
  Strategy strategy = Strategy::RandomWalk;
  u64 seed = 1;
  /// Threads expected to register, with ids 0..num_threads-1. Must equal
  /// the engine's worker count (or the harness's thread count): choosing an
  /// id that never registers would stall the schedule until the watchdog.
  int num_threads = 2;
  /// Bound on non-idle preemptions; < 0 means unbounded.
  int max_preemptions = -1;
  /// Watchdog: a thread waiting longer than this for the token aborts the
  /// process with a state dump — turns harness deadlocks into diagnosable
  /// failures instead of silent CI hangs.
  int timeout_seconds = 120;
};

class ScheduleController final : public rts::PreemptObserver {
 public:
  explicit ScheduleController(const ScheduleOptions& opts);
  ~ScheduleController() override;

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  /// Installs this controller as the process-wide preemption observer.
  /// At most one controller may be installed at a time.
  void install();
  /// Removes the observer; idempotent, also called by the destructor.
  void uninstall();

  // PreemptObserver interface (called by the runtime under test).
  void on_thread_start(int worker_id) override;
  void on_thread_stop() override;
  void preempt(rts::PreemptPoint point) override;

  const ScheduleOptions& options() const { return opts_; }

  /// Scheduling decisions made so far.
  u64 decision_count() const;
  /// Non-idle preemptions charged against the bound.
  u64 preemption_count() const;
  /// The thread chosen at each decision. Replaying the same {strategy,
  /// seed, bound} on the same program yields an identical trail — the
  /// determinism test and the replay workflow both key off this.
  std::vector<i32> trail() const;
  /// "strategy=random-walk seed=0x2a bound=2" — embed in failure messages
  /// so any run is replayable.
  std::string describe() const;

 private:
  enum class SlotState : u8 { Absent, Started, Finished };

  // All *_locked methods require mutex_ to be held.
  int decide_next_locked(int self, rts::PreemptPoint point, bool stopping);
  void wait_for_token_locked(std::unique_lock<std::mutex>& lk, int self);
  void dump_state_locked(const char* why) const;

  ScheduleOptions opts_;
  Xoshiro256 rng_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<SlotState> state_;
  std::vector<u8> sleeping_;  // SleepSet: parked until work is published
  int current_ = -1;          // token holder; -1 = nobody yet / all finished
  u64 decisions_ = 0;
  u64 preemptions_ = 0;
  std::vector<i32> trail_;
  bool installed_ = false;
};

}  // namespace gg::check
