// Canonical structural signature of a trace for cross-engine comparison.
//
// Two traces of the same deterministic program — produced by different
// engines, schedules, or core counts — must have equal signatures. The
// signature therefore contains exactly the schedule-INdependent structure
// (paper §3.1: the grain graph "is independent from machine size and
// scheduling choices"):
//  * tasks keyed by creation path ("2.0.1"), with source site, parent path,
//    and the per-task sequence of fragment end reasons (Fork -> child path,
//    Join -> join seq, Loop -> root loop seq, TaskEnd);
//  * the dependence edge set, as (pred path, succ path) pairs;
//  * loops keyed by root loop sequence, with schedule, chunk parameter,
//    iteration range, and team size;
//  * chunk structure: static schedules fix both ranges and thread
//    assignment (per-thread ordered range lists); dynamic/guided schedules
//    fix only the range set (shared-cursor claiming), so those loops
//    contribute a sorted range multiset.
// Deliberately excluded: task uids (engines number tasks in different
// orders), timestamps, cores/threads of task fragments, inlined flags,
// worker stats, and dynamic-loop book-keeping chains — all legitimately
// schedule- or engine-dependent.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace gg::check {

/// Canonical multi-line text signature. The trace must be finalized.
/// Aborts (GG_CHECK) on traces too malformed to walk — run validate_trace
/// first for graceful diagnostics.
std::string canonical_signature(const Trace& trace);

/// First line that differs between two signatures, as "theirs | ours";
/// empty when equal. For failure messages.
std::string first_signature_diff(const std::string& a, const std::string& b);

}  // namespace gg::check
