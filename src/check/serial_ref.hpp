// Serial reference elaborator: a third, independent implementation of the
// front::Engine contract for the differential oracle.
//
// Executes the program inline and depth-first (every spawned child runs to
// completion at its spawn point) on a virtual clock, and writes trace
// records directly — no TraceRecorder, no discrete-event machinery, no
// threads. Because it shares no execution code with rts::ThreadedEngine or
// sim::SimEngine, structural agreement between all three is strong evidence
// that the grain-graph invariants hold, not that one bug is copied thrice.
//
// Cost accounting mirrors the simulator's conversion granularity exactly so
// the oracle's exact-agreement tier (vs. the zero-overhead policy) can
// demand equality, not just tolerance:
//  * task bodies convert cycles->ns per merged compute run (adjacent
//    compute() calls merge, any other op flushes — as sim::Capture does);
//  * loop iterations convert once per iteration over the iteration's total
//    compute (as the DES's run_chunk does).
// Both matter: cycles_to_ns truncates, so ns(a)+ns(b) != ns(a+b) in general.
#pragma once

#include <string>

#include "front/front.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace gg::check {

struct SerialRefOptions {
  Topology topology = Topology::opteron48();
  /// Modeled team size. Loop chunks are partitioned/claimed exactly as a
  /// team of this size would, then elaborated sequentially. 1 reproduces a
  /// 1-core zero-overhead simulation bit-for-bit (exact tier); larger teams
  /// reproduce the schedule-independent structure of N-worker runs
  /// (structural tier).
  int team_size = 1;
};

class SerialRefEngine final : public front::Engine {
 public:
  explicit SerialRefEngine(SerialRefOptions opts);

  front::RegionId alloc_region(const std::string& name, u64 bytes,
                               front::PagePlacement placement,
                               int touch_node = -1) override;

  Trace run(const std::string& program_name,
            const front::TaskFn& root) override;

 private:
  SerialRefOptions opts_;
  front::RegionId next_region_ = 1;
};

}  // namespace gg::check
