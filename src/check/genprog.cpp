#include "check/genprog.hpp"

#include <thread>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace gg::check {

namespace {

/// Deterministic per-iteration cost (pure in the iteration index).
Cycles iter_cost(const GenAction& a, u64 i) {
  return a.iter_base + (i % 7) * a.iter_step;
}

class Generator {
 public:
  Generator(u64 seed, const GenOptions& opts)
      : opts_(opts), rng_(mix64(seed ^ 0x67656e70726f67ull)) {
    spec_.seed = seed;
  }

  ProgramSpec generate() {
    spec_.tasks.emplace_back();  // root placeholder, filled below
    fill_task(0, /*depth=*/0, /*is_root=*/true);
    // A program with neither a spawn nor a loop has no grains and exercises
    // nothing; give such roots one child (left unjoined, so the implicit
    // barrier is covered too).
    bool has_grain = spec_.tasks.size() > 1;
    for (const GenAction& a : spec_.tasks[0].actions) {
      if (a.kind == GenAction::Kind::ParallelFor ||
          a.kind == GenAction::Kind::Taskloop) {
        has_grain = true;
      }
    }
    if (!has_grain) {
      GenAction a;
      a.kind = GenAction::Kind::Spawn;
      a.src_line = next_line_++;
      spec_.tasks[0].actions.push_back(std::move(a));
      const int child = new_task(/*depth=*/1);
      GenAction& back = spec_.tasks[0].actions.back();
      back.child = child;
      back.src_func = std::to_string(child);
      back.src_func.insert(back.src_func.begin(), 't');
    }
    return std::move(spec_);
  }

 private:
  u64 pick(u64 n) { return rng_.bounded(n); }  // uniform in [0, n)

  int new_task(int depth) {
    const int idx = static_cast<int>(spec_.tasks.size());
    spec_.tasks.emplace_back();
    ++spawned_;
    fill_task(idx, depth, /*is_root=*/false);
    return idx;
  }

  void fill_task(int index, int depth, bool is_root) {
    const int n_actions = 1 + static_cast<int>(
        pick(static_cast<u64>(opts_.max_actions)));
    int loops_left = is_root ? opts_.max_loops : 0;
    bool unjoined_spawn = false;
    std::vector<GenAction> actions;
    for (int i = 0; i < n_actions; ++i) {
      GenAction a;
      const u64 roll = pick(100);
      const bool can_spawn =
          depth < opts_.max_depth && spawned_ < opts_.max_tasks;
      if (roll < 35 || (!can_spawn && loops_left == 0)) {
        a.kind = GenAction::Kind::Compute;
        a.cycles = 20 + pick(4000);
      } else if (roll < 65 && can_spawn) {
        a.kind = GenAction::Kind::Spawn;
        if (opts_.with_deps && pick(100) < 35) {
          // Handles drawn from a tiny pool so chains actually form.
          const u64 n_in = pick(3);
          for (u64 k = 0; k < n_in; ++k) a.dep_in.push_back(1 + pick(4));
          if (pick(2) == 0) a.dep_out.push_back(1 + pick(4));
        }
        a.src_line = next_line_++;
        // The child is generated (and numbered) after the action fields:
        // spec task indices follow depth-first spawn order, mirroring the
        // capture order all engines elaborate in.
        actions.push_back(a);
        actions.back().child = new_task(depth + 1);
        actions.back().src_func = std::to_string(actions.back().child);
        actions.back().src_func.insert(actions.back().src_func.begin(), 't');
        unjoined_spawn = true;
        continue;
      } else if (roll < 75) {
        a.kind = GenAction::Kind::Taskwait;
        unjoined_spawn = false;
      } else if (loops_left > 0) {
        a.kind = GenAction::Kind::ParallelFor;
        --loops_left;
        const u64 s = pick(3);
        a.sched = s == 0 ? ScheduleKind::Static
                  : s == 1 ? ScheduleKind::Dynamic
                           : ScheduleKind::Guided;
        a.chunk = pick(5);  // 0 = schedule default
        a.lo = pick(4);
        // Occasionally an empty loop (hi == lo) to cover the zero-width
        // LoopRec path in every engine.
        a.hi = a.lo + (pick(10) == 0 ? 0 : 1 + pick(opts_.max_iters));
        a.iter_base = 30 + pick(600);
        a.iter_step = pick(90);
        a.src_line = next_line_++;
        a.src_func = "loop";
        a.src_func += std::to_string(a.src_line);
      } else if (opts_.with_taskloop && can_spawn && pick(4) == 0) {
        a.kind = GenAction::Kind::Taskloop;
        a.lo = 0;
        a.hi = 2 + pick(10);
        a.grainsize = 1 + pick(4);
        a.iter_base = 40 + pick(400);
        a.iter_step = pick(50);
        a.src_line = next_line_++;
        a.src_func = "tl";
        a.src_func += std::to_string(a.src_line);
        // taskloop spawns ~hi/grainsize leaves plus interior splitters;
        // charge a conservative estimate against the task budget.
        spawned_ += static_cast<int>((a.hi - a.lo) / a.grainsize + 1);
        unjoined_spawn = false;  // implicit taskgroup joins everything
      } else {
        a.kind = GenAction::Kind::Compute;
        a.cycles = 20 + pick(4000);
      }
      actions.push_back(std::move(a));
    }
    // Join discipline (see header): non-root tasks never leave children
    // unjoined. The root keeps them ~half the time so the implicit barrier
    // is exercised, deterministically.
    if (unjoined_spawn && (!is_root || pick(2) == 0)) {
      GenAction w;
      w.kind = GenAction::Kind::Taskwait;
      actions.push_back(std::move(w));
    }
    spec_.tasks[static_cast<size_t>(index)].actions = std::move(actions);
  }

  GenOptions opts_;
  Xoshiro256 rng_;
  ProgramSpec spec_;
  int spawned_ = 0;
  int next_line_ = 10;  ///< stable fake line numbers, unique per site
};

void run_task(const ProgramSpec& spec, int index, front::Ctx& ctx) {
  for (const GenAction& a : spec.tasks[static_cast<size_t>(index)].actions) {
    switch (a.kind) {
      case GenAction::Kind::Compute:
        ctx.compute(a.cycles);
        break;
      case GenAction::Kind::Spawn: {
        const front::SrcLoc loc{"gen.c", a.src_line, a.src_func.c_str()};
        const int child = a.child;
        auto body = [&spec, child](front::Ctx& c) {
          run_task(spec, child, c);
        };
        if (a.dep_in.empty() && a.dep_out.empty()) {
          ctx.spawn(loc, body);
        } else {
          front::Depends deps;
          deps.in = a.dep_in;
          deps.out = a.dep_out;
          ctx.spawn(loc, deps, body);
        }
        break;
      }
      case GenAction::Kind::Taskwait:
        ctx.taskwait();
        break;
      case GenAction::Kind::ParallelFor: {
        const front::SrcLoc loc{"gen.c", a.src_line, a.src_func.c_str()};
        front::ForOpts fo;
        fo.sched = a.sched;
        fo.chunk = a.chunk;
        ctx.parallel_for(loc, a.lo, a.hi, fo,
                         [&a](u64 i, front::Ctx& c) {
                           c.compute(iter_cost(a, i));
                         });
        break;
      }
      case GenAction::Kind::Taskloop: {
        const front::SrcLoc loc{"gen.c", a.src_line, a.src_func.c_str()};
        ctx.taskloop(loc, a.lo, a.hi, a.grainsize,
                     [&a](u64 i, front::Ctx& c) {
                       c.compute(iter_cost(a, i));
                     });
        break;
      }
      case GenAction::Kind::WaitToken: {
        TokenBoard* board = spec.tokens.get();
        if (board == nullptr || a.token < 0) break;
        auto& slot = board->tokens[static_cast<size_t>(a.token)];
        // Spin (not block): models user code wedged in a busy-wait, which
        // is the hang the supervisor's heartbeat sampling must attribute.
        while (slot.load(std::memory_order_acquire) == 0 &&
               !board->released.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        break;
      }
      case GenAction::Kind::SignalToken: {
        TokenBoard* board = spec.tokens.get();
        if (board == nullptr || a.token < 0) break;
        board->tokens[static_cast<size_t>(a.token)].store(
            1, std::memory_order_release);
        break;
      }
    }
  }
}

}  // namespace

ProgramSpec generate_program(u64 seed, const GenOptions& opts) {
  Generator gen(seed, opts);
  return gen.generate();
}

ProgramSpec generate_hang_program(u64 seed) {
  // Benign prefix: a handful of ordinary tasks so the stalled run still has
  // completed grains (and a realistic spool) before the deadlock bites.
  GenOptions opts;
  opts.max_tasks = 6;
  opts.max_depth = 2;
  opts.max_actions = 4;
  opts.max_loops = 0;
  opts.with_deps = false;
  opts.with_taskloop = false;
  ProgramSpec spec = generate_program(seed ^ 0x68616e67ull, opts);
  spec.seed = seed;
  spec.tokens = std::make_shared<TokenBoard>();

  // Two deadlocking tasks closing a token cycle: each waits for the token
  // the other signals only AFTER its own wait — neither ever advances.
  Xoshiro256 rng(mix64(seed ^ 0x746f6b656eull));
  const int t0 = static_cast<int>(rng.bounded(4));
  const int t1 = 4 + static_cast<int>(rng.bounded(4));
  auto deadlock_task = [&](int wait_tok, int signal_tok) {
    GenTask task;
    GenAction compute;
    compute.kind = GenAction::Kind::Compute;
    compute.cycles = 50 + rng.bounded(500);
    task.actions.push_back(compute);
    GenAction wait;
    wait.kind = GenAction::Kind::WaitToken;
    wait.token = wait_tok;
    task.actions.push_back(wait);
    GenAction signal;
    signal.kind = GenAction::Kind::SignalToken;
    signal.token = signal_tok;
    task.actions.push_back(signal);
    spec.tasks.push_back(std::move(task));
    return static_cast<int>(spec.tasks.size() - 1);
  };
  const int task_a = deadlock_task(t0, t1);
  const int task_b = deadlock_task(t1, t0);
  for (int child : {task_a, task_b}) {
    GenAction spawn;
    spawn.kind = GenAction::Kind::Spawn;
    spawn.child = child;
    spawn.src_line = 900 + child;
    spawn.src_func = "hang";
    spawn.src_func += std::to_string(child);
    spec.tasks[0].actions.push_back(std::move(spawn));
  }
  GenAction wait;
  wait.kind = GenAction::Kind::Taskwait;
  spec.tasks[0].actions.push_back(std::move(wait));
  return spec;
}

void run_spec_body(const ProgramSpec& spec, front::Ctx& ctx) {
  GG_CHECK(!spec.tasks.empty());
  if (spec.tokens) spec.tokens->reset();
  run_task(spec, 0, ctx);
}

Trace run_spec(const ProgramSpec& spec, front::Engine& eng) {
  return eng.run(spec.name(),
                 [&spec](front::Ctx& ctx) { run_spec_body(spec, ctx); });
}

}  // namespace gg::check
