#include "check/oracle.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "check/serial_ref.hpp"
#include "check/signature.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"
#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/sim_engine.hpp"
#include "topology/topology.hpp"
#include "trace/validate.hpp"

namespace gg::check {

namespace {

/// One engine run, fully analyzed: validated, signed, graphed, measured.
struct Analysis {
  Trace trace;
  std::string sig;
  GrainTable grains;
  MetricsResult metrics;
  bool valid = false;  ///< trace AND graph validation passed
};

/// Validates, signs, and (when valid) builds graph + table + metrics.
/// Validation failures land in `out` prefixed with `who`.
Analysis analyze(Trace trace, const Topology& topo, const std::string& who,
                 bool check_metrics, std::vector<std::string>& out) {
  Analysis a;
  a.trace = std::move(trace);
  bool ok = true;
  for (const std::string& v : validate_trace(a.trace)) {
    out.push_back(who + ": invalid trace: " + v);
    ok = false;
  }
  if (!ok) return a;
  a.sig = canonical_signature(a.trace);
  GrainGraph graph = GrainGraph::build(a.trace);
  for (const std::string& v : validate_graph(graph)) {
    out.push_back(who + ": invalid graph: " + v);
    ok = false;
  }
  if (!ok) return a;
  a.grains = GrainTable::build(a.trace);
  if (check_metrics) {
    a.metrics = compute_metrics(a.trace, graph, a.grains, topo);
  }
  a.valid = true;
  return a;
}

/// Envelope invariants every engine must satisfy on its own trace.
void check_self_invariants(const Analysis& a, const std::string& who,
                           std::vector<std::string>& out) {
  if (!a.valid) return;
  const TimeNs makespan = a.trace.makespan();
  if (a.metrics.critical_path_time > makespan) {
    out.push_back(who + ": critical path " +
                  std::to_string(a.metrics.critical_path_time) +
                  "ns exceeds makespan " + std::to_string(makespan) + "ns");
  }
  for (size_t i = 0; i < a.metrics.per_grain.size(); ++i) {
    const GrainMetrics& m = a.metrics.per_grain[i];
    const std::string& path = a.grains.grains()[i].path;
    if (m.inst_parallelism > m.inst_parallelism_optimistic) {
      out.push_back(who + ": grain " + path +
                    ": conservative parallelism " +
                    std::to_string(m.inst_parallelism) + " > optimistic " +
                    std::to_string(m.inst_parallelism_optimistic));
    }
    if (!(m.scatter >= 0.0) || std::isinf(m.scatter)) {
      out.push_back(who + ": grain " + path + ": scatter " +
                    std::to_string(m.scatter) + " not finite non-negative");
    }
  }
}

void check_signature_match(const Analysis& ref, const Analysis& got,
                           const std::string& who,
                           std::vector<std::string>& out) {
  if (!ref.valid || !got.valid) return;
  if (got.sig != ref.sig) {
    out.push_back(who + ": signature differs from serial reference; first " +
                  "diff (ref | engine): " +
                  first_signature_diff(ref.sig, got.sig));
  }
}

/// Exact tier: every schedule-independent quantity agrees bit-for-bit.
void check_exact_match(const Analysis& ref, const Analysis& got,
                       const std::string& who,
                       std::vector<std::string>& out) {
  if (!ref.valid || !got.valid) return;
  check_signature_match(ref, got, who, out);
  if (got.trace.makespan() != ref.trace.makespan()) {
    out.push_back(who + ": makespan " + std::to_string(got.trace.makespan()) +
                  "ns != serial " + std::to_string(ref.trace.makespan()) +
                  "ns");
  }
  if (got.metrics.total_work != ref.metrics.total_work) {
    out.push_back(who + ": total work " +
                  std::to_string(got.metrics.total_work) + "ns != serial " +
                  std::to_string(ref.metrics.total_work) + "ns");
  }
  if (got.metrics.critical_path_time != ref.metrics.critical_path_time) {
    out.push_back(who + ": critical path " +
                  std::to_string(got.metrics.critical_path_time) +
                  "ns != serial " +
                  std::to_string(ref.metrics.critical_path_time) + "ns");
  }
  for (const Grain& g : ref.grains.grains()) {
    const Grain* o = got.grains.by_path(g.path);
    if (o == nullptr) {
      out.push_back(who + ": grain " + g.path + " missing");
      continue;
    }
    if (o->exec_time != g.exec_time) {
      out.push_back(who + ": grain " + g.path + ": exec_time " +
                    std::to_string(o->exec_time) + "ns != serial " +
                    std::to_string(g.exec_time) + "ns");
    }
    if (o->counters.compute != g.counters.compute) {
      out.push_back(who + ": grain " + g.path + ": compute counter " +
                    std::to_string(o->counters.compute) + " != serial " +
                    std::to_string(g.counters.compute));
    }
    if (o->n_fragments != g.n_fragments || o->n_children != g.n_children) {
      out.push_back(who + ": grain " + g.path + ": fragment/child counts (" +
                    std::to_string(o->n_fragments) + "," +
                    std::to_string(o->n_children) + ") != serial (" +
                    std::to_string(g.n_fragments) + "," +
                    std::to_string(g.n_children) + ")");
    }
  }
  if (got.grains.size() != ref.grains.size()) {
    out.push_back(who + ": grain count " + std::to_string(got.grains.size()) +
                  " != serial " + std::to_string(ref.grains.size()));
  }
}

struct RtsRun {
  Analysis analysis;
  std::vector<i32> trail;
  std::vector<WorkerStatsRec> stats;
  std::string desc;
};

RtsRun run_rts_schedule(const ProgramSpec& spec, const ScheduleOptions& sopts,
                        rts::SchedulerKind scheduler,
                        rts::QueueBackend backend, const Topology& topo,
                        bool check_metrics, std::vector<std::string>& out) {
  ScheduleController ctrl(sopts);
  std::ostringstream who;
  who << "rts[workers=" << sopts.num_threads << " "
      << (scheduler == rts::SchedulerKind::CentralQueue
              ? "central"
              : std::string("ws/") + rts::to_string(backend))
      << " " << ctrl.describe() << "]";

  rts::Options ropts;
  ropts.num_workers = sopts.num_threads;
  ropts.scheduler = scheduler;
  ropts.queue_backend = backend;
  // The envelope tier asserts wall-clock invariants (critical path <=
  // makespan), which only a globally-truthful clock guarantees: per-core
  // TSC offsets under virtualization can make causally-ordered fragments
  // on different workers overlap by a few thousand ns, and a chain with
  // many cross-worker hops (flat combining is the worst case) accumulates
  // the skew past the makespan.
  ropts.strict_clock = true;
  ctrl.install();
  Trace trace;
  {
    rts::ThreadedEngine eng(ropts);
    trace = run_spec(spec, eng);
  }
  ctrl.uninstall();

  RtsRun run;
  run.desc = who.str();
  run.trail = ctrl.trail();
  run.analysis = analyze(std::move(trace), topo, run.desc, check_metrics, out);
  run.stats = run.analysis.trace.worker_stats;
  return run;
}

/// Worker counters that must replay exactly. idle_ns is wall-clock spin
/// time — schedule-identical runs still differ in how long the losing
/// thread waited for the token — so it is the one field excluded.
std::string stats_key(const std::vector<WorkerStatsRec>& stats) {
  std::ostringstream os;
  for (const WorkerStatsRec& w : stats) {
    os << "w" << w.worker << " spawned=" << w.tasks_spawned
       << " executed=" << w.tasks_executed << " inlined=" << w.tasks_inlined
       << " steals=" << w.steals << " steal_failures=" << w.steal_failures
       << " cas_failures=" << w.cas_failures << " pushes=" << w.deque_pushes
       << " pops=" << w.deque_pops << " resizes=" << w.deque_resizes
       << " helps=" << w.taskwait_helps << " bytes=" << w.trace_bytes << "\n";
  }
  return os.str();
}

}  // namespace

std::string OracleResult::summary(size_t limit) const {
  std::ostringstream os;
  os << violations.size() << " violation(s) across " << programs_checked
     << " program(s), " << schedules_explored << " schedule(s)";
  for (size_t i = 0; i < violations.size() && i < limit; ++i) {
    os << "\n  " << violations[i];
  }
  if (violations.size() > limit) {
    os << "\n  ... and " << (violations.size() - limit) << " more";
  }
  return os.str();
}

OracleResult check_program(const ProgramSpec& spec,
                           const OracleOptions& opts) {
  OracleResult res;
  res.programs_checked = 1;
  std::vector<std::string> out;
  const Topology topo = Topology::opteron48();
  const std::string tag = spec.name();
  const auto who = [&tag](const std::string& ctx) { return tag + " " + ctx; };

  // Serial references, one per team size (built on demand, reused).
  std::map<int, Analysis> serial;
  const auto serial_for = [&](int team) -> const Analysis& {
    auto it = serial.find(team);
    if (it == serial.end()) {
      SerialRefOptions sropts;
      sropts.topology = topo;
      sropts.team_size = team;
      SerialRefEngine eng(sropts);
      it = serial
               .emplace(team, analyze(run_spec(spec, eng), topo,
                                      who("serial(team=" +
                                          std::to_string(team) + ")"),
                                      opts.check_metrics, out))
               .first;
    }
    return it->second;
  };

  // ---- Exact tier: serial(1) vs sim(zero-overhead, 1 core, no memory).
  {
    sim::SimOptions so;
    so.topology = topo;
    so.num_cores = 1;
    so.policy = sim::SimPolicy::zero_overhead();
    so.memory_model = false;
    sim::SimEngine eng(so);
    Analysis a = analyze(run_spec(spec, eng), topo,
                         who("sim(zero,cores=1,mem=off)"), opts.check_metrics,
                         out);
    if (opts.check_metrics) {
      check_exact_match(serial_for(1), a, who("sim(zero,cores=1,mem=off)"),
                        out);
    } else {
      check_signature_match(serial_for(1), a,
                            who("sim(zero,cores=1,mem=off)"), out);
    }
  }

  // ---- Structural tier: serial(N) vs sim(zero-overhead, N cores).
  // ---- Envelope tier: realistic policies must keep every invariant and
  // the signature; without a memory model their total work still equals the
  // serial reference exactly (overheads land between fragments, never
  // inside), and with one it can only grow.
  for (int cores : opts.sim_cores) {
    const Analysis& ref = serial_for(cores);
    struct PolicyCase {
      sim::SimPolicy policy;
      bool memory;
    };
    const PolicyCase cases[] = {
        {sim::SimPolicy::zero_overhead(), false},
        {sim::SimPolicy::mir(), false},
        {sim::SimPolicy::gcc(), false},
        {sim::SimPolicy::icc(), false},
        {sim::SimPolicy::mir_central(), false},
        {sim::SimPolicy::mir_of(), false},
        {sim::SimPolicy::mir_fc(), false},
        {sim::SimPolicy::mir_ts(), false},
        {sim::SimPolicy::mir(), true},
    };
    for (const PolicyCase& pc : cases) {
      sim::SimOptions so;
      so.topology = topo;
      so.num_cores = cores;
      so.policy = pc.policy;
      so.memory_model = pc.memory;
      so.seed = spec.seed + static_cast<u64>(cores);
      sim::SimEngine eng(so);
      const std::string w =
          who("sim(" + pc.policy.name + ",cores=" + std::to_string(cores) +
              ",mem=" + (pc.memory ? "on" : "off") + ")");
      Analysis a =
          analyze(run_spec(spec, eng), topo, w, opts.check_metrics, out);
      check_signature_match(ref, a, w, out);
      if (opts.check_metrics && a.valid && ref.valid) {
        check_self_invariants(a, w, out);
        if (!pc.memory &&
            a.metrics.total_work != ref.metrics.total_work) {
          out.push_back(w + ": total work " +
                        std::to_string(a.metrics.total_work) +
                        "ns != serial " +
                        std::to_string(ref.metrics.total_work) + "ns");
        }
        if (pc.memory &&
            a.metrics.total_work < ref.metrics.total_work) {
          out.push_back(w + ": total work " +
                        std::to_string(a.metrics.total_work) +
                        "ns shrank below serial " +
                        std::to_string(ref.metrics.total_work) +
                        "ns under the memory model");
        }
      }
    }
  }

  // ---- rts schedules under the controller (+ replay of schedule 0).
  constexpr Strategy kStrategies[] = {Strategy::RoundRobin,
                                      Strategy::RandomWalk,
                                      Strategy::SleepSet};
  for (int s = 0; s < opts.schedules; ++s) {
    ScheduleOptions sopts;
    sopts.strategy = kStrategies[s % 3];
    sopts.seed = mix64(spec.seed ^ (0x9e3779b97f4a7c15ull *
                                    static_cast<u64>(s + 1)));
    sopts.num_threads = 2 + (s % 2);
    sopts.max_preemptions = (s % 4 == 3) ? (s % 7) : -1;
    sopts.timeout_seconds = opts.timeout_seconds;
    // Queue-backend cycling: schedules rotate through every work-stealing
    // backend; 5 and 3 are coprime, so 15 schedules cover every backend x
    // strategy pair. The shared central-queue scheduler (which ignores the
    // backend) takes every 7th schedule.
    const rts::SchedulerKind kind = (s % 7 == 6)
                                        ? rts::SchedulerKind::CentralQueue
                                        : rts::SchedulerKind::WorkStealing;
    const rts::QueueBackend backend = rts::kAllQueueBackends[s % 5];

    RtsRun run = run_rts_schedule(spec, sopts, kind, backend, topo,
                                  opts.check_metrics, out);
    ++res.schedules_explored;
    const Analysis& ref = serial_for(sopts.num_threads);
    check_signature_match(ref, run.analysis, who(run.desc), out);
    if (opts.check_metrics) {
      check_self_invariants(run.analysis, who(run.desc), out);
    }

    if (s < 5) {
      // Replay tier: the same {strategy, seed, bound} must reproduce the
      // decision trail, the structure, and the worker counters — checked
      // once per queue backend (schedules 0..4 span all five).
      std::vector<std::string> replay_out;
      RtsRun again = run_rts_schedule(spec, sopts, kind, backend, topo,
                                      opts.check_metrics, replay_out);
      out.insert(out.end(), replay_out.begin(), replay_out.end());
      if (again.trail != run.trail) {
        out.push_back(who(run.desc) + ": replay produced a different " +
                      "decision trail (" + std::to_string(run.trail.size()) +
                      " vs " + std::to_string(again.trail.size()) +
                      " decisions)");
      }
      if (run.analysis.valid && again.analysis.valid) {
        if (again.analysis.sig != run.analysis.sig) {
          out.push_back(who(run.desc) + ": replay changed the structural " +
                        "signature: " +
                        first_signature_diff(run.analysis.sig,
                                             again.analysis.sig));
        }
        if (stats_key(again.stats) != stats_key(run.stats)) {
          out.push_back(who(run.desc) +
                        ": replay changed worker counters:\nfirst:\n" +
                        stats_key(run.stats) + "replay:\n" +
                        stats_key(again.stats));
        }
      }
    }
  }

  res.violations = std::move(out);
  return res;
}

OracleResult check_many(u64 first_seed, int num_programs,
                        const OracleOptions& opts) {
  OracleResult all;
  for (int i = 0; i < num_programs; ++i) {
    const ProgramSpec spec = generate_program(first_seed + static_cast<u64>(i),
                                              opts.gen);
    if (opts.log) {
      std::fprintf(stderr, "[oracle] %s (%d/%d): %zu tasks\n",
                   spec.name().c_str(), i + 1, num_programs,
                   spec.spawned_tasks());
    }
    OracleResult r = check_program(spec, opts);
    all.programs_checked += r.programs_checked;
    all.schedules_explored += r.schedules_explored;
    all.violations.insert(all.violations.end(), r.violations.begin(),
                          r.violations.end());
  }
  return all;
}

}  // namespace gg::check
