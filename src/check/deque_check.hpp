// Value-accounting harnesses for the task queues, run under the schedule
// controller.
//
// An owner thread pushes distinct values into a ChaseLevDeque (or every
// thread pushes into the CentralQueue) while thief threads steal; the
// harness then audits the union of everything the threads got back. A
// correct queue delivers every pushed value exactly once:
//  * a value delivered twice  -> "duplicate" violation (lost CAS race /
//    missing removal);
//  * a value never delivered  -> "lost" violation (dropped during growth);
//  * a value never pushed     -> "bogus" violation (published-before-write
//    races return uninitialized or stale slots).
// Under the schedule controller the whole run is deterministic, so any
// violation replays from the controller's {strategy, seed, bound}.
#pragma once

#include <string>
#include <vector>

#include "check/schedule.hpp"
#include "rts/work_queue.hpp"

namespace gg::check {

struct DequeCheckOptions {
  ScheduleOptions schedule;  ///< num_threads is derived; other knobs used
  /// Which queue implementation to audit (rts/work_queue.hpp); every
  /// backend runs the identical owner/thief protocol.
  rts::QueueBackend backend = rts::QueueBackend::ChaseLev;
  int num_thieves = 1;
  /// Values pushed per round, and rounds. Keeping rounds small but many
  /// keeps the size-1 steal-vs-pop window hot.
  int items_per_round = 1;
  int rounds = 8;
  /// Owner pops (vs. leaving values to thieves) per round.
  int owner_pops = 1;
  /// Initial deque capacity; 2 forces buffer growth during concurrent
  /// steals when items_per_round exceeds it.
  size_t initial_capacity = 64;
  /// Bound on empty-handed steal attempts per thief, so lossy mutants
  /// (dropped values) terminate instead of spinning forever.
  int max_steal_attempts = 4000;
};

struct DequeCheckResult {
  std::vector<std::string> violations;  ///< empty == clean run
  std::string schedule_desc;            ///< replay handle of this run
  u64 decisions = 0;
  bool ok() const { return violations.empty(); }
};

/// Work-stealing deque (any opts.backend): one owner (thread 0) doing
/// push/pop, num_thieves stealing concurrently, fully serialized by a
/// ScheduleController built from `opts.schedule`.
DequeCheckResult check_deque(const DequeCheckOptions& opts);

/// Central queue: same accounting; every thread both pushes and pops.
DequeCheckResult check_central_queue(const DequeCheckOptions& opts);

}  // namespace gg::check
