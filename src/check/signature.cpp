#include "check/signature.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace gg::check {

namespace {

/// Creation path of every task: chain of child indices from the root. The
/// root's path is "R"; its third child is "R.2"; and so on.
std::unordered_map<TaskId, std::string> task_paths(const Trace& trace) {
  std::unordered_map<TaskId, std::string> paths;
  paths.reserve(trace.tasks.size());
  // Tasks are sorted by uid after finalize(), but parents do not always
  // have smaller uids than children across engines. Iterate to fixpoint;
  // depth is tiny, so this converges in a few passes.
  bool progress = true;
  while (progress && paths.size() < trace.tasks.size()) {
    progress = false;
    for (const TaskRec& t : trace.tasks) {
      if (paths.count(t.uid) != 0) continue;
      if (t.parent == kNoTask) {
        paths.emplace(t.uid, "R");
        progress = true;
        continue;
      }
      auto it = paths.find(t.parent);
      if (it == paths.end()) continue;
      paths.emplace(t.uid,
                    it->second + "." + std::to_string(t.child_index));
      progress = true;
    }
  }
  GG_CHECK_MSG(paths.size() == trace.tasks.size(),
               "trace contains tasks with unknown parents");
  return paths;
}

std::string str_of(const Trace& trace, StrId id) {
  return std::string(trace.strings.get(id));
}

}  // namespace

std::string canonical_signature(const Trace& trace) {
  GG_CHECK(trace.finalized());
  const auto paths = task_paths(trace);
  const auto path_of = [&paths](TaskId uid) -> const std::string& {
    auto it = paths.find(uid);
    GG_CHECK_MSG(it != paths.end(), "record references an unknown task");
    return it->second;
  };
  // Loop uid -> (root loop seq, schedule) for fragment refs and chunk keys.
  std::unordered_map<LoopId, const LoopRec*> loop_of;
  for (const LoopRec& l : trace.loops) loop_of.emplace(l.uid, &l);
  const auto loop_seq = [&loop_of](LoopId uid) -> u32 {
    auto it = loop_of.find(uid);
    GG_CHECK_MSG(it != loop_of.end(), "record references an unknown loop");
    return it->second->seq;
  };

  std::map<std::string, std::string> task_lines;  // path -> line
  for (const TaskRec& t : trace.tasks) {
    const std::string& p = path_of(t.uid);
    std::ostringstream line;
    line << "task " << p << " src=" << str_of(trace, t.src) << " parent="
         << (t.parent == kNoTask ? std::string("-") : path_of(t.parent))
         << " frags=";
    for (const FragmentRec* f : trace.fragments_of(t.uid)) {
      switch (f->end_reason) {
        case FragmentEnd::Fork:
          line << "F(" << path_of(static_cast<TaskId>(f->end_ref)) << ")";
          break;
        case FragmentEnd::Join:
          line << "J(" << f->end_ref << ")";
          break;
        case FragmentEnd::Loop:
          line << "L(" << loop_seq(static_cast<LoopId>(f->end_ref)) << ")";
          break;
        case FragmentEnd::TaskEnd:
          line << "E";
          break;
      }
      line << ";";
    }
    line << " joins=" << trace.joins_of(t.uid).size();
    task_lines.emplace(p, line.str());
  }

  std::vector<std::string> dep_lines;
  for (const DependRec& d : trace.depends) {
    dep_lines.push_back("dep " + path_of(d.pred) + " -> " + path_of(d.succ));
  }
  std::sort(dep_lines.begin(), dep_lines.end());
  dep_lines.erase(std::unique(dep_lines.begin(), dep_lines.end()),
                  dep_lines.end());

  std::map<u32, std::string> loop_lines;  // root loop seq -> lines
  for (const LoopRec& l : trace.loops) {
    std::ostringstream line;
    line << "loop " << l.seq << " task=" << path_of(l.enclosing_task)
         << " src=" << str_of(trace, l.src) << " sched=" << to_string(l.sched)
         << " chunk=" << l.chunk_param << " range=[" << l.iter_begin << ","
         << l.iter_end << ") team=" << l.num_threads << "\n";
    const auto chunks = trace.chunks_of(l.uid);
    if (l.sched == ScheduleKind::Static) {
      // Static: ranges AND thread assignment are schedule-independent.
      std::map<u16, std::vector<std::pair<u64, u64>>> per_thread;
      for (const ChunkRec* c : chunks) {
        per_thread[c->thread].emplace_back(c->iter_begin, c->iter_end);
      }
      for (auto& [t, ranges] : per_thread) {
        std::sort(ranges.begin(), ranges.end());
        line << "  chunks t" << t << " =";
        for (const auto& [a, b] : ranges) line << " " << a << "-" << b;
        line << "\n";
      }
    } else {
      // Dynamic/guided: only the range multiset is schedule-independent.
      std::vector<std::pair<u64, u64>> ranges;
      for (const ChunkRec* c : chunks) {
        ranges.emplace_back(c->iter_begin, c->iter_end);
      }
      std::sort(ranges.begin(), ranges.end());
      line << "  chunks * =";
      for (const auto& [a, b] : ranges) line << " " << a << "-" << b;
      line << "\n";
    }
    loop_lines.emplace(l.seq, line.str());
  }

  std::ostringstream out;
  out << "tasks=" << trace.tasks.size() << " loops=" << trace.loops.size()
      << " chunks=" << trace.chunks.size() << "\n";
  for (const auto& [p, line] : task_lines) out << line << "\n";
  for (const std::string& d : dep_lines) out << d << "\n";
  for (const auto& [s, line] : loop_lines) out << line;
  return out.str();
}

std::string first_signature_diff(const std::string& a, const std::string& b) {
  if (a == b) return {};
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "(signatures differ only in line order)";
    if (!ga) return "(end) | " + lb;
    if (!gb) return la + " | (end)";
    if (la != lb) return la + " | " + lb;
  }
}

}  // namespace gg::check
