#include "check/deque_check.hpp"

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "rts/central_queue.hpp"
#include "rts/preempt.hpp"
#include "rts/work_queue.hpp"

namespace gg::check {

namespace {

/// Audits delivered values against the known pushed set [1, total].
void account(u64 total, const std::vector<std::vector<u64>>& got,
             DequeCheckResult& result) {
  std::map<u64, u64> counts;
  for (const auto& v : got) {
    for (u64 x : v) ++counts[x];
  }
  for (const auto& [value, count] : counts) {
    if (value == 0 || value > total) {
      result.violations.push_back(
          "bogus value " + std::to_string(value) +
          " delivered (never pushed) [" + result.schedule_desc + "]");
    } else if (count > 1) {
      result.violations.push_back(
          "value " + std::to_string(value) + " delivered " +
          std::to_string(count) + " times [" + result.schedule_desc + "]");
    }
  }
  for (u64 v = 1; v <= total; ++v) {
    if (counts.find(v) == counts.end()) {
      result.violations.push_back("value " + std::to_string(v) +
                                  " lost (pushed, never delivered) [" +
                                  result.schedule_desc + "]");
    }
  }
}

}  // namespace

DequeCheckResult check_deque(const DequeCheckOptions& opts) {
  const int n = 1 + opts.num_thieves;
  ScheduleOptions sched = opts.schedule;
  sched.num_threads = n;
  ScheduleController ctrl(sched);
  DequeCheckResult result;
  result.schedule_desc = std::string(rts::to_string(opts.backend)) + " " +
                         ctrl.describe();

  rts::WorkQueueConfig qcfg;
  qcfg.initial_capacity = opts.initial_capacity;
  auto queue = rts::make_work_queue<u64>(opts.backend, qcfg);
  rts::WorkQueue<u64>& deque = *queue;
  std::atomic<bool> done_pushing{false};
  std::vector<std::vector<u64>> got(static_cast<size_t>(n));
  const u64 total =
      static_cast<u64>(opts.rounds) * static_cast<u64>(opts.items_per_round);

  ctrl.install();
  // The calling thread is the owner and registers FIRST, so it takes the
  // token deterministically before any thief exists (same pattern as the
  // threaded engine's worker 0).
  rts::preempt_thread_start(0);

  std::vector<std::thread> thieves;
  for (int id = 1; id < n; ++id) {
    thieves.emplace_back([&, id] {
      rts::preempt_thread_start(id);
      auto& mine = got[static_cast<size_t>(id)];
      int idle_attempts = 0;
      while (idle_attempts < opts.max_steal_attempts) {
        if (auto v = deque.steal()) {
          mine.push_back(*v);
          idle_attempts = 0;
          continue;
        }
        if (done_pushing.load(std::memory_order_acquire) &&
            deque.empty_estimate()) {
          break;
        }
        ++idle_attempts;
        // Voluntary yield: an empty-handed thief must never be able to
        // monopolize an exhausted preemption budget.
        rts::preempt_point(rts::PreemptPoint::Idle);
      }
      rts::preempt_thread_stop();
    });
  }

  // Owner: rounds of push + pop with live thieves in between — this is
  // where the size-1 steal-vs-pop CAS race and growth-during-steal windows
  // open up.
  u64 next = 1;
  auto& mine = got[0];
  for (int r = 0; r < opts.rounds; ++r) {
    for (int k = 0; k < opts.items_per_round; ++k) deque.push(next++);
    for (int k = 0; k < opts.owner_pops; ++k) {
      if (auto v = deque.pop()) mine.push_back(*v);
    }
  }
  done_pushing.store(true, std::memory_order_release);
  // Drain what the thieves leave behind.
  int idle_attempts = 0;
  while (idle_attempts < opts.max_steal_attempts) {
    if (auto v = deque.pop()) {
      mine.push_back(*v);
      idle_attempts = 0;
      continue;
    }
    if (deque.empty_estimate()) break;
    ++idle_attempts;
    rts::preempt_point(rts::PreemptPoint::Idle);
  }
  rts::preempt_thread_stop();
  for (auto& t : thieves) t.join();
  ctrl.uninstall();

  result.decisions = ctrl.decision_count();
  account(total, got, result);
  return result;
}

DequeCheckResult check_central_queue(const DequeCheckOptions& opts) {
  const int n = 1 + opts.num_thieves;
  ScheduleOptions sched = opts.schedule;
  sched.num_threads = n;
  ScheduleController ctrl(sched);
  DequeCheckResult result;
  result.schedule_desc = ctrl.describe();

  rts::CentralQueue<u64> queue;
  std::vector<std::vector<u64>> got(static_cast<size_t>(n));
  const u64 per_thread =
      static_cast<u64>(opts.rounds) * static_cast<u64>(opts.items_per_round);
  const u64 total = per_thread * static_cast<u64>(n);
  std::atomic<u64> delivered{0};

  // Every thread pushes its own value range, then everyone drains until
  // the global delivered count reaches the total (or gives up — mutants
  // that duplicate or lose values break the count).
  auto body = [&](int id) {
    auto& mine = got[static_cast<size_t>(id)];
    u64 next = static_cast<u64>(id) * per_thread + 1;
    for (u64 k = 0; k < per_thread; ++k) queue.push(next++);
    int idle_attempts = 0;
    while (idle_attempts < opts.max_steal_attempts &&
           delivered.load(std::memory_order_acquire) < total) {
      if (auto v = queue.pop()) {
        mine.push_back(*v);
        delivered.fetch_add(1, std::memory_order_acq_rel);
        idle_attempts = 0;
        continue;
      }
      ++idle_attempts;
      rts::preempt_point(rts::PreemptPoint::Idle);
    }
    rts::preempt_thread_stop();
  };

  ctrl.install();
  rts::preempt_thread_start(0);
  std::vector<std::thread> others;
  for (int id = 1; id < n; ++id) {
    others.emplace_back([&, id] {
      rts::preempt_thread_start(id);
      body(id);
    });
  }
  body(0);
  for (auto& t : others) t.join();
  ctrl.uninstall();

  result.decisions = ctrl.decision_count();
  account(total, got, result);
  return result;
}

}  // namespace gg::check
