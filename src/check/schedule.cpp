#include "check/schedule.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace gg::check {

namespace {
// The slot this thread registered under, or -1. Thread-local so calls from
// threads outside the controlled team (e.g. the test main thread poking a
// deque directly) fall through without serialization.
thread_local int tls_slot = -1;

bool is_publish_point(rts::PreemptPoint p) {
  using P = rts::PreemptPoint;
  return p == P::DequePush || p == P::DequePushPublish || p == P::QueuePush;
}
}  // namespace

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::RoundRobin: return "round-robin";
    case Strategy::RandomWalk: return "random-walk";
    case Strategy::SleepSet: return "sleep-set";
  }
  return "?";
}

ScheduleController::ScheduleController(const ScheduleOptions& opts)
    : opts_(opts), rng_(opts.seed) {
  GG_CHECK(opts_.num_threads >= 1);
  state_.assign(static_cast<size_t>(opts_.num_threads), SlotState::Absent);
  sleeping_.assign(static_cast<size_t>(opts_.num_threads), 0);
}

ScheduleController::~ScheduleController() { uninstall(); }

void ScheduleController::install() {
  GG_CHECK_MSG(rts::preempt_observer() == nullptr,
               "another schedule controller is already installed");
  installed_ = true;
  rts::set_preempt_observer(this);
}

void ScheduleController::uninstall() {
  if (installed_) {
    rts::set_preempt_observer(nullptr);
    installed_ = false;
  }
}

void ScheduleController::on_thread_start(int worker_id) {
  std::unique_lock lk(mutex_);
  GG_CHECK_MSG(worker_id >= 0 && worker_id < opts_.num_threads,
               "worker id outside the controller's configured team "
               "(ScheduleOptions::num_threads must equal the engine's "
               "worker count)");
  GG_CHECK_MSG(state_[static_cast<size_t>(worker_id)] != SlotState::Started,
               "worker id registered twice");
  tls_slot = worker_id;
  state_[static_cast<size_t>(worker_id)] = SlotState::Started;
  // The first registrant takes the token; with the engine weaving this is
  // always worker 0 (it registers before spawning the team).
  if (current_ == -1) current_ = worker_id;
  cv_.notify_all();
  wait_for_token_locked(lk, worker_id);
}

void ScheduleController::on_thread_stop() {
  if (tls_slot < 0) return;
  std::unique_lock lk(mutex_);
  const int self = tls_slot;
  tls_slot = -1;
  state_[static_cast<size_t>(self)] = SlotState::Finished;
  sleeping_[static_cast<size_t>(self)] = 0;
  if (current_ == self) {
    current_ = decide_next_locked(self, rts::PreemptPoint::Idle,
                                  /*stopping=*/true);
    trail_.push_back(current_);
    ++decisions_;
  }
  cv_.notify_all();
}

void ScheduleController::preempt(rts::PreemptPoint point) {
  if (tls_slot < 0) return;
  std::unique_lock lk(mutex_);
  const int self = tls_slot;
  const int next = decide_next_locked(self, point, /*stopping=*/false);
  trail_.push_back(next);
  ++decisions_;
  if (next == self || next == -1) return;
  if (point != rts::PreemptPoint::Idle) ++preemptions_;
  current_ = next;
  cv_.notify_all();
  wait_for_token_locked(lk, self);
}

int ScheduleController::decide_next_locked(int self, rts::PreemptPoint point,
                                           bool stopping) {
  const int n = opts_.num_threads;
  const bool idle = point == rts::PreemptPoint::Idle;

  if (opts_.strategy == Strategy::SleepSet) {
    if (!stopping && idle) sleeping_[static_cast<size_t>(self)] = 1;
    if (is_publish_point(point)) {
      for (auto& s : sleeping_) s = 0;
    }
  }

  // Candidates: every configured id that has not finished (Absent ids count
  // — choosing one simply waits for it to register, which is deterministic
  // because registration is the thread's first action).
  std::vector<int> cands;
  cands.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    if (state_[static_cast<size_t>(id)] == SlotState::Finished) continue;
    if (stopping && id == self) continue;
    cands.push_back(id);
  }
  if (cands.empty()) return -1;
  if (cands.size() == 1) return cands.front();

  // Exhausted preemption budget: keep running the current thread except at
  // voluntary yields, which must always be able to hand the token on.
  const bool budget_left = opts_.max_preemptions < 0 ||
                           preemptions_ <
                               static_cast<u64>(opts_.max_preemptions);
  if (!stopping && !idle && !budget_left) return self;

  // At a voluntary yield the yielding thread steps aside when anyone else
  // can run — this is what guarantees progress under every strategy.
  std::vector<int> avail;
  avail.reserve(cands.size());
  const bool drop_self = stopping || idle;
  for (int id : cands) {
    if (drop_self && id == self) continue;
    if (opts_.strategy == Strategy::SleepSet && !stopping &&
        sleeping_[static_cast<size_t>(id)]) {
      continue;
    }
    avail.push_back(id);
  }
  if (avail.empty()) {
    // Everyone else is parked: clear the sleep set rather than starve.
    for (auto& s : sleeping_) s = 0;
    for (int id : cands) {
      if (!(drop_self && id == self)) avail.push_back(id);
    }
  }
  if (avail.empty()) avail = cands;

  switch (opts_.strategy) {
    case Strategy::RoundRobin: {
      // Next available id after self, cyclically.
      int best = avail.front();
      for (int id : avail) {
        const int d_id = (id - self + n) % n;
        const int d_best = (best - self + n) % n;
        if (d_id != 0 && (d_best == 0 || d_id < d_best)) best = id;
      }
      return best;
    }
    case Strategy::RandomWalk:
    case Strategy::SleepSet:
      return avail[static_cast<size_t>(
          rng_.bounded(static_cast<u64>(avail.size())))];
  }
  return self;
}

void ScheduleController::wait_for_token_locked(std::unique_lock<std::mutex>& lk,
                                               int self) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(opts_.timeout_seconds);
  while (current_ != self) {
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        current_ != self) {
      dump_state_locked("token wait timed out (schedule deadlock?)");
      std::abort();
    }
  }
}

void ScheduleController::dump_state_locked(const char* why) const {
  std::fprintf(stderr, "ScheduleController: %s\n  %s\n  current=%d\n", why,
               describe().c_str(), current_);
  for (int id = 0; id < opts_.num_threads; ++id) {
    const auto s = state_[static_cast<size_t>(id)];
    std::fprintf(stderr, "  thread %d: %s%s\n", id,
                 s == SlotState::Absent ? "absent"
                 : s == SlotState::Started ? "started"
                                           : "finished",
                 sleeping_[static_cast<size_t>(id)] ? " (sleeping)" : "");
  }
  std::fflush(stderr);
}

u64 ScheduleController::decision_count() const {
  std::lock_guard lk(mutex_);
  return decisions_;
}

u64 ScheduleController::preemption_count() const {
  std::lock_guard lk(mutex_);
  return preemptions_;
}

std::vector<i32> ScheduleController::trail() const {
  std::lock_guard lk(mutex_);
  return trail_;
}

std::string ScheduleController::describe() const {
  std::string out = "strategy=";
  out += to_string(opts_.strategy);
  out += " seed=" + std::to_string(opts_.seed);
  out += " threads=" + std::to_string(opts_.num_threads);
  out += " bound=" + std::to_string(opts_.max_preemptions);
  return out;
}

}  // namespace gg::check
