#include "check/serial_ref.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace gg::check {

namespace {

using front::Ctx;
using front::ForOpts;
using front::LoopFn;
using front::SrcLoc;
using front::TaskFn;

/// Shared state of one elaboration.
struct Elab {
  Trace trace;
  Topology topo;
  int team = 1;
  TimeNs now = 0;
  TaskId next_task_uid = 1;
  LoopId next_loop_uid = 1;
  u32 root_loop_seq = 0;

  TimeNs ns(Cycles c) const { return topo.cycles_to_ns(c); }
};

class RefCtx final : public Ctx {
 public:
  RefCtx(Elab* st, TaskId uid) : st_(st), uid_(uid) {}

  void spawn(const SrcLoc& loc, TaskFn body) override {
    spawn_impl(loc, nullptr, std::move(body));
  }

  void spawn(const SrcLoc& loc, const front::Depends& deps,
             TaskFn body) override {
    spawn_impl(loc, &deps, std::move(body));
  }

  void taskwait() override {
    GG_CHECK_MSG(!in_chunk_, "taskwait inside loop chunks is not supported");
    flush_compute();
    // Structural no-op when nothing synchronizes here. Inline execution
    // means children are never live, so only children_since_join_ matters
    // (the engines under test additionally check live children).
    if (children_since_join_ == 0) return;
    const u32 jseq = next_join_seq_++;
    end_fragment(FragmentEnd::Join, jseq);
    JoinRec j;
    j.task = uid_;
    j.seq = jseq;
    j.start = st_->now;
    j.end = st_->now;
    j.core = 0;
    st_->trace.joins.push_back(j);
    children_since_join_ = 0;
  }

  void parallel_for(const SrcLoc& loc, u64 lo, u64 hi, const ForOpts& opts,
                    const LoopFn& body) override;

  void compute(Cycles cycles) override {
    if (in_chunk_) {
      iter_compute_ += cycles;
    } else {
      pending_compute_ += cycles;
    }
  }

  void touch(front::RegionId, u64, u64, u32, u32) override {
    // No memory model; still an op boundary for compute merging (the
    // capture breaks merged compute runs at touch ops the same way).
    if (!in_chunk_) flush_compute();
  }

  int worker() const override { return 0; }
  int num_workers() const override { return st_->team; }

  /// Opens the first fragment at the current virtual time.
  void begin() { frag_start_ = st_->now; }

  /// Ends the task: final fragment with reason TaskEnd.
  void finish_task() {
    flush_compute();
    end_fragment(FragmentEnd::TaskEnd, 0);
  }

  /// Root epilogue: the implicit barrier. Inline execution finishes every
  /// descendant before the root body returns, so the barrier join appears
  /// exactly when the root still has unjoined direct children — which the
  /// generator's join discipline makes schedule-independent.
  void finish_root() {
    flush_compute();
    if (children_since_join_ > 0) {
      const u32 jseq = next_join_seq_++;
      end_fragment(FragmentEnd::Join, jseq);
      JoinRec j;
      j.task = uid_;
      j.seq = jseq;
      j.start = st_->now;
      j.end = st_->now;
      j.core = 0;
      st_->trace.joins.push_back(j);
      children_since_join_ = 0;
    }
    end_fragment(FragmentEnd::TaskEnd, 0);
  }

 private:
  void flush_compute() {
    if (pending_compute_ == 0) return;
    st_->now += st_->ns(pending_compute_);
    frag_cnt_.compute += pending_compute_;
    pending_compute_ = 0;
  }

  void end_fragment(FragmentEnd reason, u64 ref) {
    FragmentRec f;
    f.task = uid_;
    f.seq = next_frag_seq_++;
    f.start = frag_start_;
    f.end = st_->now;
    f.core = 0;
    f.counters = frag_cnt_;
    f.end_reason = reason;
    f.end_ref = ref;
    st_->trace.fragments.push_back(f);
    frag_cnt_ = Counters{};
    frag_start_ = st_->now;
  }

  void spawn_impl(const SrcLoc& loc, const front::Depends* deps,
                  TaskFn body) {
    GG_CHECK_MSG(!in_chunk_,
                 "spawning tasks from loop chunks is not supported");
    flush_compute();
    const TaskId child = st_->next_task_uid++;
    if (deps != nullptr && !deps->empty()) resolve_dependences(*deps, child);
    end_fragment(FragmentEnd::Fork, child);
    TaskRec rec;
    rec.uid = child;
    rec.parent = uid_;
    rec.child_index = next_child_index_++;
    rec.src = intern_src(st_->trace.strings, loc.file, loc.line, loc.func);
    rec.create_time = st_->now;
    rec.create_core = 0;
    rec.creation_cost = 0;
    rec.inlined = false;
    st_->trace.tasks.push_back(rec);
    ++children_since_join_;
    RefCtx child_ctx(st_, child);
    child_ctx.frag_start_ = st_->now;
    body(child_ctx);
    child_ctx.finish_task();
    frag_start_ = st_->now;
  }

  /// OpenMP last-writer/reader resolution against earlier siblings — the
  /// same rules the runtimes apply, so the recorded edge set matches.
  void resolve_dependences(const front::Depends& deps, TaskId child) {
    std::vector<TaskId> preds;
    auto add = [&](TaskId p) {
      if (p == child) return;
      for (TaskId q : preds) {
        if (q == p) return;
      }
      preds.push_back(p);
    };
    for (u64 h : deps.in) {
      auto it = dep_map_.find(h);
      if (it != dep_map_.end() && it->second.has_writer)
        add(it->second.last_writer);
    }
    for (u64 h : deps.out) {
      auto it = dep_map_.find(h);
      if (it != dep_map_.end()) {
        if (it->second.has_writer) add(it->second.last_writer);
        for (TaskId r : it->second.readers) add(r);
      }
    }
    for (TaskId p : preds) {
      DependRec d;
      d.pred = p;
      d.succ = child;
      st_->trace.depends.push_back(d);
    }
    for (u64 h : deps.in) dep_map_[h].readers.push_back(child);
    for (u64 h : deps.out) {
      auto& e = dep_map_[h];
      e.has_writer = true;
      e.last_writer = child;
      e.readers.clear();
    }
  }

  struct DepEntry {
    bool has_writer = false;
    TaskId last_writer = 0;
    std::vector<TaskId> readers;
  };

  Elab* st_;
  TaskId uid_;
  TimeNs frag_start_ = 0;
  Counters frag_cnt_;
  Cycles pending_compute_ = 0;
  u32 next_frag_seq_ = 0;
  u32 next_join_seq_ = 0;
  u32 next_child_index_ = 0;
  u32 children_since_join_ = 0;
  bool in_chunk_ = false;
  Cycles iter_compute_ = 0;  ///< accumulates while in_chunk_
  std::map<u64, DepEntry> dep_map_;
};

void RefCtx::parallel_for(const SrcLoc& loc, u64 lo, u64 hi,
                          const ForOpts& opts, const LoopFn& body) {
  GG_CHECK_MSG(uid_ == kRootTask && !in_chunk_,
               "parallel_for is only supported from the root task");
  flush_compute();
  Elab& st = *st_;
  const LoopId uid = st.next_loop_uid++;
  const u32 seq = st.root_loop_seq++;
  end_fragment(FragmentEnd::Loop, uid);

  const int team = opts.num_threads > 0 ? std::min(opts.num_threads, st.team)
                                        : st.team;
  LoopRec rec;
  rec.uid = uid;
  rec.enclosing_task = uid_;
  rec.src = intern_src(st.trace.strings, loc.file, loc.line, loc.func);
  rec.sched = opts.sched;
  rec.chunk_param = opts.chunk;
  rec.iter_begin = lo;
  rec.iter_end = hi;
  rec.num_threads = static_cast<u16>(team);
  rec.starting_thread = 0;  // the root always runs on thread 0
  rec.seq = seq;
  rec.start = st.now;

  if (hi <= lo) {
    rec.end = st.now;
    st.trace.loops.push_back(rec);
    return;
  }

  const u64 total = hi - lo;
  // Chunk assignment, with the formulas every engine shares.
  //  thread id -> ordered chunk ranges it elaborates
  std::vector<std::vector<std::pair<u64, u64>>> per_thread(
      static_cast<size_t>(team));
  if (opts.sched == ScheduleKind::Static) {
    const u64 t = static_cast<u64>(team);
    const u64 csize =
        opts.chunk > 0 ? opts.chunk : std::max<u64>(1, (total + t - 1) / t);
    u64 pos = lo;
    u64 index = 0;
    while (pos < hi) {
      const u64 end = std::min(pos + csize, hi);
      per_thread[static_cast<size_t>(index % t)].emplace_back(pos, end);
      pos = end;
      ++index;
    }
  } else {
    // Dynamic/guided ranges come from a shared cursor, so the range SET is
    // schedule-independent; which thread runs each is not. Elaborate all of
    // them on thread 0 — the signature ignores dynamic chunk placement.
    const u64 chunk_min = std::max<u64>(1, opts.chunk);
    u64 cursor = lo;
    while (cursor < hi) {
      u64 take;
      if (opts.sched == ScheduleKind::Dynamic) {
        take = std::min(chunk_min, hi - cursor);
      } else {
        const u64 remaining = hi - cursor;
        const u64 size = std::max<u64>(
            chunk_min, remaining / (2 * static_cast<u64>(team)));
        take = std::min(size, remaining);
      }
      per_thread[0].emplace_back(cursor, cursor + take);
      cursor += take;
    }
  }

  in_chunk_ = true;
  for (int t = 0; t < team; ++t) {
    const auto& mine = per_thread[static_cast<size_t>(t)];
    if (mine.empty()) continue;  // silent: never participated
    u32 bk_seq = 0;
    u32 chunk_seq = 0;
    for (const auto& [clo, chi] : mine) {
      BookkeepRec b;
      b.loop = uid;
      b.thread = static_cast<u16>(t);
      b.core = static_cast<u16>(t);
      b.seq_on_thread = bk_seq++;
      b.start = st.now;
      b.end = st.now;
      b.got_chunk = true;
      st.trace.bookkeeps.push_back(b);

      const TimeNs c0 = st.now;
      Counters cnt;
      for (u64 i = clo; i < chi; ++i) {
        iter_compute_ = 0;
        body(i, *this);
        // Per-iteration aggregated conversion, as the DES does.
        st.now += st.ns(iter_compute_);
        cnt.compute += iter_compute_;
      }
      ChunkRec c;
      c.loop = uid;
      c.thread = static_cast<u16>(t);
      c.core = static_cast<u16>(t);
      c.seq_on_thread = chunk_seq++;
      c.iter_begin = clo;
      c.iter_end = chi;
      c.start = c0;
      c.end = st.now;
      c.counters = cnt;
      st.trace.chunks.push_back(c);
    }
    // Final empty book-keeping step of a thread that worked.
    BookkeepRec b;
    b.loop = uid;
    b.thread = static_cast<u16>(t);
    b.core = static_cast<u16>(t);
    b.seq_on_thread = bk_seq++;
    b.start = st.now;
    b.end = st.now;
    b.got_chunk = false;
    st.trace.bookkeeps.push_back(b);
  }
  in_chunk_ = false;

  rec.end = st.now;
  st.trace.loops.push_back(rec);
  frag_start_ = st.now;
}

}  // namespace

SerialRefEngine::SerialRefEngine(SerialRefOptions opts)
    : opts_(std::move(opts)) {
  GG_CHECK(opts_.team_size >= 1);
}

front::RegionId SerialRefEngine::alloc_region(const std::string&, u64,
                                              front::PagePlacement, int) {
  return next_region_++;  // regions are accepted and ignored (no memory model)
}

Trace SerialRefEngine::run(const std::string& program_name,
                           const TaskFn& root) {
  Elab st;
  st.topo = opts_.topology;
  st.team = opts_.team_size;

  TaskRec root_rec;
  root_rec.uid = kRootTask;
  root_rec.parent = kNoTask;
  root_rec.src = st.trace.strings.intern("<root>");
  st.trace.tasks.push_back(root_rec);

  RefCtx ctx(&st, kRootTask);
  ctx.begin();
  root(ctx);
  ctx.finish_root();

  TraceMeta meta;
  meta.program = program_name;
  meta.runtime = "serial/ref";
  meta.topology = st.topo.name();
  meta.num_workers = st.team;
  meta.num_cores = st.team;
  meta.ghz = st.topo.ghz();
  meta.region_start = 0;
  meta.region_end = st.now;
  meta.notes.push_back("team=" + std::to_string(st.team));
  meta.profiled = true;
  meta.clock_source = "virtual";
  st.trace.meta = meta;
  st.trace.finalize();
  return std::move(st.trace);
}

}  // namespace gg::check
