// Cross-engine differential oracle for grain graphs.
//
// One generated program (check/genprog.hpp) is elaborated by three
// independent engines — the threaded runtime under the deterministic
// schedule controller, the discrete-event simulator, and the serial
// reference elaborator — and the results must agree exactly where the
// paper says they must (§3.1: the grain graph is independent of machine
// size and scheduling choices) and within envelopes where they may not:
//
//  Exact tier   serial(team=1) vs sim(zero-overhead, 1 core, no memory):
//               equal signatures, per-grain execution times and counters,
//               makespan, total work, critical path.
//  Structural   serial(team=N) vs sim(zero-overhead, N cores): equal
//  tier         signatures and total work.
//  Envelope     every rts schedule and every realistic sim policy: clean
//  tier         validate_trace/validate_graph, signature equal to the
//               serial reference at the same team size, exact total-work
//               agreement without a memory model (>= with one), critical
//               path <= makespan, conservative <= optimistic instantaneous
//               parallelism, finite non-negative scatter.
//  Replay tier  the first rts schedule re-runs with the same {strategy,
//               seed, bound} and must reproduce the controller's decision
//               trail, the structural signature, and the worker counters.
//
// Every violation message embeds the program seed and the controller's
// describe() string, so any failure replays from the log line alone.
#pragma once

#include <string>
#include <vector>

#include "check/genprog.hpp"
#include "check/schedule.hpp"

namespace gg::check {

struct OracleOptions {
  /// rts schedules explored per program (strategies, seeds, preemption
  /// bounds, and the central-queue scheduler are cycled deterministically).
  int schedules = 6;
  /// Core counts for the structural/envelope simulator runs.
  std::vector<int> sim_cores = {2, 4};
  /// Run the metric-envelope checks (moderately costly on large graphs).
  bool check_metrics = true;
  /// Watchdog handed to every schedule controller.
  int timeout_seconds = 120;
  GenOptions gen;
  /// Progress lines on stderr (one per program), for the deep suite.
  bool log = false;
};

struct OracleResult {
  std::vector<std::string> violations;
  int programs_checked = 0;
  int schedules_explored = 0;
  bool ok() const { return violations.empty(); }
  /// At most `limit` violations joined for a test failure message.
  std::string summary(size_t limit = 10) const;
};

/// Runs the full oracle on one generated program.
OracleResult check_program(const ProgramSpec& spec,
                           const OracleOptions& opts = {});

/// Generates `num_programs` programs from consecutive seeds starting at
/// `first_seed` and accumulates all violations.
OracleResult check_many(u64 first_seed, int num_programs,
                        const OracleOptions& opts = {});

}  // namespace gg::check
