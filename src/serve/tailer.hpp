// Polling spool tailer: the serve layer's ingestion edge.
//
// One SpoolTailer follows one live .ggspool file, reading newly appended
// bytes and folding every complete frame into an IncrementalTrace
// (trace/incremental.hpp) — the exact applier batch recovery uses, so the
// tail converges on the same trace a post-mortem `gganalyze --recover`
// would build from the final file.
//
// The robustness contract:
//  * A partially written frame at EOF is "in progress", not corrupt. The
//    tailer waits for the rest, retrying with bounded exponential backoff
//    (retry_initial_ns doubling to retry_max_ns, reset on growth), so an
//    idle spool costs ~0 CPU.
//  * A tail stuck past torn_deadline_ns is escalated ONLY when a later
//    checksum-valid frame is already visible in the stream — proof the
//    damage is not an in-flight write. Escalation abandons the stuck span
//    (one corrupt frame in the report) and resyncs at the valid header, so
//    one bad frame loses one epoch, not the session.
//  * A stuck tail at true EOF (the writer died mid-write) is never
//    escalated by the tailer itself; the session layer detects writer
//    death (crash footer / staleness) and calls finalize(), which maps the
//    unresolved tail to the batch-identical torn-tail diagnostics.
//
// poll() takes the current time as a parameter; tests drive a fake clock
// through the whole backoff/deadline state machine deterministically.
#pragma once

#include <memory>
#include <string>

#include "trace/incremental.hpp"

namespace gg::serve {

struct TailerOptions {
  /// First retry delay after an incomplete tail or an idle poll.
  u64 retry_initial_ns = 2'000'000;
  /// Backoff cap. Defaults to the spool sink's flush interval — polling
  /// faster than the writer flushes buys nothing.
  u64 retry_max_ns = 50'000'000;
  /// How long a tail may stay torn before it is eligible for escalation
  /// (and even then only past a later valid frame; see above).
  u64 torn_deadline_ns = 5'000'000'000;
  /// Per-poll read ceiling, so one huge backlog cannot starve other
  /// sessions of the ingest loop.
  u64 max_read_bytes = 1 << 20;
};

enum class TailState : u8 {
  Opening,    ///< file not successfully opened yet (may not exist yet)
  Header,     ///< waiting for the complete spool header
  Streaming,  ///< caught up or mid-apply; tail is healthy
  Waiting,    ///< incomplete/stuck tail; backing off before the next read
  Sealed,     ///< clean footer applied: the writer shut down cleanly
  Crashed,    ///< crash footer applied: the writer died flushing
  Failed,     ///< unrecoverable stream (bad magic, implausible header)
};

const char* tail_state_name(TailState s);

struct TailStats {
  u64 bytes_consumed = 0;  ///< stream offset fully applied
  u64 frames_applied = 0;  ///< frames handed to the IncrementalTrace
  u64 reads = 0;           ///< pread() batches that returned new bytes
  u64 idle_polls = 0;      ///< polls skipped by backoff (the ~0-CPU path)
  u64 resyncs = 0;         ///< stuck tails abandoned past the deadline
};

class SpoolTailer {
 public:
  explicit SpoolTailer(std::string path, TailerOptions opts = {});
  ~SpoolTailer();

  SpoolTailer(const SpoolTailer&) = delete;
  SpoolTailer& operator=(const SpoolTailer&) = delete;

  /// One poll at `now_ns`: honor the backoff schedule, read appended
  /// bytes, apply complete frames, update the torn-tail state machine.
  /// Returns the number of frames applied this round.
  size_t poll(u64 now_ns);

  TailState state() const { return state_; }
  const TailStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }
  const std::string& fail_reason() const { return fail_reason_; }

  /// Earliest time the next poll() will actually read; before that it is
  /// an idle no-op. ~0 when the tailer wants to read immediately.
  u64 next_poll_ns() const { return next_poll_ns_; }

  /// Last file size observed (bytes). 0 before the first successful read.
  u64 file_size() const { return file_size_; }

  /// True once the file ends in a frame the backoff machinery is waiting
  /// out (torn payload, short header, or garbled magic).
  bool tail_stuck() const { return stuck_ != Stuck::None; }

  /// Buffered-but-unapplied bytes plus the accumulated trace footprint —
  /// what the admission budget charges for this stream.
  u64 resident_bytes() const;

  /// The accumulating trace; nullptr until the spool header was parsed.
  spool::IncrementalTrace* trace() { return inc_.get(); }
  const spool::IncrementalTrace* trace() const { return inc_.get(); }

  /// End of life — the session layer decided the writer is gone (clean
  /// footer, crash footer, staleness, eviction). Maps any unresolved tail
  /// to the batch-identical diagnostics and finish()es the trace. Returns
  /// false when nothing recoverable was ingested. Idempotent.
  bool finalize();
  bool finalized() const { return finalized_; }

 private:
  enum class Stuck : u8 {
    None,
    TornHeader,   ///< < kFrameHeaderBytes remain after the last frame
    Garbled,      ///< bytes at the tail are not a frame header
    Overrun,      ///< declared payload length is implausible (> 1 GiB)
    TornPayload,  ///< header complete, payload (partially) missing
  };

  bool ensure_open();
  size_t drain(u64 now_ns);
  void set_stuck(Stuck kind, u64 offset, u64 len, u64 now_ns);
  bool try_resync();
  void schedule_retry(u64 now_ns, bool made_progress);

  std::string path_;
  TailerOptions opts_;
  int fd_ = -1;
  std::unique_ptr<spool::IncrementalTrace> inc_;
  std::string pending_;  ///< unapplied stream bytes, starting at base_
  u64 base_ = 0;         ///< file offset of pending_[0]
  u64 file_size_ = 0;
  TailState state_ = TailState::Opening;
  Stuck stuck_ = Stuck::None;
  u64 stuck_off_ = 0;
  u64 stuck_len_ = 0;
  u64 stuck_since_ns_ = 0;
  u64 next_poll_ns_ = 0;
  u64 backoff_ns_ = 0;
  std::string fail_reason_;
  TailStats stats_;
  bool header_done_ = false;
  bool finalized_ = false;
  bool usable_ = false;
};

}  // namespace gg::serve
