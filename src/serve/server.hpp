// The ggserved core: session table, supervision loop, query surface.
//
// A Server owns N sessions (one per tailed spool), found by scanning a
// directory for *.ggspool files and/or attached explicitly. Everything
// stateful happens inside tick() — one supervision round: scan for new
// spools, poll every live tailer, recompute the admission level, apply
// backpressure (pause/resume), evict idle finalized sessions. tick() takes
// its time from an injectable clock, so tests drive the entire lifecycle
// (backoff, staleness, eviction) deterministically with a fake clock.
//
// run() wraps tick() in a real-time loop with the socket endpoint and a
// watchdog thread mirroring rts/supervisor.hpp: the ingest loop heartbeats
// once per tick; if the heartbeat freezes past the stall deadline the
// watchdog dumps a structured diagnosis to stderr and publishes
// serve.watchdog_stalls — it never aborts (a serving daemon degrades, it
// does not die).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/ingest.hpp"
#include "serve/session.hpp"

namespace gg::obs {
class Registry;
class Counter;
}  // namespace gg::obs

namespace gg::serve {

class Endpoint;

struct ServerOptions {
  /// Directory scanned for *.ggspool files; empty disables scanning
  /// (sessions come from attach() / ATTACH only).
  std::string dir;
  /// AF_UNIX socket path for the query endpoint; empty disables it.
  std::string socket_path;
  /// AF_UNIX socket path for GGWIRE1 network ingestion; empty disables it.
  std::string ingest_socket_path;
  SessionOptions session;
  AdmissionOptions admission;
  IngestOptions ingest;
  /// Query-endpoint slowloris guard: a connection without a complete
  /// request line within this long gets "ERR timeout" and is closed.
  u64 query_read_deadline_ns = 5'000'000'000;
  /// Directory re-scan period.
  u64 scan_interval_ns = 500'000'000;
  /// run() loop sleep between ticks.
  u64 tick_sleep_ns = 2'000'000;
  /// Watchdog: ingest-loop heartbeat frozen this long == stall.
  u64 watchdog_stall_ns = 2'000'000'000;
  u64 watchdog_poll_ns = 10'000'000;
  /// run() returns once at least one session existed and all of them are
  /// finalized (the soak harness's clean-shutdown condition).
  bool exit_when_idle = false;
  /// Publishes serve.* metrics when set.
  obs::Registry* telemetry = nullptr;
  /// Injectable clock for tick-time (tests); null uses the steady clock.
  std::function<u64()> clock;
  /// Watchdog stall hook (tests); the stderr dump happens regardless.
  std::function<void(const std::string&)> on_stall;
};

class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Attaches one spool path as a session. False when already attached.
  bool attach(const std::string& path);

  /// One supervision round at the injected clock's current time.
  void tick();

  /// Answers one query-protocol request line (PING/STATUS/SESSIONS/
  /// SUMMARY/REPORT/TELEMETRY/ATTACH/EVICT/SHUTDOWN). Thread-safe; this is
  /// what the socket endpoint calls.
  std::string query(const std::string& request);

  /// Real-time serving loop: endpoint + watchdog + tick/sleep until
  /// stop() (or idle, with exit_when_idle). Finalizes every session on the
  /// way out. Returns 0 on a clean shutdown.
  int run();
  void stop() { stop_.store(true, std::memory_order_release); }
  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  // Introspection (tests and the tool's final summary).
  size_t session_count() const;
  u64 resident_bytes() const;
  bool idle() const;  ///< at least one session existed, all finalized
  u64 ticks() const { return heartbeat_.load(std::memory_order_relaxed); }
  u64 watchdog_stalls() const {
    return watchdog_stalls_.load(std::memory_order_relaxed);
  }
  AdmissionController& admission() { return admission_; }
  IngestRegistry& ingest() { return ingest_; }
  const IngestRegistry& ingest() const { return ingest_; }
  /// Runs `fn` under the session lock for every session, in path order.
  void for_each_session(
      const std::function<void(const Session&)>& fn) const;
  /// Structured state dump (the watchdog's stall diagnosis; also STATUS).
  std::string diagnosis() const;

 private:
  u64 now_ns() const;
  void scan_dir_locked(u64 now);
  void apply_backpressure_locked(u64 now);
  void evict_sweep_locked(u64 now);
  void evict_locked(const std::string& path);
  Session* find_locked(const std::string& key);
  std::string status_locked() const;
  void finalize_all();
  void watchdog_main();

  ServerOptions opts_;
  AdmissionController admission_;
  IngestRegistry ingest_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;  // by path
  u64 next_id_ = 1;
  u64 next_scan_ns_ = 0;
  bool ever_attached_ = false;

  obs::Counter* m_ticks_ = nullptr;
  obs::Counter* m_frames_ = nullptr;
  obs::Counter* m_attached_ = nullptr;
  obs::Counter* m_stalls_ = nullptr;

  std::atomic<u64> heartbeat_{0};
  std::atomic<u64> watchdog_stalls_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> watchdog_stop_{false};
  std::thread watchdog_;
  std::unique_ptr<Endpoint> endpoint_;
  std::unique_ptr<IngestListener> ingest_listener_;
};

}  // namespace gg::serve
