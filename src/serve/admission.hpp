// Bounded-memory backpressure for the serve layer.
//
// One global admission budget covers every session's resident bytes
// (buffered tail + accumulated records). As usage climbs the controller
// degrades gracefully instead of aborting, shedding the cheapest thing
// that relieves the most pressure first:
//
//   < shed_fraction   Normal          everything admitted
//   >= shed_fraction  SheddingQueries heavy whole-graph queries refused
//                                     (cheap status/summary queries stay)
//   >= pause_fraction PausingTailers  + low-priority tailers paused (their
//                                     writers keep appending; ingestion
//                                     lags but loses nothing)
//
// Every shed/pause/evict decision is published through the obs::Registry
// (serve.* counters/gauges), so degradation is observable, never silent.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace gg::obs {
class Registry;
class Counter;
class Gauge;
}  // namespace gg::obs

namespace gg::serve {

struct AdmissionOptions {
  /// Global resident-bytes budget across all sessions.
  u64 budget_bytes = 256ull << 20;
  /// Usage fraction at which heavy queries are shed.
  double shed_fraction = 0.75;
  /// Usage fraction at which low-priority tailers are paused.
  double pause_fraction = 0.90;
};

enum class DegradeLevel : u8 {
  Normal = 0,
  SheddingQueries = 1,
  PausingTailers = 2,
};

const char* degrade_level_name(DegradeLevel level);

class AdmissionController {
 public:
  /// `registry` may be null (tests without telemetry); decisions still
  /// work, they are just not published.
  AdmissionController(const AdmissionOptions& opts, obs::Registry* registry);

  /// Recomputes the degrade level from current usage and publishes the
  /// serve.* gauges. Called once per server tick.
  void update(u64 resident_bytes, size_t sessions);

  DegradeLevel level() const { return level_; }
  u64 budget_bytes() const { return opts_.budget_bytes; }
  u64 resident_bytes() const { return resident_bytes_; }
  bool over_budget() const { return resident_bytes_ > opts_.budget_bytes; }

  /// Gate for a heavy (whole-graph analysis) query. False means shed: the
  /// caller must answer with a cheap refusal, not block or abort.
  bool admit_heavy_query();

  /// True while tailers should be paused (usage >= pause_fraction).
  bool should_pause_tailers() const {
    return level_ == DegradeLevel::PausingTailers;
  }

  // Decision bookkeeping, published as serve.* counters.
  void note_paused();
  void note_resumed();
  void note_evicted();

  u64 queries_shed() const { return queries_shed_; }
  u64 tailers_paused() const { return tailers_paused_; }
  u64 sessions_evicted() const { return sessions_evicted_; }

 private:
  AdmissionOptions opts_;
  DegradeLevel level_ = DegradeLevel::Normal;
  u64 resident_bytes_ = 0;
  u64 queries_shed_ = 0;
  u64 tailers_paused_ = 0;
  u64 sessions_evicted_ = 0;

  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_paused_ = nullptr;
  obs::Counter* m_resumed_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
  obs::Gauge* g_resident_ = nullptr;
  obs::Gauge* g_budget_ = nullptr;
  obs::Gauge* g_level_ = nullptr;
  obs::Gauge* g_sessions_ = nullptr;
};

}  // namespace gg::serve
