// Network spool ingestion: GGWIRE1 streams feeding IncrementalTrace.
//
// The wire twin of the filesystem tailer. Each pushing client owns one
// IngestStream — keyed by its 128-bit token, NOT by its connection — that
// folds EPOCH-carried GGSPOOL1 frames straight into a spool::
// IncrementalTrace (no temp file). Connections are disposable: wire-level
// damage (bad magic, checksum failure, implausible length) poisons only
// the connection; the stream survives and the client resumes by
// re-HELLOing with its token. The server ACKs every applied epoch with
// the highest durably-applied wire seq, and deduplicates anything at or
// below it on resume, so a crash or disconnect at any byte boundary loses
// at most the unacked tail — the same ≤1-epoch-per-worker bound SIGKILL
// recovery gives the filesystem path.
//
// Layering (socketless core, transport shell):
//   IngestStream    token-keyed stream state + batch-identical finalize
//   IngestRegistry  thread-safe token → stream table, sweep, admission math
//   IngestConnection byte-in/byte-out protocol state machine (unit-testable
//                   without sockets; the fault proxy drives it through one)
//   IngestListener  AF_UNIX accept loop + per-connection threads, read
//                   deadlines (slowloris), connection caps, MSG_NOSIGNAL
//
// Finalize runs exactly the Session pipeline — tail-note mapping,
// IncrementalTrace::finish(), salvage when degraded, validate — so a
// stream pushed over the wire finalizes byte-identical to batch
// `gganalyze --recover` of the source spool (the chaos tests pin this).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.hpp"
#include "trace/incremental.hpp"

namespace gg::obs {
class Registry;
class Counter;
class Gauge;
}  // namespace gg::obs

namespace gg::serve {

struct IngestOptions {
  /// Max concurrent *unfinished* wire streams; new HELLOs past the cap are
  /// shed (resume of an existing stream is always admitted — an accepted
  /// session is never abandoned by admission).
  size_t max_sessions = 64;
  /// Max concurrent ingest connections (transport-level cap).
  size_t max_connections = 64;
  /// Per-connection reassembly-buffer cap: a peer that streams frame bytes
  /// faster than they decode (or sends one huge torn frame) is disconnected
  /// — resumable — once the decoder buffers this much.
  u64 max_wire_buffer_bytes = 16ull << 20;
  /// No bytes from a connection for this long → structured timeout ACK and
  /// disconnect (slowloris guard). The stream survives for resume.
  u64 read_deadline_ns = 10'000'000'000;
  /// An unfinished stream with no traffic for this long is presumed
  /// abandoned and finalized with what arrived (the client is dead).
  u64 stale_after_ns = 30'000'000'000;
  /// A finalized stream unqueried for this long is evicted by the sweep.
  u64 evict_after_ns = 60'000'000'000;
};

enum class IngestState : u8 {
  Open,     ///< handshake done / streaming epochs
  Sealed,   ///< SEAL applied: finalized, queryable
  Crashed,  ///< crash footer arrived in-stream: recovered + salvaged
  Failed,   ///< nothing recoverable
};

const char* ingest_state_name(IngestState s);

/// One wire-fed spool stream. Thread-safe: a resumed connection and a
/// half-dead predecessor may race, so every mutation takes the stream lock
/// and connections are fenced by a generation counter (a new HELLO
/// supersedes older connections to the same stream).
class IngestStream {
 public:
  IngestStream(u64 id, wire::Token token, std::string name, u64 now_ns);

  IngestStream(const IngestStream&) = delete;
  IngestStream& operator=(const IngestStream&) = delete;

  /// What a protocol step decided; the connection turns this into an ACK.
  struct Apply {
    wire::Status status = wire::Status::Ok;
    u64 acked_seq = 0;
    std::string message;
  };

  /// OFFER: allocates the IncrementalTrace. Idempotent for matching worker
  /// counts (a resumed client may re-OFFER); a mismatch is a session error.
  Apply offer(u32 num_workers, u64 now_ns);

  /// EPOCH: dedupes on wire seq (seq <= acked is an already-applied
  /// retransmit), requires exactly acked+1 next, parses the embedded
  /// GGSPOOL1 frame header strictly and folds it into the trace with
  /// batch-recovery semantics.
  Apply apply_epoch(u32 seq, const wire::EpochMsg& msg, u64 now_ns);

  /// SEAL: stamps the end-of-stream tail note (torn/garbled/overrun — what
  /// a tailer would find at the source's EOF) and finalizes.
  Apply seal(const wire::SealMsg& msg, u64 now_ns);

  /// Sweep/shutdown path: finalize with what arrived (no SEAL ever came —
  /// the client died; footer-less provenance is stamped, unacked tail lost).
  void finalize(u64 now_ns);

  /// A new connection takes over the stream; older connections observe the
  /// bumped generation and stand down.
  u64 adopt();
  u64 generation() const;

  u64 id() const { return id_; }
  const wire::Token& token() const { return token_; }
  const std::string& name() const { return name_; }
  bool offered() const;
  bool finalized() const;
  bool usable() const;
  IngestState state() const;
  u64 acked_seq() const;
  u64 resident_bytes() const;
  u64 last_activity_ns() const;
  u64 last_query_ns() const;
  void touch_query(u64 now_ns);

  /// The recovery report: accumulating while open, frozen after finalize.
  /// Null before OFFER.
  const spool::RecoverReport* report() const;
  /// The finalized trace; null until finalize and for Failed streams.
  const Trace* trace() const;

  std::string status_line() const;
  /// Full analysis report (live snapshot while open — same convergence
  /// contract as Session::report_text).
  std::string report_text() const;

 private:
  Apply finalize_locked(wire::EndKind end, u64 end_offset, u64 end_len,
                        u64 now_ns);
  u64 resident_locked() const;

  const u64 id_;
  const wire::Token token_;
  const std::string name_;

  mutable std::mutex mu_;
  std::unique_ptr<spool::IncrementalTrace> inc_;
  u32 num_workers_ = 0;
  u64 acked_seq_ = 0;
  u64 epochs_duplicate_ = 0;
  bool footer_seen_ = false;
  IngestState state_ = IngestState::Open;
  bool finalized_ = false;
  bool usable_ = false;
  Trace trace_;                  ///< valid once finalized_ && usable_
  spool::RecoverReport report_;  ///< frozen at finalize
  u64 last_activity_ns_ = 0;
  u64 last_query_ns_ = 0;
  std::atomic<u64> generation_{0};
};

/// Thread-safe token → stream table plus the ingest half of admission:
/// session caps, staleness sweep, eviction of idle finalized streams, and
/// the serve.ingest.* telemetry.
class IngestRegistry {
 public:
  IngestRegistry(const IngestOptions& opts, obs::Registry* telemetry);

  IngestRegistry(const IngestRegistry&) = delete;
  IngestRegistry& operator=(const IngestRegistry&) = delete;

  struct Hello {
    std::shared_ptr<IngestStream> stream;  ///< null when shed (at cap)
    bool created = false;                  ///< false: resumed
  };
  /// HELLO admission: resumes an existing token unconditionally, creates a
  /// new stream unless the unfinished-stream cap is reached (shed).
  Hello hello(const wire::Token& token, const std::string& name, u64 now_ns);

  std::shared_ptr<IngestStream> find(const wire::Token& token) const;
  /// Query-surface lookup: numeric id, exact name (if unique), or token
  /// hex prefix (>= 6 chars). Null when unknown or ambiguous.
  std::shared_ptr<IngestStream> find_by_key(const std::string& key) const;

  /// One supervision round: finalize abandoned open streams (stale), evict
  /// finalized streams idle past evict_after_ns.
  void sweep(u64 now_ns);
  /// Shutdown: finalize every open stream with what arrived.
  void finalize_all(u64 now_ns);

  u64 resident_bytes() const;
  size_t stream_count() const;
  size_t open_count() const;
  void for_each(const std::function<void(const IngestStream&)>& fn) const;

  const IngestOptions& options() const { return opts_; }

  // Telemetry hooks for the connection layer (null-safe).
  void note_resumed();
  void note_shed();
  void note_poisoned();
  void note_timeout();
  void note_epoch_applied();
  void note_epoch_duplicate();

 private:
  IngestOptions opts_;
  mutable std::mutex mu_;
  std::map<wire::Token, std::shared_ptr<IngestStream>> streams_;
  u64 next_id_ = 1;

  obs::Counter* m_created_ = nullptr;
  obs::Counter* m_resumed_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_poisoned_ = nullptr;
  obs::Counter* m_timeouts_ = nullptr;
  obs::Counter* m_epochs_ = nullptr;
  obs::Counter* m_dup_epochs_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
  obs::Gauge* g_open_ = nullptr;
  obs::Gauge* g_streams_ = nullptr;
};

/// The GGWIRE1 server-side state machine over one connection's byte
/// stream. Transport-free: feed raw bytes in, collect ACK bytes out —
/// unit tests drive it directly, IngestListener drives it from a socket.
class IngestConnection {
 public:
  /// `admit_offer` gates brand-new streams' OFFERs (the degrade ladder
  /// sheds those before it ever pauses tailers); null admits everything.
  IngestConnection(IngestRegistry* registry,
                   std::function<bool()> admit_offer);

  /// Feeds received bytes; appends response bytes to *out. Returns false
  /// once the connection must close (poisoned wire, protocol error, BYE,
  /// buffer cap) — the reason is in close_reason().
  bool on_bytes(std::string_view bytes, std::string* out, u64 now_ns);

  /// The structured timeout path (listener read deadline fired): appends
  /// the final timeout ACK to *out and closes the connection.
  void on_timeout(std::string* out);

  bool open() const { return open_; }
  const std::string& close_reason() const { return close_reason_; }
  const std::shared_ptr<IngestStream>& stream() const { return stream_; }

 private:
  bool on_frame(const wire::Frame& f, std::string* out, u64 now_ns);
  bool fail(wire::Status status, const std::string& reason,
            std::string* out);

  IngestRegistry* registry_;
  std::function<bool()> admit_offer_;
  wire::Decoder decoder_;
  std::shared_ptr<IngestStream> stream_;
  u64 generation_ = 0;
  bool open_ = true;
  std::string close_reason_;
};

/// AF_UNIX ingest socket: accept loop + one thread per connection, with
/// read deadlines, connection caps, and SIGPIPE-proof writes.
class IngestListener {
 public:
  IngestListener(std::string socket_path, IngestRegistry* registry,
                 std::function<bool()> admit_offer,
                 std::function<u64()> clock);
  ~IngestListener();

  IngestListener(const IngestListener&) = delete;
  IngestListener& operator=(const IngestListener&) = delete;

  bool start(std::string* error);
  void stop();

  const std::string& path() const { return path_; }
  size_t active_connections() const {
    return active_.load(std::memory_order_acquire);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::string path_;
  IngestRegistry* registry_;
  std::function<bool()> admit_offer_;
  std::function<u64()> clock_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<size_t> active_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace gg::serve
