// GGWIRE1 client: streams GGSPOOL1 frames into a ggserved ingest socket
// with acked durability and reconnect-and-resume.
//
// The client owns a 128-bit session token and a window of sent-but-unacked
// EPOCH frames. Every disconnect — reset, poisoned wire, server restart,
// send deadline — is handled the same way: close, back off (exponential
// with deterministic jitter), reconnect, re-HELLO with the token and the
// last acked seq, then retransmit the unacked window. The server dedupes
// anything it already applied, so a fault at any byte boundary loses at
// most the unacked tail; with the default per-frame ACKs that tail is the
// one in-flight epoch — the wire twin of the spool's ≤1-epoch-per-worker
// SIGKILL bound.
//
// If a reconnect finds the server's acked seq *behind* ours (the daemon
// restarted and lost its in-memory session), the already-dropped acked
// prefix cannot be retransmitted from the window: the client reports
// needs_restart() and a caller that still holds the source (push_bytes /
// ggspool-push) restarts the push from scratch on the same token — the
// final report is still byte-identical, only the wall-clock is lost.
//
// A fault::WireFaultPlan can be armed on the send path (tests): resets,
// partial writes, duplicated sends, bit flips, stalls and garbage
// preambles are injected deterministically, and the recovery machinery
// above is what digs the stream out.
#pragma once

#include <deque>
#include <string>
#include <string_view>

#include "fault/fault.hpp"
#include "serve/wire.hpp"

namespace gg::serve {

struct WireClientOptions {
  std::string socket_path;
  /// HELLO display name (shows up in SESSIONS listings).
  std::string name;
  /// Deterministic seed for the token and backoff jitter; 0 derives one
  /// from the process and clock (production default).
  u64 seed = 0;
  /// Reconnect/connect backoff, exponential with jitter, capped.
  u64 backoff_initial_ns = 10'000'000;
  u64 backoff_max_ns = 1'000'000'000;
  /// Connect + handshake attempts per operation before giving up. Covers
  /// daemon startup races: ECONNREFUSED/ENOENT while the socket appears.
  u32 max_attempts = 30;
  /// Max time one operation blocks waiting for ACK progress before the
  /// connection is declared dead and the reconnect path runs.
  u64 ack_deadline_ns = 5'000'000'000;
  /// Max sent-but-unacked EPOCH frames in flight.
  size_t window = 32;
  /// Armed send-path faults (tests); null sends clean.
  const fault::WireFaultPlan* fault = nullptr;
};

class WireClient {
 public:
  explicit WireClient(const WireClientOptions& opts);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Pushes one complete spool byte stream (header + frames) and seals.
  /// Walks the stream exactly like the tailer: intact frames ship as
  /// EPOCHs, the first non-delimitable damage becomes the SEAL's end kind.
  /// Restarts from scratch automatically when the server lost session
  /// state mid-push. False with *error on exhausted retries.
  bool push_bytes(std::string_view spool_bytes, std::string* error);
  bool push_file(const std::string& path, std::string* error);

  // Incremental API (live-follow, recorder sink). begin() declares the
  // worker count (the spool header's), send_frame() ships one complete
  // GGSPOOL1 frame at its stream offset, seal() ends the stream.
  bool begin(u32 num_workers, std::string* error);
  bool send_frame(std::string_view frame_bytes, u64 spool_offset,
                  std::string* error);
  bool seal(wire::EndKind end, u64 end_offset, u64 end_len,
            std::string* error);
  /// Polite close (the stream stays open server-side for resume).
  void bye();

  /// True when the server lost this session's state (daemon restart): the
  /// acked prefix is gone and only a from-scratch re-push can restore it.
  bool needs_restart() const { return needs_restart_; }
  /// Resets client-side stream state for a from-scratch re-push on the
  /// same token (push_bytes does this internally).
  void reset_stream();

  const wire::Token& token() const { return token_; }
  u64 acked_seq() const { return acked_; }
  u64 epochs_sent() const { return epochs_sent_; }
  u64 reconnects() const { return reconnects_; }
  u64 faults_injected() const { return faults_injected_; }
  bool sealed() const { return sealed_; }

 private:
  /// Connect + HELLO (+ OFFER + window retransmit) with capped backoff;
  /// no-op when the session is already up on this connection.
  bool ensure_session(std::string* error);
  void close_fd();
  void backoff_sleep(u32 attempt);
  /// Writes bytes (fault filter applied to epoch frames when `seq`
  /// matches an armed plan). False on any send failure — the caller runs
  /// the reconnect path.
  bool send_bytes(const std::string& bytes, u32 seq, bool is_epoch);
  /// Reads one ACK frame within the deadline. False on disconnect/poison/
  /// timeout — caller reconnects.
  bool read_ack(wire::AckMsg* ack, u64 deadline_ns);
  /// Reads and applies ACKs until the window shrinks to `max_window` (and
  /// the stream is sealed, when `need_sealed`).
  bool drain_acks_until(size_t max_window, bool need_sealed,
                        std::string* error);
  bool process_ack(const wire::AckMsg& ack, std::string* error);

  WireClientOptions opts_;
  wire::Token token_;
  u64 jitter_state_;
  int fd_ = -1;
  bool hello_done_ = false;
  bool offer_done_ = false;

  u32 num_workers_ = 0;
  bool begun_ = false;
  u64 acked_ = 0;
  u32 next_seq_ = 1;
  std::deque<std::pair<u32, std::string>> window_;  ///< unacked (seq, bytes)
  std::string pending_seal_;  ///< encoded SEAL awaiting its "sealed" ACK
  bool sealed_ = false;
  bool needs_restart_ = false;
  bool fatal_ = false;
  std::string fatal_reason_;

  wire::Decoder ack_decoder_;

  u64 epochs_sent_ = 0;
  u64 reconnects_ = 0;
  u64 faults_injected_ = 0;
};

/// Walks a finished spool byte stream the way the tailer would and pushes
/// it through `client`: shared by push_bytes and ggspool-push --follow.
/// Returns false with *error on exhausted retries.
bool push_spool_stream(WireClient& client, std::string_view bytes,
                       std::string* error);

}  // namespace gg::serve
