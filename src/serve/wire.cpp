#include "serve/wire.hpp"

#include <cstring>

namespace gg::serve::wire {

namespace {

void put_u32(std::string* out, u32 v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string* out, u64 v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

u32 le32_at(const char* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

u64 le64_at(const char* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<u64>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

/// Strict little-endian cursor over a payload; every read is bounds-checked
/// before it touches the buffer, so a lying length field can never walk the
/// cursor out of the payload.
struct Reader {
  std::string_view buf;
  size_t pos = 0;

  bool u32_(u32* out) {
    if (buf.size() - pos < 4) return false;
    *out = le32_at(buf.data() + pos);
    pos += 4;
    return true;
  }
  bool u64_(u64* out) {
    if (buf.size() - pos < 8) return false;
    *out = le64_at(buf.data() + pos);
    pos += 8;
    return true;
  }
  bool u8_(u8* out) {
    if (buf.size() - pos < 1) return false;
    *out = static_cast<u8>(buf[pos]);
    pos += 1;
    return true;
  }
  std::string_view rest() const { return buf.substr(pos); }
};

bool known_type(u8 t) {
  switch (static_cast<Type>(t)) {
    case Type::Hello:
    case Type::Offer:
    case Type::Ack:
    case Type::Epoch:
    case Type::Seal:
    case Type::Bye:
      return true;
  }
  return false;
}

}  // namespace

std::string Token::hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string s;
  s.reserve(32);
  for (int i = 15; i >= 0; --i) {
    const u64 word = i >= 8 ? hi : lo;
    const int nib = (i % 8) * 8;
    s.push_back(kHex[(word >> (nib + 4)) & 0xf]);
    s.push_back(kHex[(word >> nib) & 0xf]);
  }
  return s;
}

u64 checksum(Type type, u32 seq, const void* payload, size_t len) noexcept {
  u8 head[5];
  head[0] = static_cast<u8>(type);
  for (int i = 0; i < 4; ++i)
    head[1 + i] = static_cast<u8>((seq >> (8 * i)) & 0xff);
  const u64 seed = spool::fnv1a(head, sizeof head);
  return spool::fnv1a(payload, len, seed);
}

std::string encode(Type type, u32 seq, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof kMagic);
  out.push_back(static_cast<char>(type));
  put_u32(&out, seq);
  put_u64(&out, payload.size());
  put_u64(&out, checksum(type, seq, payload.data(), payload.size()));
  out.append(payload);
  return out;
}

std::string encode_hello(const Token& token, u64 resume_seq,
                         std::string_view name) {
  std::string p;
  put_u32(&p, kProtoVersion);
  put_u64(&p, token.hi);
  put_u64(&p, token.lo);
  put_u64(&p, resume_seq);
  p.append(name.substr(0, kMaxNameBytes));
  return encode(Type::Hello, 0, p);
}

std::string encode_offer(u32 num_workers, u32 seq) {
  std::string p;
  put_u32(&p, num_workers);
  return encode(Type::Offer, seq, p);
}

std::string encode_ack(Status status, u64 acked_seq,
                       std::string_view message) {
  std::string p;
  p.push_back(static_cast<char>(status));
  put_u64(&p, acked_seq);
  p.append(message);
  return encode(Type::Ack, 0, p);
}

std::string encode_epoch(u32 seq, u64 spool_offset,
                         std::string_view spool_frame) {
  std::string p;
  p.reserve(8 + spool_frame.size());
  put_u64(&p, spool_offset);
  p.append(spool_frame);
  return encode(Type::Epoch, seq, p);
}

std::string encode_seal(u32 seq, EndKind end, u64 end_offset, u64 end_len) {
  std::string p;
  p.push_back(static_cast<char>(end));
  put_u64(&p, end_offset);
  put_u64(&p, end_len);
  return encode(Type::Seal, seq, p);
}

std::string encode_bye(u32 seq) { return encode(Type::Bye, seq, {}); }

bool decode_hello(std::string_view payload, HelloMsg* out,
                  std::string* error) {
  Reader r{payload};
  if (!r.u32_(&out->proto) || !r.u64_(&out->token.hi) ||
      !r.u64_(&out->token.lo) || !r.u64_(&out->resume_seq)) {
    *error = "short HELLO payload";
    return false;
  }
  const std::string_view name = r.rest();
  if (name.size() > kMaxNameBytes) {
    *error = "HELLO name too long";
    return false;
  }
  for (char c : name) {
    if (static_cast<u8>(c) < 0x20 || static_cast<u8>(c) > 0x7e) {
      *error = "HELLO name has non-printable bytes";
      return false;
    }
  }
  out->name.assign(name);
  return true;
}

bool decode_offer(std::string_view payload, OfferMsg* out,
                  std::string* error) {
  Reader r{payload};
  if (!r.u32_(&out->num_workers) || !r.rest().empty()) {
    *error = "malformed OFFER payload";
    return false;
  }
  if (out->num_workers == 0 || out->num_workers > 4096) {
    *error = "implausible OFFER worker count " +
             std::to_string(out->num_workers);
    return false;
  }
  return true;
}

bool decode_ack(std::string_view payload, AckMsg* out, std::string* error) {
  Reader r{payload};
  u8 status = 0;
  if (!r.u8_(&status) || !r.u64_(&out->acked_seq)) {
    *error = "short ACK payload";
    return false;
  }
  if (status > static_cast<u8>(Status::SessionErr)) {
    *error = "unknown ACK status " + std::to_string(status);
    return false;
  }
  out->status = static_cast<Status>(status);
  out->message.assign(r.rest());
  return true;
}

bool decode_epoch(std::string_view payload, EpochMsg* out,
                  std::string* error) {
  Reader r{payload};
  if (!r.u64_(&out->spool_offset)) {
    *error = "short EPOCH payload";
    return false;
  }
  out->spool_frame = r.rest();
  if (out->spool_frame.size() < spool::kFrameHeaderBytes) {
    *error = "EPOCH carries no complete spool frame";
    return false;
  }
  return true;
}

bool decode_seal(std::string_view payload, SealMsg* out, std::string* error) {
  Reader r{payload};
  u8 end = 0;
  if (!r.u8_(&end) || !r.u64_(&out->end_offset) || !r.u64_(&out->end_len) ||
      !r.rest().empty()) {
    *error = "malformed SEAL payload";
    return false;
  }
  if (end > static_cast<u8>(EndKind::Overrun)) {
    *error = "unknown SEAL end kind " + std::to_string(end);
    return false;
  }
  out->end = static_cast<EndKind>(end);
  return true;
}

void Decoder::feed(std::string_view bytes) {
  if (poisoned_) return;
  // Compact before the buffer doubles past the consumed prefix, so a
  // long-lived connection never accretes dead bytes.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(bytes);
}

Decoder::Result Decoder::next(Frame* out) {
  if (poisoned_) return Result::Poison;
  const size_t avail = buf_.size() - consumed_;
  if (avail < kHeaderBytes) return Result::Need;
  const char* h = buf_.data() + consumed_;
  if (std::memcmp(h, kMagic, sizeof kMagic) != 0) {
    poisoned_ = true;
    error_ = "bad wire magic";
    return Result::Poison;
  }
  const u8 type = static_cast<u8>(h[4]);
  if (!known_type(type)) {
    poisoned_ = true;
    error_ = "unknown wire frame type " + std::to_string(type);
    return Result::Poison;
  }
  const u32 seq = le32_at(h + 5);
  const u64 payload_len = le64_at(h + 9);
  if (payload_len > kMaxPayload) {
    // Rejected before any allocation sized from the hostile field.
    poisoned_ = true;
    error_ = "implausible wire payload length " + std::to_string(payload_len);
    return Result::Poison;
  }
  if (avail - kHeaderBytes < payload_len) return Result::Need;
  const u64 stored = le64_at(h + 4 + 1 + 4 + 8);
  const char* payload = h + kHeaderBytes;
  if (checksum(static_cast<Type>(type), seq, payload,
               static_cast<size_t>(payload_len)) != stored) {
    poisoned_ = true;
    error_ = "wire frame checksum mismatch";
    return Result::Poison;
  }
  out->type = static_cast<Type>(type);
  out->seq = seq;
  out->payload =
      std::string_view(payload, static_cast<size_t>(payload_len));
  consumed_ += kHeaderBytes + static_cast<size_t>(payload_len);
  return Result::Frame;
}

}  // namespace gg::serve::wire
