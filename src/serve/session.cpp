#include "serve/session.hpp"

#include <optional>

#include "analysis/report.hpp"
#include "trace/salvage.hpp"
#include "trace/validate.hpp"

namespace gg::serve {

namespace {

std::optional<Topology> topology_by_name(const std::string& name) {
  if (name == "opteron48") return Topology::opteron48();
  if (name == "generic16") return Topology::generic16();
  if (name == "generic4") return Topology::generic4();
  return std::nullopt;
}

}  // namespace

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::Tailing: return "tailing";
    case SessionState::Sealed: return "sealed";
    case SessionState::Crashed: return "crashed";
    case SessionState::Stale: return "stale";
    case SessionState::Failed: return "failed";
  }
  return "?";
}

bool recovery_degraded(const spool::RecoverReport& rep) {
  return rep.partial() || rep.frames_corrupt > 0 ||
         rep.frames_out_of_order > 0 || rep.epoch_gaps > 0 || rep.torn_tail;
}

std::string analysis_report_text(const Trace& trace) {
  Topology topo = Topology::generic4();
  if (auto from_meta = topology_by_name(trace.meta.topology))
    topo = *from_meta;
  const Analysis a = analyze(trace, topo);
  return render_report(trace, a);
}

Session::Session(u64 id, std::string path, const SessionOptions& opts)
    : id_(id),
      path_(path),
      opts_(opts),
      tailer_(std::move(path), opts.tailer) {}

u64 Session::resident_bytes() const {
  if (finalized_) {
    u64 bytes = 0;
    auto vec = [](const auto& v) {
      return static_cast<u64>(v.size() * sizeof(v[0]));
    };
    bytes += vec(trace_.tasks) + vec(trace_.fragments) + vec(trace_.joins) +
             vec(trace_.loops) + vec(trace_.chunks) + vec(trace_.bookkeeps) +
             vec(trace_.depends) + vec(trace_.worker_stats);
    return bytes;
  }
  return tailer_.resident_bytes();
}

const spool::RecoverReport* Session::report() const {
  if (finalized_) return &report_;
  if (const spool::IncrementalTrace* inc = tailer_.trace())
    return &inc->report();
  return nullptr;
}

size_t Session::tick(u64 now_ns) {
  if (finalized_) return 0;
  if (last_activity_ns_ == 0) last_activity_ns_ = now_ns;
  if (paused_) return 0;
  const u64 size_before = tailer_.file_size();
  const size_t applied = tailer_.poll(now_ns);
  if (applied > 0 || tailer_.file_size() != size_before)
    last_activity_ns_ = now_ns;
  switch (tailer_.state()) {
    case TailState::Sealed:
      run_finalize(now_ns, SessionState::Sealed);
      break;
    case TailState::Crashed:
      // Crash footer: the writer's emergency flush got through. Hand the
      // stream to recovery immediately — nothing more will ever arrive.
      run_finalize(now_ns, SessionState::Crashed);
      break;
    case TailState::Failed:
      run_finalize(now_ns, SessionState::Failed);
      break;
    default:
      if (now_ns - last_activity_ns_ >= opts_.stale_after_ns) {
        // Footer-less writer death: no growth, no footer, deadline passed.
        run_finalize(now_ns, SessionState::Stale);
      }
      break;
  }
  return applied;
}

void Session::pause(u64 now_ns) {
  if (paused_ || finalized_) return;
  paused_ = true;
  // Pausing must not feed the staleness clock: a paused session's writer
  // may be perfectly alive.
  last_activity_ns_ = now_ns;
}

void Session::resume(u64 now_ns) {
  if (!paused_) return;
  paused_ = false;
  last_activity_ns_ = now_ns;
}

void Session::finalize(u64 now_ns) {
  if (finalized_) return;
  SessionState end = SessionState::Stale;
  switch (tailer_.state()) {
    case TailState::Sealed: end = SessionState::Sealed; break;
    case TailState::Crashed: end = SessionState::Crashed; break;
    case TailState::Failed: end = SessionState::Failed; break;
    default: break;
  }
  run_finalize(now_ns, end);
}

void Session::run_finalize(u64 now_ns, SessionState end_state) {
  if (finalized_) return;
  finalized_ = true;
  last_activity_ns_ = now_ns;
  usable_ = tailer_.finalize();
  if (const spool::IncrementalTrace* inc = tailer_.trace())
    report_ = inc->report();
  if (!usable_) {
    state_ = SessionState::Failed;
    return;
  }
  // A crash footer ends the stream in TailState::Crashed even when a stale
  // deadline triggered the finalize; the footer is the better diagnosis.
  if (!report_.crash_reason.empty() && end_state == SessionState::Stale)
    end_state = SessionState::Crashed;
  trace_ = std::move(tailer_.trace()->trace());
  // The batch `gganalyze --recover` hand-off: degraded streams run the
  // salvage pass before analysis, clean ones are used as-is.
  if (recovery_degraded(report_)) salvage_trace(trace_);
  if (!validate_trace(trace_).empty()) {
    usable_ = false;
    state_ = SessionState::Failed;
    return;
  }
  state_ = end_state;
}

std::string Session::status_line() const {
  const spool::RecoverReport* rep = report();
  std::string line = "session " + std::to_string(id_) + " " + path_ + " " +
                     session_state_name(state_);
  if (paused_) line += " (paused)";
  line += " frames=" + std::to_string(rep ? rep->frames_kept : 0);
  u64 epochs = 0;
  if (rep != nullptr)
    for (u64 e : rep->epochs_per_worker) epochs += e;
  line += " epochs=" + std::to_string(epochs);
  line += " resident=" + std::to_string(resident_bytes());
  if (rep != nullptr && !rep->crash_reason.empty())
    line += " crash=\"" + rep->crash_reason + "\"";
  return line;
}

std::string Session::report_text() const {
  if (finalized_) {
    if (!usable_) return {};
    return analysis_report_text(trace_);
  }
  const spool::IncrementalTrace* inc = tailer_.trace();
  if (inc == nullptr) return {};
  // Live snapshot: copy the accumulating records, apply the same repairs
  // finalize would (region bounds, provenance-free finalize, salvage), and
  // analyze the copy. The live answer converges on the finalized one as
  // the tail catches up.
  Trace copy = inc->trace();
  spool::IncrementalTrace::extend_region_to_records(copy);
  copy.finalize();
  salvage_trace(copy);
  if (!validate_trace(copy).empty()) return {};
  return analysis_report_text(copy);
}

}  // namespace gg::serve
