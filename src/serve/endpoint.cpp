#include "serve/endpoint.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/span.hpp"

namespace gg::serve {

namespace {

constexpr size_t kMaxRequestBytes = 64 * 1024;

bool fill_addr(const std::string& path, sockaddr_un* addr,
               std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

void write_all_fd(int fd, const char* data, size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a client that disconnects mid-response must surface
    // as EPIPE here, never as a SIGPIPE that kills the daemon.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

/// Reads until '\n', EOF, or the deadline (bounded); the request is the
/// first line. *timed_out reports a deadline hit with no complete line.
std::string read_request(int fd, u64 deadline_ns, bool* timed_out) {
  *timed_out = false;
  std::string req;
  char buf[4096];
  const u64 start = obs::mono_ns();
  while (req.size() < kMaxRequestBytes) {
    const u64 elapsed = obs::mono_ns() - start;
    if (elapsed >= deadline_ns) {
      *timed_out = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1,
        static_cast<int>(
            std::min<u64>((deadline_ns - elapsed) / 1'000'000, 100) | 1));
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // trickling client: re-check the deadline
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    req.append(buf, static_cast<size_t>(n));
    if (req.find('\n') != std::string::npos) break;
  }
  const size_t nl = req.find('\n');
  if (nl != std::string::npos) {
    req.resize(nl);
    *timed_out = false;
  } else if (*timed_out) {
    req.clear();
  }
  if (!req.empty() && req.back() == '\r') req.pop_back();
  return req;
}

}  // namespace

Endpoint::Endpoint(std::string socket_path, Handler handler,
                   u64 read_deadline_ns)
    : path_(std::move(socket_path)),
      handler_(std::move(handler)),
      read_deadline_ns_(read_deadline_ns) {}

Endpoint::~Endpoint() { stop(); }

bool Endpoint::start(std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(path_, &addr, error)) return false;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // a stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr)
      *error = "cannot bind " + path_ + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Endpoint::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path_.c_str());
}

void Endpoint::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool timed_out = false;
    const std::string request =
        read_request(fd, read_deadline_ns_, &timed_out);
    const std::string response =
        timed_out ? "ERR timeout\n"
                  : (handler_ ? handler_(request) : std::string());
    write_all_fd(fd, response.data(), response.size());
    ::shutdown(fd, SHUT_WR);
    ::close(fd);
  }
}

bool endpoint_request(const std::string& socket_path,
                      const std::string& request, std::string* response,
                      std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(socket_path, &addr, error)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr)
      *error = "cannot connect to " + socket_path + ": " +
               std::strerror(errno);
    ::close(fd);
    return false;
  }
  std::string line = request;
  if (line.empty() || line.back() != '\n') line.push_back('\n');
  write_all_fd(fd, line.data(), line.size());
  ::shutdown(fd, SHUT_WR);
  response->clear();
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    response->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return true;
}

bool endpoint_request_retry(const std::string& socket_path,
                            const std::string& request, u32 max_attempts,
                            u64 backoff_initial_ns, u64 backoff_max_ns,
                            std::string* response, std::string* error) {
  u64 backoff = backoff_initial_ns;
  std::string err;
  for (u32 attempt = 0;; ++attempt) {
    if (endpoint_request(socket_path, request, response, &err)) return true;
    // Only the daemon-still-starting failures are retryable; anything
    // else (path too long, read error) fails immediately.
    const bool retryable =
        err.find("cannot connect") != std::string::npos;
    if (!retryable || attempt + 1 >= max_attempts) {
      if (error != nullptr) *error = err;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    backoff = std::min(backoff * 2, backoff_max_ns);
  }
}

}  // namespace gg::serve
