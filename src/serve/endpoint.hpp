// AF_UNIX line-protocol endpoint for ggserved.
//
// Transport only: one request line per connection, the handler's response
// bytes written back, connection closed. The protocol lives in
// Server::query(); ggstat --connect is the matching client. Deliberately
// minimal — the resilience story of this PR is in the ingestion path, not
// the wire format.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/types.hpp"

namespace gg::serve {

class Endpoint {
 public:
  using Handler = std::function<std::string(const std::string&)>;

  /// `read_deadline_ns`: a connection that has not produced a full request
  /// line within this long is answered with "ERR timeout" and closed
  /// (slowloris guard — a stalled client must not hold a handler).
  Endpoint(std::string socket_path, Handler handler,
           u64 read_deadline_ns = 5'000'000'000);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Binds + listens + starts the accept thread. False with *error set on
  /// failure (stale sockets at the path are unlinked first).
  bool start(std::string* error);
  void stop();

  const std::string& path() const { return path_; }

 private:
  void accept_loop();

  std::string path_;
  Handler handler_;
  u64 read_deadline_ns_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

/// Client half (ggstat --connect): sends one request line, returns the
/// whole response. False with *error set on connect/IO failure.
bool endpoint_request(const std::string& socket_path,
                      const std::string& request, std::string* response,
                      std::string* error);

/// endpoint_request with capped exponential backoff on connection failure
/// (ECONNREFUSED / ENOENT): lets scripts launch daemon + client without
/// racing the socket's appearance. Non-connect errors fail immediately.
bool endpoint_request_retry(const std::string& socket_path,
                            const std::string& request, u32 max_attempts,
                            u64 backoff_initial_ns, u64 backoff_max_ns,
                            std::string* response, std::string* error);

}  // namespace gg::serve
