#include "serve/server.hpp"

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/endpoint.hpp"

namespace gg::serve {

namespace {

bool has_spool_suffix(const std::string& name) {
  static constexpr const char kSuffix[] = ".ggspool";
  static constexpr size_t kSuffixLen = sizeof kSuffix - 1;
  return name.size() > kSuffixLen &&
         name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
}

std::string first_word(const std::string& line, std::string* rest) {
  size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    rest->clear();
    return line;
  }
  std::string word = line.substr(0, sp);
  while (sp < line.size() && line[sp] == ' ') ++sp;
  *rest = line.substr(sp);
  while (!rest->empty() && rest->back() == ' ') rest->pop_back();
  return word;
}

}  // namespace

Server::Server(const ServerOptions& opts)
    : opts_(opts),
      admission_(opts.admission, opts.telemetry),
      ingest_(opts.ingest, opts.telemetry) {
  if (opts_.telemetry != nullptr) {
    m_ticks_ = opts_.telemetry->counter("serve.ticks");
    m_frames_ = opts_.telemetry->counter("serve.frames_applied");
    m_attached_ = opts_.telemetry->counter("serve.sessions_attached");
    m_stalls_ = opts_.telemetry->counter("serve.watchdog_stalls");
  }
}

Server::~Server() {
  stop();
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  if (ingest_listener_) ingest_listener_->stop();
  if (endpoint_) endpoint_->stop();
}

u64 Server::now_ns() const {
  return opts_.clock ? opts_.clock() : obs::mono_ns();
}

bool Server::attach(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(path) != 0) return false;
  sessions_.emplace(path, std::make_unique<Session>(next_id_++, path,
                                                    opts_.session));
  ever_attached_ = true;
  if (m_attached_ != nullptr) m_attached_->add();
  return true;
}

void Server::scan_dir_locked(u64 now) {
  if (opts_.dir.empty() || now < next_scan_ns_) return;
  next_scan_ns_ = now + opts_.scan_interval_ns;
  DIR* dir = ::opendir(opts_.dir.c_str());
  if (dir == nullptr) return;
  while (dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (!has_spool_suffix(name)) continue;
    const std::string path = opts_.dir + "/" + name;
    if (sessions_.count(path) != 0) continue;
    sessions_.emplace(path, std::make_unique<Session>(next_id_++, path,
                                                      opts_.session));
    ever_attached_ = true;
    if (m_attached_ != nullptr) m_attached_->add();
  }
  ::closedir(dir);
}

void Server::tick() {
  // Ingest supervision runs before the session lock: the sweep takes the
  // registry's own locks and may finalize abandoned wire streams.
  const u64 tick_now = now_ns();
  ingest_.sweep(tick_now);
  const u64 ingest_resident = ingest_.resident_bytes();
  const size_t ingest_streams = ingest_.stream_count();

  std::lock_guard<std::mutex> lock(mu_);
  const u64 now = now_ns();
  scan_dir_locked(now);

  size_t frames = 0;
  u64 resident = ingest_resident;
  for (auto& [path, session] : sessions_) {
    frames += session->tick(now);
    resident += session->resident_bytes();
  }
  admission_.update(resident, sessions_.size() + ingest_streams);
  apply_backpressure_locked(now);
  evict_sweep_locked(now);

  heartbeat_.fetch_add(1, std::memory_order_release);
  if (m_ticks_ != nullptr) m_ticks_->add();
  if (m_frames_ != nullptr && frames > 0)
    m_frames_->add(static_cast<u64>(frames));
}

void Server::apply_backpressure_locked(u64 now) {
  if (!admission_.should_pause_tailers()) {
    // Pressure relieved: resume everything we paused.
    for (auto& [path, session] : sessions_) {
      if (session->paused() && !session->finalized()) {
        session->resume(now);
        admission_.note_resumed();
      }
    }
    return;
  }
  // Pause live sessions lowest-priority first (ties: biggest footprint
  // first), but always keep at least one tailer live so ingestion as a
  // whole cannot deadlock against the budget.
  std::vector<Session*> live;
  for (auto& [path, session] : sessions_) {
    if (!session->finalized() && !session->paused())
      live.push_back(session.get());
  }
  if (live.size() <= 1) return;
  std::sort(live.begin(), live.end(), [](const Session* a, const Session* b) {
    if (a->priority() != b->priority()) return a->priority() < b->priority();
    return a->resident_bytes() > b->resident_bytes();
  });
  for (size_t i = 0; i + 1 < live.size(); ++i) {
    live[i]->pause(now);
    admission_.note_paused();
  }
}

void Server::evict_sweep_locked(u64 now) {
  // Pass 1: finalized sessions nobody queried for evict_after_ns.
  std::vector<std::string> expired;
  for (auto& [path, session] : sessions_) {
    if (!session->finalized()) continue;
    const u64 idle_since =
        std::max(session->last_activity_ns(), session->last_query_ns());
    if (now - idle_since >= opts_.session.evict_after_ns)
      expired.push_back(path);
  }
  for (const auto& path : expired) evict_locked(path);

  // Pass 2: still over budget → evict finalized sessions LRU until under.
  while (admission_.over_budget()) {
    Session* victim = nullptr;
    for (auto& [path, session] : sessions_) {
      if (!session->finalized()) continue;
      if (victim == nullptr ||
          std::max(session->last_activity_ns(), session->last_query_ns()) <
              std::max(victim->last_activity_ns(), victim->last_query_ns()))
        victim = session.get();
    }
    if (victim == nullptr) break;  // nothing evictable; tailers pause instead
    evict_locked(victim->path());
  }
}

void Server::evict_locked(const std::string& path) {
  auto it = sessions_.find(path);
  if (it == sessions_.end()) return;
  u64 resident = admission_.resident_bytes();
  const u64 freed = it->second->resident_bytes();
  sessions_.erase(it);
  admission_.note_evicted();
  admission_.update(resident > freed ? resident - freed : 0,
                    sessions_.size());
}

Session* Server::find_locked(const std::string& key) {
  auto it = sessions_.find(key);
  if (it != sessions_.end()) return it->second.get();
  // Fall back to the numeric session id, then to a unique basename match —
  // SESSIONS prints absolute paths, but a human queries "w1.ggspool".
  for (auto& [path, session] : sessions_) {
    if (std::to_string(session->id()) == key) return session.get();
  }
  Session* by_name = nullptr;
  for (auto& [path, session] : sessions_) {
    const size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (base == key) {
      if (by_name != nullptr) return nullptr;  // ambiguous: require the path
      by_name = session.get();
    }
  }
  return by_name;
}

std::string Server::status_locked() const {
  std::ostringstream os;
  os << "ggserved sessions=" << sessions_.size()
     << " resident=" << admission_.resident_bytes() << "/"
     << admission_.budget_bytes()
     << " level=" << degrade_level_name(admission_.level())
     << " ticks=" << heartbeat_.load(std::memory_order_relaxed)
     << " shed=" << admission_.queries_shed()
     << " paused=" << admission_.tailers_paused()
     << " evicted=" << admission_.sessions_evicted()
     << " stalls=" << watchdog_stalls_.load(std::memory_order_relaxed)
     << " ingest_streams=" << ingest_.stream_count()
     << " ingest_open=" << ingest_.open_count()
     << "\n";
  return os.str();
}

std::string Server::query(const std::string& request) {
  std::string rest;
  const std::string cmd = first_word(request, &rest);
  const u64 now = now_ns();

  if (cmd == "PING") return "PONG\n";
  if (cmd == "SHUTDOWN") {
    stop();
    return "OK shutting down\n";
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (cmd == "STATUS") return status_locked();
  if (cmd == "SESSIONS") {
    std::string out;
    for (const auto& [path, session] : sessions_)
      out += session->status_line() + "\n";
    ingest_.for_each([&out](const IngestStream& s) {
      out += s.status_line() + "\n";
    });
    if (out.empty()) out = "no sessions\n";
    return out;
  }
  if (cmd == "SUMMARY") {
    Session* s = find_locked(rest);
    if (s == nullptr) {
      // Wire-fed streams answer the same query surface as tailed files.
      if (auto ws = ingest_.find_by_key(rest)) {
        ws->touch_query(now);
        const spool::RecoverReport* rep = ws->report();
        if (rep == nullptr) return "no data yet\n";
        return rep->summary() + "\n";
      }
      return "ERR no such session: " + rest + "\n";
    }
    s->touch_query(now);
    const spool::RecoverReport* rep = s->report();
    if (rep == nullptr) return "no data yet\n";
    return rep->summary() + "\n";
  }
  if (cmd == "REPORT") {
    Session* s = find_locked(rest);
    std::shared_ptr<IngestStream> ws;
    if (s == nullptr) {
      ws = ingest_.find_by_key(rest);
      if (!ws) return "ERR no such session: " + rest + "\n";
      ws->touch_query(now);
    } else {
      s->touch_query(now);
    }
    if (!admission_.admit_heavy_query()) {
      return "SHED report refused under memory pressure (level=" +
             std::string(degrade_level_name(admission_.level())) +
             ", resident=" + std::to_string(admission_.resident_bytes()) +
             "/" + std::to_string(admission_.budget_bytes()) +
             "); retry later or use SUMMARY\n";
    }
    std::string text = s != nullptr ? s->report_text() : ws->report_text();
    if (text.empty()) return "ERR session not usable\n";
    return text;
  }
  if (cmd == "TELEMETRY") {
    if (opts_.telemetry == nullptr) return "no telemetry\n";
    const obs::MetricsSnapshot snap = opts_.telemetry->snapshot();
    if (rest == "PROM") return obs::render_prometheus(snap);
    if (rest == "JSON") return obs::render_json(snap);
    std::ostringstream os;
    obs::render_text(os, snap);
    return os.str();
  }
  if (cmd == "ATTACH") {
    if (rest.empty()) return "ERR ATTACH <path>\n";
    if (sessions_.count(rest) != 0) return "OK already attached\n";
    sessions_.emplace(rest, std::make_unique<Session>(next_id_++, rest,
                                                      opts_.session));
    ever_attached_ = true;
    if (m_attached_ != nullptr) m_attached_->add();
    return "OK attached " + rest + "\n";
  }
  if (cmd == "EVICT") {
    Session* s = find_locked(rest);
    if (s == nullptr) return "ERR no such session: " + rest + "\n";
    const std::string path = s->path();
    s->finalize(now);
    evict_locked(path);
    return "OK evicted " + path + "\n";
  }
  return "ERR unknown command: " + cmd + "\n";
}

size_t Server::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

u64 Server::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& [path, session] : sessions_)
    total += session->resident_bytes();
  return total;
}

bool Server::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ever_attached_) return false;
  for (const auto& [path, session] : sessions_) {
    if (!session->finalized()) return false;
  }
  return true;
}

void Server::for_each_session(
    const std::function<void(const Session&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, session] : sessions_) fn(*session);
}

std::string Server::diagnosis() const {
  // try_lock: the watchdog calls this precisely when the ingest loop may
  // be wedged holding mu_ — a diagnosis that deadlocks is no diagnosis.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  std::ostringstream os;
  os << "=== ggserved stall diagnosis ===\n";
  os << "heartbeat=" << heartbeat_.load(std::memory_order_relaxed)
     << " stalls=" << watchdog_stalls_.load(std::memory_order_relaxed)
     << " stopping=" << (stopping() ? 1 : 0) << "\n";
  if (!lock.owns_lock()) {
    os << "session table locked (ingest loop holds the mutex); "
          "per-session state unavailable\n";
    return os.str();
  }
  os << "sessions=" << sessions_.size()
     << " resident=" << admission_.resident_bytes() << "/"
     << admission_.budget_bytes()
     << " level=" << degrade_level_name(admission_.level())
     << " ingest_streams=" << ingest_.stream_count()
     << " ingest_open=" << ingest_.open_count() << "\n";
  for (const auto& [path, session] : sessions_)
    os << "  " << session->status_line() << "\n";
  ingest_.for_each([&os](const IngestStream& s) {
    os << "  " << s.status_line() << "\n";
  });
  return os.str();
}

void Server::watchdog_main() {
  // The watchdog observes real time regardless of an injected test clock:
  // a wedged ingest loop cannot advance a fake clock, and the whole point
  // is catching the loop when it stops making progress.
  u64 last_beat = heartbeat_.load(std::memory_order_acquire);
  u64 last_change_ns = obs::mono_ns();
  bool stalled = false;
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(opts_.watchdog_poll_ns));
    const u64 beat = heartbeat_.load(std::memory_order_acquire);
    const u64 now = obs::mono_ns();
    if (beat != last_beat) {
      last_beat = beat;
      last_change_ns = now;
      stalled = false;
      continue;
    }
    if (stalled || now - last_change_ns < opts_.watchdog_stall_ns) continue;
    stalled = true;  // rearm only after the next heartbeat
    watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
    if (m_stalls_ != nullptr) m_stalls_->add();
    const std::string report = diagnosis();
    std::fwrite(report.data(), 1, report.size(), stderr);
    std::fflush(stderr);
    if (opts_.on_stall) opts_.on_stall(report);
  }
}

void Server::finalize_all() {
  ingest_.finalize_all(now_ns());
  std::lock_guard<std::mutex> lock(mu_);
  const u64 now = now_ns();
  u64 resident = ingest_.resident_bytes();
  for (auto& [path, session] : sessions_) {
    session->finalize(now);
    resident += session->resident_bytes();
  }
  admission_.update(resident, sessions_.size() + ingest_.stream_count());
}

int Server::run() {
  watchdog_stop_.store(false, std::memory_order_release);
  watchdog_ = std::thread([this] { watchdog_main(); });

  if (!opts_.socket_path.empty()) {
    endpoint_ = std::make_unique<Endpoint>(
        opts_.socket_path,
        [this](const std::string& req) { return query(req); },
        opts_.query_read_deadline_ns);
    std::string err;
    if (!endpoint_->start(&err)) {
      std::fprintf(stderr, "ggserved: endpoint failed: %s\n", err.c_str());
      endpoint_.reset();
      watchdog_stop_.store(true, std::memory_order_release);
      watchdog_.join();
      return 1;
    }
  }

  if (!opts_.ingest_socket_path.empty()) {
    // New streams' OFFERs are shed as soon as admission starts degrading —
    // before any tailer pauses; streams already carrying data always get
    // through (admission never abandons an accepted session).
    ingest_listener_ = std::make_unique<IngestListener>(
        opts_.ingest_socket_path, &ingest_,
        [this] { return admission_.level() == DegradeLevel::Normal; },
        [this] { return now_ns(); });
    std::string err;
    if (!ingest_listener_->start(&err)) {
      std::fprintf(stderr, "ggserved: ingest listener failed: %s\n",
                   err.c_str());
      ingest_listener_.reset();
      if (endpoint_) {
        endpoint_->stop();
        endpoint_.reset();
      }
      watchdog_stop_.store(true, std::memory_order_release);
      watchdog_.join();
      return 1;
    }
  }

  while (!stopping()) {
    tick();
    if (opts_.exit_when_idle && idle()) break;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(opts_.tick_sleep_ns));
  }

  if (ingest_listener_) {
    ingest_listener_->stop();
    ingest_listener_.reset();
  }
  finalize_all();
  if (endpoint_) {
    endpoint_->stop();
    endpoint_.reset();
  }
  watchdog_stop_.store(true, std::memory_order_release);
  watchdog_.join();
  return 0;
}

}  // namespace gg::serve
