#include "serve/admission.hpp"

#include "obs/metrics.hpp"

namespace gg::serve {

const char* degrade_level_name(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::Normal: return "normal";
    case DegradeLevel::SheddingQueries: return "shedding-queries";
    case DegradeLevel::PausingTailers: return "pausing-tailers";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionOptions& opts,
                                         obs::Registry* registry)
    : opts_(opts) {
  if (registry != nullptr) {
    m_shed_ = registry->counter("serve.queries_shed");
    m_paused_ = registry->counter("serve.tailers_paused");
    m_resumed_ = registry->counter("serve.tailers_resumed");
    m_evicted_ = registry->counter("serve.sessions_evicted");
    g_resident_ = registry->gauge("serve.resident_bytes");
    g_budget_ = registry->gauge("serve.budget_bytes");
    g_level_ = registry->gauge("serve.degrade_level");
    g_sessions_ = registry->gauge("serve.sessions");
    g_budget_->set(static_cast<double>(opts_.budget_bytes));
  }
}

void AdmissionController::update(u64 resident_bytes, size_t sessions) {
  resident_bytes_ = resident_bytes;
  const double usage = opts_.budget_bytes == 0
                           ? 1.0
                           : static_cast<double>(resident_bytes) /
                                 static_cast<double>(opts_.budget_bytes);
  if (usage >= opts_.pause_fraction) {
    level_ = DegradeLevel::PausingTailers;
  } else if (usage >= opts_.shed_fraction) {
    level_ = DegradeLevel::SheddingQueries;
  } else {
    level_ = DegradeLevel::Normal;
  }
  if (g_resident_ != nullptr) {
    g_resident_->set(static_cast<double>(resident_bytes));
    g_level_->set(static_cast<double>(static_cast<u8>(level_)));
    g_sessions_->set(static_cast<double>(sessions));
  }
}

bool AdmissionController::admit_heavy_query() {
  if (level_ == DegradeLevel::Normal) return true;
  ++queries_shed_;
  if (m_shed_ != nullptr) m_shed_->add();
  return false;
}

void AdmissionController::note_paused() {
  ++tailers_paused_;
  if (m_paused_ != nullptr) m_paused_->add();
}

void AdmissionController::note_resumed() {
  if (m_resumed_ != nullptr) m_resumed_->add();
}

void AdmissionController::note_evicted() {
  ++sessions_evicted_;
  if (m_evicted_ != nullptr) m_evicted_->add();
}

}  // namespace gg::serve
