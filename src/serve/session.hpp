// Per-client session lifecycle over one tailed spool.
//
// A session wraps one SpoolTailer and owns the stream's life: attach when
// the file appears, tail while the writer lives, seal on a clean footer,
// hand a crashed stream (crash footer, or footer-less staleness) to the
// recovery path automatically, and expose the finalized trace to queries.
//
//   Tailing ──clean footer──────▶ Sealed
//      │  └───crash footer──────▶ Crashed        (recovery hand-off)
//      │  └───no growth for stale_after_ns──▶ Stale  (footer-less loss)
//      │  └───unrecoverable stream──────────▶ Failed
//      └───(admission pressure)⇄ paused flag, orthogonal to the states
//
// Sealed/Crashed/Stale all run the same finalize path: tailer.finalize()
// (batch-identical tail mapping + provenance), then the salvage pass when
// the stream was degraded — exactly the `gganalyze --recover` pipeline, so
// a session's post-recovery metrics are byte-identical to a batch run over
// the same spool. Idle finalized sessions are evicted by the server after
// evict_after_ns to bound resident memory.
#pragma once

#include <string>

#include "serve/tailer.hpp"
#include "trace/trace.hpp"

namespace gg::serve {

enum class SessionState : u8 {
  Tailing,  ///< live: polling the spool
  Sealed,   ///< clean footer: finalized, queryable
  Crashed,  ///< crash footer: recovered + salvaged, queryable
  Stale,    ///< footer-less writer death (staleness): recovered + salvaged
  Failed,   ///< nothing recoverable (bad magic / empty stream)
};

const char* session_state_name(SessionState s);

struct SessionOptions {
  TailerOptions tailer;
  /// No file growth and no footer for this long → the writer is presumed
  /// dead; the session finalizes as a footer-less crash.
  u64 stale_after_ns = 10'000'000'000;
  /// A finalized session idle (no queries) this long is eligible for
  /// eviction by the server's admission sweep.
  u64 evict_after_ns = 60'000'000'000;
  /// Lower priority is paused first under admission pressure.
  int priority = 0;
};

class Session {
 public:
  Session(u64 id, std::string path, const SessionOptions& opts);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// One supervision round: poll the tailer (unless paused), run the
  /// lifecycle transitions. Returns frames applied.
  size_t tick(u64 now_ns);

  /// Admission backpressure: a paused session stops reading (its writer
  /// keeps appending to the file — nothing is lost, ingestion just lags).
  void pause(u64 now_ns);
  void resume(u64 now_ns);
  bool paused() const { return paused_; }

  /// Forces the end-of-life transition now (server shutdown / eviction of
  /// a still-tailing session). Safe to call repeatedly.
  void finalize(u64 now_ns);

  u64 id() const { return id_; }
  const std::string& path() const { return path_; }
  SessionState state() const { return state_; }
  bool finalized() const { return finalized_; }
  /// Usable after finalize: false means nothing recoverable (Failed).
  bool usable() const { return usable_; }
  int priority() const { return opts_.priority; }
  u64 last_activity_ns() const { return last_activity_ns_; }
  u64 last_query_ns() const { return last_query_ns_; }
  void touch_query(u64 now_ns) { last_query_ns_ = now_ns; }

  u64 resident_bytes() const;
  const SpoolTailer& tailer() const { return tailer_; }

  /// The recovery report: the tailer's accumulating one while live, the
  /// frozen copy after finalize. Null only before the header parsed.
  const spool::RecoverReport* report() const;

  /// The finalized (salvaged, validated) trace; null until finalize and
  /// for Failed sessions.
  const Trace* trace() const { return usable_ ? &trace_ : nullptr; }

  /// Cheap query: one status line (id, state, frames, epochs, resident).
  std::string status_line() const;

  /// Heavy query: the full analysis report over the session's trace. While
  /// still tailing this snapshots (copies) the accumulating trace, repairs
  /// region bounds and salvages the copy — the live view converges on the
  /// finalized one. Empty on Failed sessions.
  std::string report_text() const;

 private:
  void run_finalize(u64 now_ns, SessionState end_state);

  u64 id_ = 0;
  std::string path_;
  SessionOptions opts_;
  SpoolTailer tailer_;
  SessionState state_ = SessionState::Tailing;
  Trace trace_;                 ///< valid once finalized_ && usable_
  spool::RecoverReport report_; ///< frozen at finalize
  u64 last_activity_ns_ = 0;
  u64 last_query_ns_ = 0;
  bool paused_ = false;
  bool finalized_ = false;
  bool usable_ = false;
};

/// The `gganalyze --recover` degradation rule: a recovered stream needs the
/// salvage pass when anything was lost or repaired. Shared with tools so
/// live and batch ingestion stay in lockstep.
bool recovery_degraded(const spool::RecoverReport& rep);

/// The analysis half of the query path: topology from the trace's own
/// metadata (generic4 fallback), full analyze(), textual report. Byte-for-
/// byte what `gganalyze` prints for the same trace.
std::string analysis_report_text(const Trace& trace);

}  // namespace gg::serve
