// GGWIRE1: the checksummed, length-prefixed wire protocol that streams
// GGSPOOL1 frames into ggserved over a socket — the network twin of the
// filesystem tailer.
//
// Stream layout (all integers little-endian):
//   frame: "GGW1" | u8 type | u32 seq | u64 payload_len | u64 checksum |
//          payload
// The checksum is FNV-1a 64 over (type, seq, payload) — the same function
// GGSPOOL1 frames use, so one hardened verifier covers both layers.
//
// Frame types and payloads:
//   'H' HELLO  client→server  u32 proto | u64 token_hi | u64 token_lo |
//                             u64 resume_seq | name bytes
//              Identity + resume point. A client that reconnects sends the
//              same token; resume_seq is the highest wire seq it knows was
//              acked (0 on a fresh session).
//   'O' OFFER  client→server  u32 num_workers
//              Describes the spool stream about to flow (the GGSPOOL1
//              header's worker count). Subject to admission: an overloaded
//              server refuses the OFFER with ACK(status=shed) before it
//              ever pauses filesystem tailers.
//   'A' ACK    server→client  u8 status | u64 acked_seq | message bytes
//              status: 0 ok, 1 shed (overload, retry later), 2 protocol
//              error (close), 3 session error. acked_seq is the highest
//              wire seq durably applied to the session's trace — everything
//              at or below it survives a crash of either side.
//   'E' EPOCH  client→server  u64 spool_offset | raw GGSPOOL1 frame bytes
//              One complete spool frame (any inner type: M/S/E/D/C/F/T)
//              plus the byte offset it occupies in the source stream, so
//              the server's recovery diagnostics are byte-identical to a
//              batch `gganalyze --recover` over the same spool.
//   'S' SEAL   client→server  u8 end_kind | u64 end_offset | u64 end_len
//              End of stream. end_kind mirrors what a tailer would find at
//              the source's EOF: 0 clean end, 1 torn header, 2 garbled
//              magic, 3 overrun/torn payload — so a damaged source spool
//              finalizes with batch-identical tail diagnostics.
//   'B' BYE    either         (empty) polite close.
//
// Decode is strict and bounds-checked: implausible lengths are rejected
// before any allocation sized from them (the count-vs-bytes hardening from
// the spool decoder), unknown types and checksum failures poison the
// connection (ACK status=2, close) — never the session, which survives for
// resume.
#pragma once

#include <string>
#include <string_view>

#include "trace/spool.hpp"

namespace gg::serve::wire {

inline constexpr char kMagic[4] = {'G', 'G', 'W', '1'};
inline constexpr size_t kHeaderBytes = 4 + 1 + 4 + 8 + 8;
inline constexpr u32 kProtoVersion = 1;
/// Frames larger than this are rejected at the header (one spool epoch is
/// ~64 KiB; 64 MiB leaves room for giant string deltas without letting a
/// hostile length field size an allocation).
inline constexpr u64 kMaxPayload = 64ull << 20;
/// HELLO name length cap (names land in session tables and logs).
inline constexpr size_t kMaxNameBytes = 256;

enum class Type : u8 {
  Hello = 'H',
  Offer = 'O',
  Ack = 'A',
  Epoch = 'E',
  Seal = 'S',
  Bye = 'B',
};

enum class Status : u8 {
  Ok = 0,
  Shed = 1,       ///< overload: the OFFER was refused, retry later
  BadProto = 2,   ///< malformed/hostile frame: connection poisoned
  SessionErr = 3, ///< the stream itself failed (cap exceeded, not a spool)
};

/// How the source stream ended (SEAL payload); mirrors the tailer's
/// end-of-stream Stuck mapping so note_* diagnostics match batch recovery.
enum class EndKind : u8 {
  Clean = 0,
  TornHeader = 1,
  Garbled = 2,
  Overrun = 3,
};

/// 128-bit client-generated session identity. Zero means "no token".
struct Token {
  u64 hi = 0;
  u64 lo = 0;
  bool zero() const { return hi == 0 && lo == 0; }
  bool operator==(const Token& o) const { return hi == o.hi && lo == o.lo; }
  bool operator<(const Token& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
  std::string hex() const;
};

/// One decoded frame header (payload referenced, not copied).
struct Frame {
  Type type = Type::Bye;
  u32 seq = 0;
  std::string_view payload;
};

u64 checksum(Type type, u32 seq, const void* payload, size_t len) noexcept;

/// Encodes one complete frame (header + payload).
std::string encode(Type type, u32 seq, std::string_view payload);

// Typed payload builders (the encode side of the grammar above).
std::string encode_hello(const Token& token, u64 resume_seq,
                         std::string_view name);
std::string encode_offer(u32 num_workers, u32 seq);
std::string encode_ack(Status status, u64 acked_seq, std::string_view message);
std::string encode_epoch(u32 seq, u64 spool_offset,
                         std::string_view spool_frame);
std::string encode_seal(u32 seq, EndKind end, u64 end_offset, u64 end_len);
std::string encode_bye(u32 seq);

// Typed payload decoders. All strict: false on any short/overlong/
// malformed payload, with *error naming the field.
struct HelloMsg {
  u32 proto = 0;
  Token token;
  u64 resume_seq = 0;
  std::string name;
};
bool decode_hello(std::string_view payload, HelloMsg* out, std::string* error);

struct OfferMsg {
  u32 num_workers = 0;
};
bool decode_offer(std::string_view payload, OfferMsg* out, std::string* error);

struct AckMsg {
  Status status = Status::Ok;
  u64 acked_seq = 0;
  std::string message;
};
bool decode_ack(std::string_view payload, AckMsg* out, std::string* error);

struct EpochMsg {
  u64 spool_offset = 0;
  std::string_view spool_frame;  ///< points into the wire payload
};
bool decode_epoch(std::string_view payload, EpochMsg* out, std::string* error);

struct SealMsg {
  EndKind end = EndKind::Clean;
  u64 end_offset = 0;
  u64 end_len = 0;
};
bool decode_seal(std::string_view payload, SealMsg* out, std::string* error);

/// Incremental frame decoder over a reassembly buffer. feed() appends raw
/// socket bytes; next() yields complete, checksum-verified frames one at a
/// time. Hostile input (bad magic, implausible length, checksum mismatch)
/// flips the decoder into a poisoned state that never recovers — the
/// transport owns tearing the connection down; the session state survives
/// for resume.
class Decoder {
 public:
  enum class Result : u8 {
    Frame,   ///< *out holds the next verified frame
    Need,    ///< incomplete: feed more bytes
    Poison,  ///< unrecoverable stream damage; see error()
  };

  void feed(std::string_view bytes);
  /// The returned frame's payload view is valid until the next feed()/next().
  Result next(Frame* out);

  const std::string& error() const { return error_; }
  bool poisoned() const { return poisoned_; }
  /// Bytes buffered but not yet consumed (the transport's slack charge).
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  size_t consumed_ = 0;
  std::string error_;
  bool poisoned_ = false;
};

}  // namespace gg::serve::wire
