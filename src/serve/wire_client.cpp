#include "serve/wire_client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/prng.hpp"
#include "obs/span.hpp"

namespace gg::serve {

namespace {

u32 le32_at(const char* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

u64 le64_at(const char* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<u64>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

constexpr u64 kMaxSpoolPayload = 1ull << 30;
constexpr size_t kSpoolHeaderBytes = 9 + 4;  // magic + num_workers

bool raw_send_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

WireClient::WireClient(const WireClientOptions& opts) : opts_(opts) {
  u64 seed = opts_.seed;
  if (seed == 0) {
    // Production path: a unique, non-reproducible token per client.
    seed = mix64(static_cast<u64>(::getpid())) ^ obs::mono_ns();
  }
  SplitMix64 sm(seed);
  token_.hi = sm.next();
  token_.lo = sm.next();
  if (token_.zero()) token_.lo = 1;
  jitter_state_ = sm.next();
}

WireClient::~WireClient() { close_fd(); }

void WireClient::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  hello_done_ = false;
  offer_done_ = false;
  ack_decoder_ = wire::Decoder{};
}

void WireClient::backoff_sleep(u32 attempt) {
  u64 ns = opts_.backoff_initial_ns;
  for (u32 i = 0; i < attempt && ns < opts_.backoff_max_ns; ++i) ns *= 2;
  ns = std::min(ns, opts_.backoff_max_ns);
  // Half fixed, half jitter: a fleet of clients retrying a restarting
  // daemon must not arrive in lockstep.
  SplitMix64 sm(jitter_state_);
  jitter_state_ = sm.next();
  const u64 sleep_ns = ns / 2 + (jitter_state_ % (ns / 2 + 1));
  std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
}

bool WireClient::send_bytes(const std::string& bytes, u32 seq,
                            bool is_epoch) {
  if (fd_ < 0) return false;
  const fault::WireFaultPlan* plan = opts_.fault;
  const bool match = plan != nullptr && plan->enabled() && is_epoch &&
                     faults_injected_ < plan->repeat &&
                     (plan->target_seq == 0 || seq == plan->target_seq);
  if (!match) return raw_send_all(fd_, bytes.data(), bytes.size());

  SplitMix64 rng(plan->seed + faults_injected_);
  ++faults_injected_;
  switch (plan->kind) {
    case fault::WireFaultPlan::Kind::None:
      return raw_send_all(fd_, bytes.data(), bytes.size());
    case fault::WireFaultPlan::Kind::ResetAtFrame:
      // The connection dies before the frame leaves; the frame stays in
      // the unacked window and rides the next retransmit.
      close_fd();
      return false;
    case fault::WireFaultPlan::Kind::ResetMidFrame: {
      const size_t keep = 1 + rng.next() % (bytes.size() - 1);
      raw_send_all(fd_, bytes.data(), keep);
      close_fd();
      return false;
    }
    case fault::WireFaultPlan::Kind::PartialWrite: {
      size_t off = 0;
      while (off < bytes.size()) {
        const size_t slice =
            std::min<size_t>(1 + rng.next() % 7, bytes.size() - off);
        if (!raw_send_all(fd_, bytes.data() + off, slice)) return false;
        off += slice;
      }
      return true;
    }
    case fault::WireFaultPlan::Kind::DuplicateFrame:
      return raw_send_all(fd_, bytes.data(), bytes.size()) &&
             raw_send_all(fd_, bytes.data(), bytes.size());
    case fault::WireFaultPlan::Kind::BitFlip: {
      std::string damaged = bytes;
      const size_t byte = rng.next() % damaged.size();
      damaged[byte] = static_cast<char>(
          static_cast<u8>(damaged[byte]) ^ (1u << (rng.next() % 8)));
      return raw_send_all(fd_, damaged.data(), damaged.size());
    }
    case fault::WireFaultPlan::Kind::Slowloris: {
      const size_t keep = 1 + rng.next() % (bytes.size() - 1);
      if (!raw_send_all(fd_, bytes.data(), keep)) return false;
      const u64 stall =
          plan->stall_ns != 0 ? plan->stall_ns : 200'000'000ull;
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
      return raw_send_all(fd_, bytes.data() + keep, bytes.size() - keep);
    }
    case fault::WireFaultPlan::Kind::GarbagePreamble: {
      std::string garbage(plan->garbage_bytes, '\0');
      for (char& c : garbage) c = static_cast<char>(rng.next() & 0xff);
      if (!raw_send_all(fd_, garbage.data(), garbage.size())) return false;
      return raw_send_all(fd_, bytes.data(), bytes.size());
    }
  }
  return false;
}

bool WireClient::read_ack(wire::AckMsg* ack, u64 deadline_ns) {
  const u64 start = obs::mono_ns();
  char buf[16 * 1024];
  while (true) {
    wire::Frame f;
    switch (ack_decoder_.next(&f)) {
      case wire::Decoder::Result::Frame: {
        std::string err;
        if (f.type != wire::Type::Ack ||
            !wire::decode_ack(f.payload, ack, &err))
          return false;
        return true;
      }
      case wire::Decoder::Result::Poison:
        return false;
      case wire::Decoder::Result::Need:
        break;
    }
    const u64 elapsed = obs::mono_ns() - start;
    if (elapsed >= deadline_ns) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1,
        static_cast<int>(std::min<u64>((deadline_ns - elapsed) / 1'000'000,
                                       1000) |
                         1));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // server closed
    ack_decoder_.feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

bool WireClient::process_ack(const wire::AckMsg& ack, std::string* error) {
  switch (ack.status) {
    case wire::Status::Ok:
      if (ack.acked_seq > acked_) {
        acked_ = ack.acked_seq;
        while (!window_.empty() && window_.front().first <= acked_)
          window_.pop_front();
      }
      if (ack.message == "sealed") {
        sealed_ = true;
        pending_seal_.clear();
      }
      return true;
    case wire::Status::Shed:
    case wire::Status::BadProto:
      // Transient at this level: the wire was poisoned or the server is
      // loaded — the reconnect path owns both.
      return false;
    case wire::Status::SessionErr:
      if (ack.message == "read timeout" ||
          ack.message.find("wire buffer cap") != std::string::npos)
        return false;  // transport-level, resumable
      fatal_ = true;
      fatal_reason_ = "server session error: " + ack.message;
      if (error != nullptr) *error = fatal_reason_;
      return false;
  }
  return false;
}

bool WireClient::drain_acks_until(size_t max_window, bool need_sealed,
                                  std::string* error) {
  while (window_.size() > max_window || (need_sealed && !sealed_)) {
    wire::AckMsg ack;
    if (!read_ack(&ack, opts_.ack_deadline_ns)) return false;
    if (!process_ack(ack, error)) return false;
  }
  return true;
}

bool WireClient::ensure_session(std::string* error) {
  if (fatal_) {
    if (error != nullptr) *error = fatal_reason_;
    return false;
  }
  for (u32 attempt = 0; attempt <= opts_.max_attempts; ++attempt) {
    if (fd_ < 0) {
      if (attempt > 0) backoff_sleep(attempt - 1);
      sockaddr_un addr;
      if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr)
          *error = "socket path too long: " + opts_.socket_path;
        return false;
      }
      std::memset(&addr, 0, sizeof addr);
      addr.sun_family = AF_UNIX;
      std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
                  opts_.socket_path.size() + 1);
      const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd < 0) {
        if (error != nullptr) *error = std::strerror(errno);
        return false;
      }
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0) {
        // ECONNREFUSED/ENOENT while the daemon starts up: back off, retry.
        ::close(fd);
        if (error != nullptr)
          *error = "cannot connect to " + opts_.socket_path + ": " +
                   std::strerror(errno);
        continue;
      }
      fd_ = fd;
      ack_decoder_ = wire::Decoder{};
      // HELLO with our token + the highest seq we know was acked: the
      // server's reply is the authoritative resume point.
      const std::string hello =
          wire::encode_hello(token_, acked_, opts_.name);
      wire::AckMsg ack;
      if (!send_bytes(hello, 0, /*is_epoch=*/false) ||
          !read_ack(&ack, opts_.ack_deadline_ns)) {
        close_fd();
        continue;
      }
      if (ack.status != wire::Status::Ok) {
        close_fd();
        if (ack.status == wire::Status::SessionErr) {
          fatal_ = true;
          fatal_reason_ = "server refused session: " + ack.message;
          if (error != nullptr) *error = fatal_reason_;
          return false;
        }
        continue;  // Shed / BadProto: back off and retry
      }
      ++reconnects_;
      hello_done_ = true;
      if (ack.message == "sealed") {
        // The stream already finalized server-side (our final ACK was the
        // casualty): nothing left to retransmit.
        sealed_ = true;
        window_.clear();
        pending_seal_.clear();
      } else if (ack.acked_seq > acked_) {
        acked_ = ack.acked_seq;
        while (!window_.empty() && window_.front().first <= acked_)
          window_.pop_front();
      } else if (ack.acked_seq < acked_) {
        // The daemon restarted: its in-memory session state is gone and
        // our window no longer holds the acked prefix. Only a caller that
        // still has the source can repair this (push restarts itself).
        needs_restart_ = true;
        if (error != nullptr)
          *error = "server lost session state (restarted?); re-push "
                   "required";
        return false;
      }
    }
    if (begun_ && !offer_done_ && !sealed_) {
      const std::string offer = wire::encode_offer(num_workers_, 0);
      wire::AckMsg ack;
      if (!send_bytes(offer, 0, /*is_epoch=*/false) ||
          !read_ack(&ack, opts_.ack_deadline_ns)) {
        close_fd();
        continue;
      }
      if (ack.status != wire::Status::Ok) {
        close_fd();
        if (ack.status == wire::Status::SessionErr ||
            ack.status == wire::Status::BadProto) {
          fatal_ = true;
          fatal_reason_ = "server refused offer: " + ack.message;
          if (error != nullptr) *error = fatal_reason_;
          return false;
        }
        continue;  // Shed: overloaded, back off and retry
      }
      offer_done_ = true;
      // Retransmit the unacked window in order; the server dedupes any
      // overlap with what it already applied.
      bool sent = true;
      for (const auto& [seq, bytes] : window_) {
        if (!send_bytes(bytes, seq, /*is_epoch=*/true)) {
          sent = false;
          break;
        }
      }
      if (!sent) {
        close_fd();
        continue;
      }
    }
    return true;
  }
  if (error != nullptr && error->empty())
    *error = "connection attempts exhausted";
  return false;
}

bool WireClient::begin(u32 num_workers, std::string* error) {
  if (begun_ && num_workers != num_workers_) {
    if (error != nullptr) *error = "begin() with a different worker count";
    return false;
  }
  num_workers_ = num_workers;
  begun_ = true;
  return ensure_session(error);
}

bool WireClient::send_frame(std::string_view frame_bytes, u64 spool_offset,
                            std::string* error) {
  if (!begun_) {
    if (error != nullptr) *error = "send_frame before begin";
    return false;
  }
  // A resume can discover the stream already sealed server-side (our final
  // ACK was the crash casualty): every frame is durable, nothing to send.
  if (sealed_) {
    ++epochs_sent_;
    return true;
  }
  const u32 seq = next_seq_++;
  ++epochs_sent_;
  // Resume dedupe: a fresh client on an old token learns the server's
  // acked high-water from HELLO. Seqs at or below it are already durable
  // server-side — enqueueing them would fill the window with frames that
  // never ship and so never ack.
  if (seq <= acked_) return true;
  window_.emplace_back(seq,
                       wire::encode_epoch(seq, spool_offset, frame_bytes));
  for (u32 attempt = 0; attempt <= opts_.max_attempts; ++attempt) {
    if (!ensure_session(error)) return false;
    bool ok = true;
    // The frame may already have gone out with the window retransmit (and
    // may even be acked); an extra copy is deduped by seq.
    if (!window_.empty() && window_.back().first == seq && seq > acked_)
      ok = send_bytes(window_.back().second, seq, /*is_epoch=*/true);
    if (ok) ok = drain_acks_until(opts_.window - 1, false, error);
    if (ok) return true;
    if (fatal_ || needs_restart_) return false;
    close_fd();
    backoff_sleep(attempt);
  }
  if (error != nullptr) *error = "send retries exhausted";
  return false;
}

bool WireClient::seal(wire::EndKind end, u64 end_offset, u64 end_len,
                      std::string* error) {
  if (!begun_) {
    if (error != nullptr) *error = "seal before begin";
    return false;
  }
  if (sealed_) return true;
  pending_seal_ = wire::encode_seal(next_seq_, end, end_offset, end_len);
  for (u32 attempt = 0; attempt <= opts_.max_attempts; ++attempt) {
    if (!ensure_session(error)) return false;
    if (sealed_) return true;  // resume found the stream already sealed
    // Every epoch must be durable before the stream may end: drain the
    // window to empty, then SEAL and wait for the final ack.
    bool ok = drain_acks_until(0, false, error);
    if (ok) ok = send_bytes(pending_seal_, 0, /*is_epoch=*/false);
    if (ok) ok = drain_acks_until(0, true, error);
    if (ok && sealed_) return true;
    if (fatal_ || needs_restart_) return false;
    close_fd();
    backoff_sleep(attempt);
  }
  if (error != nullptr) *error = "seal retries exhausted";
  return false;
}

void WireClient::bye() {
  if (fd_ < 0) return;
  const std::string b = wire::encode_bye(0);
  raw_send_all(fd_, b.data(), b.size());
  close_fd();
}

void WireClient::reset_stream() {
  acked_ = 0;
  next_seq_ = 1;
  window_.clear();
  pending_seal_.clear();
  sealed_ = false;
  needs_restart_ = false;
  offer_done_ = false;
}

bool push_spool_stream(WireClient& client, std::string_view bytes,
                       std::string* error) {
  if (bytes.size() < kSpoolHeaderBytes ||
      !spool::looks_like_spool(bytes)) {
    if (error != nullptr) *error = "not a spool stream (bad magic)";
    return false;
  }
  const u32 nw = le32_at(bytes.data() + spool::kSpoolMagic.size());
  if (nw == 0 || nw > 4096) {
    if (error != nullptr)
      *error = "implausible worker count " + std::to_string(nw);
    return false;
  }
  if (!client.begin(nw, error)) return false;

  // Walk the stream exactly like the tailer's drain loop: intact frames
  // ship as EPOCHs; the first non-delimitable damage ends the walk and
  // becomes the SEAL's end kind, so the server stamps batch-identical
  // tail diagnostics.
  size_t cur = kSpoolHeaderBytes;
  wire::EndKind end = wire::EndKind::Clean;
  u64 end_offset = 0;
  u64 end_len = 0;
  while (cur < bytes.size()) {
    const size_t rem = bytes.size() - cur;
    if (rem < spool::kFrameHeaderBytes) {
      end = wire::EndKind::TornHeader;
      end_offset = cur;
      break;
    }
    const char* h = bytes.data() + cur;
    if (std::memcmp(h, spool::kFrameMagic, sizeof spool::kFrameMagic) != 0) {
      end = wire::EndKind::Garbled;
      end_offset = cur;
      break;
    }
    const auto type = static_cast<spool::FrameType>(static_cast<u8>(h[4]));
    const u64 payload_len = le64_at(h + 13);
    if (payload_len > kMaxSpoolPayload ||
        rem - spool::kFrameHeaderBytes < payload_len) {
      end = wire::EndKind::Overrun;
      end_offset = cur;
      end_len = payload_len;
      break;
    }
    const size_t frame_len =
        spool::kFrameHeaderBytes + static_cast<size_t>(payload_len);
    if (!client.send_frame(std::string_view(h, frame_len), cur, error))
      return false;
    cur += frame_len;
    if (type == spool::FrameType::CleanFooter ||
        type == spool::FrameType::CrashFooter) {
      // Batch recovery stops its scan at the footer; so do we.
      break;
    }
  }
  return client.seal(end, end_offset, end_len, error);
}

bool WireClient::push_bytes(std::string_view spool_bytes,
                            std::string* error) {
  // A daemon restart mid-push drops the server's in-memory prefix; we
  // still hold the source, so restart the push from scratch (bounded).
  for (int round = 0; round < 4; ++round) {
    std::string err;
    if (push_spool_stream(*this, spool_bytes, &err)) return true;
    if (needs_restart_) {
      reset_stream();
      continue;
    }
    if (error != nullptr) *error = err;
    return false;
  }
  if (error != nullptr) *error = "push restarted too many times";
  return false;
}

bool WireClient::push_file(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr)
      *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  std::string bytes;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      if (error != nullptr)
        *error = "cannot read " + path + ": " + std::strerror(errno);
      return false;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return push_bytes(bytes, error);
}

}  // namespace gg::serve
