#include "serve/tailer.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace gg::serve {

namespace {

u32 le32_at(const char* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

u64 le64_at(const char* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<u64>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

constexpr u64 kMaxPayload = 1ull << 30;
constexpr size_t kSpoolHeaderBytes = 9 + 4;  // magic + num_workers

}  // namespace

const char* tail_state_name(TailState s) {
  switch (s) {
    case TailState::Opening: return "opening";
    case TailState::Header: return "header";
    case TailState::Streaming: return "streaming";
    case TailState::Waiting: return "waiting";
    case TailState::Sealed: return "sealed";
    case TailState::Crashed: return "crashed";
    case TailState::Failed: return "failed";
  }
  return "?";
}

SpoolTailer::SpoolTailer(std::string path, TailerOptions opts)
    : path_(std::move(path)), opts_(opts) {}

SpoolTailer::~SpoolTailer() {
  if (fd_ >= 0) ::close(fd_);
}

u64 SpoolTailer::resident_bytes() const {
  return pending_.size() + (inc_ ? inc_->resident_bytes() : 0);
}

bool SpoolTailer::ensure_open() {
  if (fd_ >= 0) return true;
  fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  return fd_ >= 0;
}

void SpoolTailer::set_stuck(Stuck kind, u64 offset, u64 len, u64 now_ns) {
  if (stuck_ != kind || stuck_off_ != offset) {
    // A *new* stuck condition restarts the torn-tail deadline; the same
    // frame still stuck keeps its original clock so it cannot dodge the
    // deadline by being re-observed.
    stuck_since_ns_ = now_ns;
  }
  stuck_ = kind;
  stuck_off_ = offset;
  stuck_len_ = len;
}

size_t SpoolTailer::drain(u64 now_ns) {
  size_t cur = 0;
  size_t applied = 0;
  if (!header_done_) {
    if (pending_.size() < kSpoolHeaderBytes) {
      state_ = TailState::Header;
      return 0;
    }
    if (!spool::looks_like_spool(pending_)) {
      state_ = TailState::Failed;
      fail_reason_ = "not a spool stream (bad magic)";
      return 0;
    }
    const u32 nw = le32_at(pending_.data() + spool::kSpoolMagic.size());
    if (nw == 0 || nw > 4096) {
      state_ = TailState::Failed;
      fail_reason_ = "implausible worker count " + std::to_string(nw);
      return 0;
    }
    inc_ = std::make_unique<spool::IncrementalTrace>(nw);
    cur = kSpoolHeaderBytes;
    header_done_ = true;
    state_ = TailState::Streaming;
  }
  bool stuck_now = false;
  while (cur < pending_.size()) {
    const size_t rem = pending_.size() - cur;
    if (rem < spool::kFrameHeaderBytes) {
      set_stuck(Stuck::TornHeader, base_ + cur, 0, now_ns);
      stuck_now = true;
      break;
    }
    const char* h = pending_.data() + cur;
    if (std::memcmp(h, spool::kFrameMagic, sizeof spool::kFrameMagic) != 0) {
      set_stuck(Stuck::Garbled, base_ + cur, 0, now_ns);
      stuck_now = true;
      break;
    }
    const auto type = static_cast<spool::FrameType>(static_cast<u8>(h[4]));
    const u32 worker = le32_at(h + 5);
    const u32 seq = le32_at(h + 9);
    const u64 payload_len = le64_at(h + 13);
    const u64 checksum = le64_at(h + 21);
    if (payload_len > kMaxPayload) {
      set_stuck(Stuck::Overrun, base_ + cur, payload_len, now_ns);
      stuck_now = true;
      break;
    }
    if (rem - spool::kFrameHeaderBytes < payload_len) {
      set_stuck(Stuck::TornPayload, base_ + cur, payload_len, now_ns);
      stuck_now = true;
      break;
    }
    const std::string_view payload(h + spool::kFrameHeaderBytes,
                                   static_cast<size_t>(payload_len));
    const spool::FrameOutcome outcome =
        inc_->apply_frame(type, worker, seq, payload, checksum, base_ + cur);
    cur += spool::kFrameHeaderBytes + static_cast<size_t>(payload_len);
    ++applied;
    ++stats_.frames_applied;
    if (outcome == spool::FrameOutcome::Footer) {
      state_ = TailState::Sealed;
      break;
    }
    if (outcome == spool::FrameOutcome::CrashFooter) {
      state_ = TailState::Crashed;
      break;
    }
  }
  // Any pass that ends without re-observing a stuck span means the writer
  // completed the frame we were waiting on (or we sealed past it) — a stale
  // stuck_ left behind here would surface at finalize() as a phantom
  // torn-tail note on a clean stream.
  if (!stuck_now) stuck_ = Stuck::None;
  if (cur > 0) {
    pending_.erase(0, cur);
    base_ += cur;
    stats_.bytes_consumed = base_;
  }
  return applied;
}

bool SpoolTailer::try_resync() {
  // Only abandon the stuck span for a later frame that is *provably* good:
  // full header present, plausible length, payload complete, checksum
  // valid. Anything weaker could resync into the middle of an in-flight
  // write and lose more than the one bad frame.
  if (stuck_off_ < base_) return false;
  const size_t start = static_cast<size_t>(stuck_off_ - base_) + 1;
  for (size_t i = start;
       i + spool::kFrameHeaderBytes <= pending_.size(); ++i) {
    const char* h = pending_.data() + i;
    if (std::memcmp(h, spool::kFrameMagic, sizeof spool::kFrameMagic) != 0)
      continue;
    const auto type = static_cast<spool::FrameType>(static_cast<u8>(h[4]));
    const u32 worker = le32_at(h + 5);
    const u32 seq = le32_at(h + 9);
    const u64 payload_len = le64_at(h + 13);
    if (payload_len > kMaxPayload) continue;
    if (pending_.size() - i - spool::kFrameHeaderBytes < payload_len)
      continue;
    const char* payload = h + spool::kFrameHeaderBytes;
    if (spool::frame_checksum(type, worker, seq, payload,
                              static_cast<size_t>(payload_len)) !=
        le64_at(h + 21)) {
      continue;
    }
    inc_->note_abandoned(stuck_off_, base_ + i);
    ++stats_.resyncs;
    pending_.erase(0, i);
    base_ += i;
    stats_.bytes_consumed = base_;
    stuck_ = Stuck::None;
    return true;
  }
  return false;
}

void SpoolTailer::schedule_retry(u64 now_ns, bool made_progress) {
  if (made_progress) {
    backoff_ns_ = opts_.retry_initial_ns;
  } else {
    backoff_ns_ = std::min(
        std::max(backoff_ns_ * 2, opts_.retry_initial_ns), opts_.retry_max_ns);
  }
  next_poll_ns_ = now_ns + backoff_ns_;
}

size_t SpoolTailer::poll(u64 now_ns) {
  if (finalized_ || state_ == TailState::Sealed ||
      state_ == TailState::Crashed || state_ == TailState::Failed) {
    return 0;
  }
  if (now_ns < next_poll_ns_) {
    ++stats_.idle_polls;
    return 0;
  }
  if (!ensure_open()) {
    // Not created yet (the writer may still be starting up): retry with
    // the same backoff the torn tail uses.
    schedule_retry(now_ns, false);
    return 0;
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    schedule_retry(now_ns, false);
    return 0;
  }
  const u64 size = static_cast<u64>(st.st_size);
  if (size < base_ + pending_.size()) {
    // The file shrank under the tail: it was truncated or replaced. The
    // already-applied prefix stays; nothing after it can be trusted.
    state_ = TailState::Failed;
    fail_reason_ = "spool truncated under the tail (size " +
                   std::to_string(size) + " < consumed " +
                   std::to_string(base_ + pending_.size()) + ")";
    return 0;
  }
  file_size_ = size;
  u64 read_from = base_ + pending_.size();
  u64 budget = opts_.max_read_bytes;
  bool grew = false;
  char buf[64 * 1024];
  while (read_from < size && budget > 0) {
    const size_t want = static_cast<size_t>(
        std::min<u64>({sizeof buf, size - read_from, budget}));
    const ssize_t n =
        ::pread(fd_, buf, want, static_cast<off_t>(read_from));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    pending_.append(buf, static_cast<size_t>(n));
    read_from += static_cast<u64>(n);
    budget -= static_cast<u64>(n);
    grew = true;
  }
  if (grew) ++stats_.reads;

  size_t applied = drain(now_ns);
  if (state_ == TailState::Sealed || state_ == TailState::Crashed ||
      state_ == TailState::Failed) {
    return applied;
  }
  if (stuck_ != Stuck::None &&
      now_ns - stuck_since_ns_ >= opts_.torn_deadline_ns) {
    if (try_resync()) {
      applied += drain(now_ns);
      if (state_ == TailState::Sealed || state_ == TailState::Crashed)
        return applied;
    }
  }
  if (stuck_ != Stuck::None) {
    state_ = TailState::Waiting;
  } else if (header_done_) {
    state_ = TailState::Streaming;
  }
  schedule_retry(now_ns, grew || applied > 0);
  return applied;
}

bool SpoolTailer::finalize() {
  if (finalized_) return usable_;
  finalized_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!header_done_) {
    if (fail_reason_.empty()) {
      if (pending_.empty()) {
        fail_reason_ = "spool never appeared";
      } else if (!spool::looks_like_spool(pending_)) {
        fail_reason_ = "not a spool stream (bad magic)";
      } else {
        fail_reason_ = "torn spool header";
      }
    }
    state_ = TailState::Failed;
    usable_ = false;
    return false;
  }
  // Map the unresolved tail to exactly what batch recovery would say about
  // the same final bytes (wording and counters are pinned by tests).
  switch (stuck_) {
    case Stuck::None:
      break;
    case Stuck::TornHeader:
      inc_->note_torn_header(stuck_off_);
      break;
    case Stuck::Garbled:
      inc_->note_garbled_magic(stuck_off_);
      break;
    case Stuck::Overrun:
    case Stuck::TornPayload:
      inc_->note_overrun(stuck_off_, stuck_len_);
      break;
  }
  usable_ = inc_->finish();
  if (!usable_ && state_ != TailState::Failed) {
    state_ = TailState::Failed;
    if (fail_reason_.empty()) fail_reason_ = "no recoverable frames";
  }
  return usable_;
}

}  // namespace gg::serve
