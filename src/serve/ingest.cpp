#include "serve/ingest.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.hpp"
#include "serve/session.hpp"
#include "trace/salvage.hpp"
#include "trace/validate.hpp"

namespace gg::serve {

namespace {

u32 le32_at(const char* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

u64 le64_at(const char* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<u64>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

bool send_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-ACK must surface as EPIPE,
    // never as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

const char* ingest_state_name(IngestState s) {
  switch (s) {
    case IngestState::Open: return "open";
    case IngestState::Sealed: return "sealed";
    case IngestState::Crashed: return "crashed";
    case IngestState::Failed: return "failed";
  }
  return "?";
}

// --- IngestStream -----------------------------------------------------------

IngestStream::IngestStream(u64 id, wire::Token token, std::string name,
                           u64 now_ns)
    : id_(id), token_(token), name_(std::move(name)) {
  last_activity_ns_ = now_ns;
}

u64 IngestStream::adopt() {
  return generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

u64 IngestStream::generation() const {
  return generation_.load(std::memory_order_acquire);
}

IngestStream::Apply IngestStream::offer(u32 num_workers, u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  last_activity_ns_ = now_ns;
  if (finalized_) {
    return {wire::Status::SessionErr, acked_seq_, "stream already finalized"};
  }
  if (inc_) {
    if (num_workers != num_workers_) {
      return {wire::Status::SessionErr, acked_seq_,
              "OFFER worker count " + std::to_string(num_workers) +
                  " conflicts with accepted " + std::to_string(num_workers_)};
    }
    return {wire::Status::Ok, acked_seq_, "offer accepted (resume)"};
  }
  inc_ = std::make_unique<spool::IncrementalTrace>(num_workers);
  num_workers_ = num_workers;
  return {wire::Status::Ok, acked_seq_, "offer accepted"};
}

IngestStream::Apply IngestStream::apply_epoch(u32 seq,
                                              const wire::EpochMsg& msg,
                                              u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  last_activity_ns_ = now_ns;
  if (finalized_)
    return {wire::Status::SessionErr, acked_seq_, "stream already finalized"};
  if (!inc_)
    return {wire::Status::BadProto, acked_seq_, "EPOCH before OFFER"};
  if (seq == 0)
    return {wire::Status::BadProto, acked_seq_, "EPOCH seq 0"};
  if (seq <= acked_seq_) {
    // Retransmit of an already-applied epoch (resume overlap): re-ACK, do
    // not fold it twice.
    ++epochs_duplicate_;
    return {wire::Status::Ok, acked_seq_, "duplicate"};
  }
  if (seq != acked_seq_ + 1) {
    return {wire::Status::SessionErr, acked_seq_,
            "EPOCH seq " + std::to_string(seq) + " skips acked " +
                std::to_string(acked_seq_)};
  }
  if (footer_seen_) {
    // Batch recovery stops its scan at the footer; bytes after it never
    // reach the trace, so accepting them here would break parity.
    return {wire::Status::SessionErr, acked_seq_, "EPOCH after footer"};
  }
  const std::string_view f = msg.spool_frame;
  if (std::memcmp(f.data(), spool::kFrameMagic,
                  sizeof spool::kFrameMagic) != 0) {
    return {wire::Status::SessionErr, acked_seq_,
            "EPOCH does not carry a spool frame (bad inner magic)"};
  }
  const auto type = static_cast<spool::FrameType>(static_cast<u8>(f[4]));
  const u32 worker = le32_at(f.data() + 5);
  const u32 inner_seq = le32_at(f.data() + 9);
  const u64 payload_len = le64_at(f.data() + 13);
  const u64 stored_checksum = le64_at(f.data() + 21);
  if (payload_len != f.size() - spool::kFrameHeaderBytes) {
    // Exactly one complete frame per EPOCH; a length that disagrees with
    // the carried bytes is a client bug, not stream damage (damage with a
    // lying length is an overrun tail, expressed via SEAL).
    return {wire::Status::SessionErr, acked_seq_,
            "inner frame length " + std::to_string(payload_len) +
                " does not match carried bytes"};
  }
  const std::string_view payload(f.data() + spool::kFrameHeaderBytes,
                                 static_cast<size_t>(payload_len));
  const spool::FrameOutcome outcome = inc_->apply_frame(
      type, worker, inner_seq, payload, stored_checksum, msg.spool_offset);
  if (outcome == spool::FrameOutcome::Footer ||
      outcome == spool::FrameOutcome::CrashFooter) {
    footer_seen_ = true;
  }
  acked_seq_ = seq;
  return {wire::Status::Ok, acked_seq_, {}};
}

IngestStream::Apply IngestStream::seal(const wire::SealMsg& msg, u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) {
    // Resume after a lost final ACK: the stream is already finalized with
    // exactly these bytes; just re-ACK so the client can finish.
    return {usable_ ? wire::Status::Ok : wire::Status::SessionErr, acked_seq_,
            usable_ ? "sealed" : "finalized unusable"};
  }
  if (!inc_)
    return {wire::Status::BadProto, acked_seq_, "SEAL before OFFER"};
  return finalize_locked(msg.end, msg.end_offset, msg.end_len, now_ns);
}

void IngestStream::finalize(u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  if (!inc_) {
    // Never offered: nothing was ever recoverable.
    finalized_ = true;
    usable_ = false;
    state_ = IngestState::Failed;
    last_activity_ns_ = now_ns;
    return;
  }
  finalize_locked(wire::EndKind::Clean, 0, 0, now_ns);
}

IngestStream::Apply IngestStream::finalize_locked(wire::EndKind end,
                                                  u64 end_offset, u64 end_len,
                                                  u64 now_ns) {
  finalized_ = true;
  last_activity_ns_ = now_ns;
  // Stamp the tail note batch recovery would stamp for the same final
  // bytes (wording pinned by the parity tests).
  switch (end) {
    case wire::EndKind::Clean:
      break;
    case wire::EndKind::TornHeader:
      inc_->note_torn_header(end_offset);
      break;
    case wire::EndKind::Garbled:
      inc_->note_garbled_magic(end_offset);
      break;
    case wire::EndKind::Overrun:
      inc_->note_overrun(end_offset, end_len);
      break;
  }
  usable_ = inc_->finish();
  report_ = inc_->report();
  if (!usable_) {
    state_ = IngestState::Failed;
    inc_.reset();
    return {wire::Status::SessionErr, acked_seq_, "nothing recoverable"};
  }
  trace_ = std::move(inc_->trace());
  inc_.reset();
  // The batch `gganalyze --recover` hand-off: degraded streams run the
  // salvage pass before analysis, clean ones are used as-is.
  if (recovery_degraded(report_)) salvage_trace(trace_);
  if (!validate_trace(trace_).empty()) {
    usable_ = false;
    state_ = IngestState::Failed;
    return {wire::Status::SessionErr, acked_seq_, "trace failed validation"};
  }
  state_ = report_.crash_reason.empty() ? IngestState::Sealed
                                        : IngestState::Crashed;
  return {wire::Status::Ok, acked_seq_, "sealed"};
}

bool IngestStream::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inc_ != nullptr || finalized_;
}

bool IngestStream::finalized() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finalized_;
}

bool IngestStream::usable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return usable_;
}

IngestState IngestStream::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

u64 IngestStream::acked_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_seq_;
}

u64 IngestStream::resident_locked() const {
  if (inc_) return inc_->resident_bytes();
  if (!usable_) return 0;
  u64 bytes = 0;
  auto vec = [](const auto& v) {
    return static_cast<u64>(v.size() * sizeof(v[0]));
  };
  bytes += vec(trace_.tasks) + vec(trace_.fragments) + vec(trace_.joins) +
           vec(trace_.loops) + vec(trace_.chunks) + vec(trace_.bookkeeps) +
           vec(trace_.depends) + vec(trace_.worker_stats);
  return bytes;
}

u64 IngestStream::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_locked();
}

u64 IngestStream::last_activity_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_activity_ns_;
}

u64 IngestStream::last_query_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_query_ns_;
}

void IngestStream::touch_query(u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  last_query_ns_ = now_ns;
}

const spool::RecoverReport* IngestStream::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return &report_;
  if (inc_) return &inc_->report();
  return nullptr;
}

const Trace* IngestStream::trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finalized_ && usable_ ? &trace_ : nullptr;
}

std::string IngestStream::status_line() const {
  std::lock_guard<std::mutex> lock(mu_);
  const spool::RecoverReport* rep =
      finalized_ ? &report_ : (inc_ ? &inc_->report() : nullptr);
  std::string line = "ingest " + std::to_string(id_) + " " +
                     (name_.empty() ? "(unnamed)" : name_) +
                     " token=" + token_.hex().substr(0, 12) + " " +
                     ingest_state_name(state_);
  line += " frames=" + std::to_string(rep ? rep->frames_kept : 0);
  u64 epochs = 0;
  if (rep != nullptr)
    for (u64 e : rep->epochs_per_worker) epochs += e;
  line += " epochs=" + std::to_string(epochs);
  line += " acked=" + std::to_string(acked_seq_);
  line += " resident=" + std::to_string(resident_locked());
  if (rep != nullptr && !rep->crash_reason.empty())
    line += " crash=\"" + rep->crash_reason + "\"";
  return line;
}

std::string IngestStream::report_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) {
    if (!usable_) return {};
    return analysis_report_text(trace_);
  }
  if (!inc_) return {};
  // Live snapshot, same convergence contract as Session::report_text.
  Trace copy = inc_->trace();
  spool::IncrementalTrace::extend_region_to_records(copy);
  copy.finalize();
  salvage_trace(copy);
  if (!validate_trace(copy).empty()) return {};
  return analysis_report_text(copy);
}

// --- IngestRegistry ---------------------------------------------------------

IngestRegistry::IngestRegistry(const IngestOptions& opts,
                               obs::Registry* telemetry)
    : opts_(opts) {
  if (telemetry != nullptr) {
    m_created_ = telemetry->counter("serve.ingest.streams_created");
    m_resumed_ = telemetry->counter("serve.ingest.resumes");
    m_shed_ = telemetry->counter("serve.ingest.offers_shed");
    m_poisoned_ = telemetry->counter("serve.ingest.poisoned_connections");
    m_timeouts_ = telemetry->counter("serve.ingest.read_timeouts");
    m_epochs_ = telemetry->counter("serve.ingest.epochs_applied");
    m_dup_epochs_ = telemetry->counter("serve.ingest.epochs_duplicate");
    m_evicted_ = telemetry->counter("serve.ingest.streams_evicted");
    g_open_ = telemetry->gauge("serve.ingest.open_streams");
    g_streams_ = telemetry->gauge("serve.ingest.streams");
  }
}

IngestRegistry::Hello IngestRegistry::hello(const wire::Token& token,
                                            const std::string& name,
                                            u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(token);
  if (it != streams_.end()) {
    if (m_resumed_ != nullptr) m_resumed_->add();
    return {it->second, /*created=*/false};
  }
  size_t open = 0;
  for (const auto& [tok, stream] : streams_)
    if (!stream->finalized()) ++open;
  if (open >= opts_.max_sessions) {
    if (m_shed_ != nullptr) m_shed_->add();
    return {nullptr, false};
  }
  auto stream =
      std::make_shared<IngestStream>(next_id_++, token, name, now_ns);
  streams_.emplace(token, stream);
  if (m_created_ != nullptr) m_created_->add();
  if (g_streams_ != nullptr) g_streams_->set(streams_.size());
  if (g_open_ != nullptr) g_open_->set(open + 1);
  return {stream, /*created=*/true};
}

std::shared_ptr<IngestStream> IngestRegistry::find(
    const wire::Token& token) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(token);
  return it == streams_.end() ? nullptr : it->second;
}

std::shared_ptr<IngestStream> IngestRegistry::find_by_key(
    const std::string& key) const {
  if (key.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<IngestStream> match;
  bool ambiguous = false;
  for (const auto& [tok, stream] : streams_) {
    const bool hit =
        std::to_string(stream->id()) == key || stream->name() == key ||
        (key.size() >= 6 && tok.hex().compare(0, key.size(), key) == 0);
    if (!hit) continue;
    if (match) ambiguous = true;
    match = stream;
  }
  return ambiguous ? nullptr : match;
}

void IngestRegistry::sweep(u64 now_ns) {
  std::vector<std::shared_ptr<IngestStream>> stale;
  std::vector<wire::Token> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [tok, stream] : streams_) {
      // Connection threads stamp activity with their own clock reads, which
      // may be fractionally ahead of this sweep's captured now; the guarded
      // comparison keeps the subtraction from underflowing into "stale for
      // eons" and finalizing a stream that was touched microseconds ago.
      if (!stream->finalized()) {
        const u64 last = stream->last_activity_ns();
        if (now_ns > last && now_ns - last >= opts_.stale_after_ns)
          stale.push_back(stream);
        continue;
      }
      const u64 idle_since =
          std::max(stream->last_activity_ns(), stream->last_query_ns());
      if (now_ns > idle_since && now_ns - idle_since >= opts_.evict_after_ns)
        expired.push_back(tok);
    }
    for (const auto& tok : expired) {
      streams_.erase(tok);
      if (m_evicted_ != nullptr) m_evicted_->add();
    }
    if (g_streams_ != nullptr) g_streams_->set(streams_.size());
  }
  // Finalize outside the table lock: finish() + salvage can be heavy.
  for (auto& stream : stale) stream->finalize(now_ns);
  if (g_open_ != nullptr) g_open_->set(open_count());
}

void IngestRegistry::finalize_all(u64 now_ns) {
  std::vector<std::shared_ptr<IngestStream>> open;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [tok, stream] : streams_)
      if (!stream->finalized()) open.push_back(stream);
  }
  for (auto& stream : open) stream->finalize(now_ns);
  if (g_open_ != nullptr) g_open_->set(0);
}

u64 IngestRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& [tok, stream] : streams_)
    total += stream->resident_bytes();
  return total;
}

size_t IngestRegistry::stream_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_.size();
}

size_t IngestRegistry::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t open = 0;
  for (const auto& [tok, stream] : streams_)
    if (!stream->finalized()) ++open;
  return open;
}

void IngestRegistry::for_each(
    const std::function<void(const IngestStream&)>& fn) const {
  std::vector<std::shared_ptr<IngestStream>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(streams_.size());
    for (const auto& [tok, stream] : streams_) snapshot.push_back(stream);
  }
  for (const auto& stream : snapshot) fn(*stream);
}

void IngestRegistry::note_resumed() {
  if (m_resumed_ != nullptr) m_resumed_->add();
}
void IngestRegistry::note_shed() {
  if (m_shed_ != nullptr) m_shed_->add();
}
void IngestRegistry::note_poisoned() {
  if (m_poisoned_ != nullptr) m_poisoned_->add();
}
void IngestRegistry::note_timeout() {
  if (m_timeouts_ != nullptr) m_timeouts_->add();
}
void IngestRegistry::note_epoch_applied() {
  if (m_epochs_ != nullptr) m_epochs_->add();
}
void IngestRegistry::note_epoch_duplicate() {
  if (m_dup_epochs_ != nullptr) m_dup_epochs_->add();
}

// --- IngestConnection -------------------------------------------------------

IngestConnection::IngestConnection(IngestRegistry* registry,
                                   std::function<bool()> admit_offer)
    : registry_(registry), admit_offer_(std::move(admit_offer)) {}

bool IngestConnection::fail(wire::Status status, const std::string& reason,
                            std::string* out) {
  const u64 acked = stream_ ? stream_->acked_seq() : 0;
  out->append(wire::encode_ack(status, acked, reason));
  open_ = false;
  close_reason_ = reason;
  return false;
}

bool IngestConnection::on_bytes(std::string_view bytes, std::string* out,
                                u64 now_ns) {
  if (!open_) return false;
  decoder_.feed(bytes);
  if (decoder_.buffered_bytes() >
      registry_->options().max_wire_buffer_bytes) {
    return fail(wire::Status::SessionErr,
                "wire buffer cap exceeded (" +
                    std::to_string(decoder_.buffered_bytes()) + " bytes)",
                out);
  }
  wire::Frame f;
  while (true) {
    switch (decoder_.next(&f)) {
      case wire::Decoder::Result::Need:
        return true;
      case wire::Decoder::Result::Poison:
        // Wire damage kills the connection, never the stream: the client
        // reconnects and resumes from the last acked epoch.
        registry_->note_poisoned();
        return fail(wire::Status::BadProto, decoder_.error(), out);
      case wire::Decoder::Result::Frame:
        if (!on_frame(f, out, now_ns)) return false;
        break;
    }
  }
}

void IngestConnection::on_timeout(std::string* out) {
  if (!open_) return;
  registry_->note_timeout();
  fail(wire::Status::SessionErr, "read timeout", out);
}

bool IngestConnection::on_frame(const wire::Frame& f, std::string* out,
                                u64 now_ns) {
  std::string err;
  if (f.type == wire::Type::Hello) {
    wire::HelloMsg hello;
    if (!wire::decode_hello(f.payload, &hello, &err))
      return fail(wire::Status::BadProto, err, out);
    if (hello.proto != wire::kProtoVersion) {
      return fail(wire::Status::BadProto,
                  "unsupported protocol version " +
                      std::to_string(hello.proto),
                  out);
    }
    if (hello.token.zero())
      return fail(wire::Status::BadProto, "HELLO with zero token", out);
    if (stream_)
      return fail(wire::Status::BadProto, "second HELLO on connection", out);
    const IngestRegistry::Hello h =
        registry_->hello(hello.token, hello.name, now_ns);
    if (!h.stream) {
      return fail(wire::Status::Shed,
                  "ingest session cap reached, retry later", out);
    }
    stream_ = h.stream;
    generation_ = stream_->adopt();
    std::string msg = h.created ? "new" : "resumed";
    if (stream_->finalized()) msg = "sealed";
    out->append(
        wire::encode_ack(wire::Status::Ok, stream_->acked_seq(), msg));
    return true;
  }
  if (!stream_)
    return fail(wire::Status::BadProto,
                std::string("frame before HELLO"), out);
  if (stream_->generation() != generation_) {
    // A newer connection re-HELLOed with our token; this one is a zombie
    // (the client gave up on it). Stand down without touching the stream.
    open_ = false;
    close_reason_ = "superseded by a newer connection";
    return false;
  }
  switch (f.type) {
    case wire::Type::Offer: {
      wire::OfferMsg offer;
      if (!wire::decode_offer(f.payload, &offer, &err))
        return fail(wire::Status::BadProto, err, out);
      // The degrade ladder sheds brand-new streams before it ever pauses
      // tailers; a stream that already holds data is always admitted.
      if (!stream_->offered() && admit_offer_ && !admit_offer_()) {
        registry_->note_shed();
        return fail(wire::Status::Shed,
                    "ingest shed under memory pressure, retry later", out);
      }
      const IngestStream::Apply r = stream_->offer(offer.num_workers, now_ns);
      out->append(wire::encode_ack(r.status, r.acked_seq, r.message));
      if (r.status != wire::Status::Ok) {
        open_ = false;
        close_reason_ = r.message;
        return false;
      }
      return true;
    }
    case wire::Type::Epoch: {
      wire::EpochMsg epoch;
      if (!wire::decode_epoch(f.payload, &epoch, &err))
        return fail(wire::Status::BadProto, err, out);
      const IngestStream::Apply r =
          stream_->apply_epoch(f.seq, epoch, now_ns);
      out->append(wire::encode_ack(r.status, r.acked_seq, r.message));
      if (r.status != wire::Status::Ok) {
        open_ = false;
        close_reason_ = r.message;
        return false;
      }
      if (r.message == "duplicate") {
        registry_->note_epoch_duplicate();
      } else {
        registry_->note_epoch_applied();
      }
      return true;
    }
    case wire::Type::Seal: {
      wire::SealMsg seal;
      if (!wire::decode_seal(f.payload, &seal, &err))
        return fail(wire::Status::BadProto, err, out);
      const IngestStream::Apply r = stream_->seal(seal, now_ns);
      out->append(wire::encode_ack(r.status, r.acked_seq, r.message));
      if (r.status != wire::Status::Ok) {
        open_ = false;
        close_reason_ = r.message;
        return false;
      }
      return true;
    }
    case wire::Type::Bye:
      open_ = false;
      close_reason_ = "bye";
      return false;
    case wire::Type::Hello:
    case wire::Type::Ack:
      break;
  }
  return fail(wire::Status::BadProto,
              "unexpected frame type from client", out);
}

// --- IngestListener ---------------------------------------------------------

IngestListener::IngestListener(std::string socket_path,
                               IngestRegistry* registry,
                               std::function<bool()> admit_offer,
                               std::function<u64()> clock)
    : path_(std::move(socket_path)),
      registry_(registry),
      admit_offer_(std::move(admit_offer)),
      clock_(std::move(clock)) {}

IngestListener::~IngestListener() { stop(); }

bool IngestListener::start(std::string* error) {
  sockaddr_un addr;
  if (path_.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path_;
    return false;
  }
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // a stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr)
      *error = "cannot bind " + path_ + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void IngestListener::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  // Connection threads watch stop_ on every poll round; wait them out.
  while (active_.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path_.c_str());
}

void IngestListener::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (active_.load(std::memory_order_acquire) >=
        registry_->options().max_connections) {
      // Transport-level shed: refuse before any protocol state exists.
      const std::string ack = wire::encode_ack(
          wire::Status::Shed, 0, "connection cap reached, retry later");
      send_all(fd, ack.data(), ack.size());
      ::close(fd);
      continue;
    }
    active_.fetch_add(1, std::memory_order_acq_rel);
    std::thread([this, fd] {
      serve_connection(fd);
      active_.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  }
}

void IngestListener::serve_connection(int fd) {
  IngestConnection conn(registry_, admit_offer_);
  const u64 deadline_ns = registry_->options().read_deadline_ns;
  u64 last_bytes_ns = clock_();
  char buf[64 * 1024];
  std::string out;
  while (!stop_.load(std::memory_order_acquire) && conn.open()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    const u64 now = clock_();
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (now - last_bytes_ns >= deadline_ns) {
        out.clear();
        conn.on_timeout(&out);
        send_all(fd, out.data(), out.size());
        break;
      }
      continue;
    }
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer closed; the stream survives for resume
    last_bytes_ns = now;
    out.clear();
    const bool keep =
        conn.on_bytes(std::string_view(buf, static_cast<size_t>(n)), &out,
                      now);
    if (!out.empty() && !send_all(fd, out.data(), out.size())) break;
    if (!keep) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

}  // namespace gg::serve
