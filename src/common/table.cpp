#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace gg {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  GG_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    GG_CHECK_MSG(row.size() == header_.size(), "row width != header width");
  }
  rows_.push_back(std::move(row));
}

void Table::add_row_mixed(const std::vector<double>& values) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(strings::trim_double(v));
  add_row(std::move(row));
}

std::string Table::to_text() const {
  const size_t cols = header_.empty()
                          ? (rows_.empty() ? 0 : rows_.front().size())
                          : header_.size();
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < cols; ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto rule = [&]() {
    os << "+";
    for (size_t i = 0; i < cols; ++i) os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << quote(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

}  // namespace gg
