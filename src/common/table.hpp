// Aligned text tables + CSV output for bench harnesses and reports. Every
// figure/table bench prints one of these so paper-vs-measured comparisons
// are easy to eyeball and to parse.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gg {

class Table {
 public:
  explicit Table(std::string title = {});

  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_string-ish rules (doubles are
  /// trimmed to 3 decimals).
  void add_row_mixed(const std::vector<double>& values);

  size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  /// Renders an aligned, boxed text table.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gg
