#include "common/strings.hpp"

#include <cstdio>

namespace gg {

StringTable::StringTable() {
  strings_.emplace_back();
  index_.emplace("", 0);
}

StrId StringTable::intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

std::string_view StringTable::get(StrId id) const {
  if (id >= strings_.size()) return strings_[0];
  return strings_[id];
}

StrId StringTable::find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? 0 : it->second;
}

namespace strings {

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string trim_double(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_decimals, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string human_time(TimeNs ns) {
  const double v = static_cast<double>(ns);
  if (ns < 1000ull) return trim_double(v, 0) + "ns";
  if (ns < 1000'000ull) return trim_double(v / 1e3, 2) + "us";
  if (ns < 1000'000'000ull) return trim_double(v / 1e6, 2) + "ms";
  return trim_double(v / 1e9, 3) + "s";
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace strings
}  // namespace gg
