// Small descriptive-statistics helpers used by metric derivations and bench
// reporting (median grain length, percentiles, load-balance ratios, ...).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace gg::stats {

/// Median of the values (copies and partially sorts). Returns 0 for empty
/// input. Even-length inputs return the mean of the two middle elements.
double median(std::span<const double> values);
double median(std::span<const u64> values);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values);
double mean(std::span<const u64> values);

/// p in [0,100]; linear interpolation between closest ranks. 0 for empty.
double percentile(std::span<const double> values, double p);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> values);

/// Minimum / maximum; 0 for empty input.
u64 min_value(std::span<const u64> values);
u64 max_value(std::span<const u64> values);

/// Geometric mean; 0 for empty input or any non-positive value.
double geomean(std::span<const double> values);

/// Convenience conversion.
std::vector<double> to_doubles(std::span<const u64> values);

}  // namespace gg::stats
