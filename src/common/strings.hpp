// String helpers: interned string tables for traces and small formatting
// utilities used by exporters and bench reports.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace gg {

/// Append-only interned string table. Ids are stable and dense, id 0 is the
/// empty string. Used for source locations and names inside traces so
/// records stay POD-sized.
class StringTable {
 public:
  StringTable();

  /// Returns the id for `s`, inserting it if new.
  StrId intern(std::string_view s);

  /// Looks up an id; out-of-range ids return the empty string.
  std::string_view get(StrId id) const;

  /// Returns the id for `s` if present, otherwise 0 (the empty string).
  StrId find(std::string_view s) const;

  size_t size() const { return strings_.size(); }
  const std::vector<std::string>& all() const { return strings_; }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId> index_;
};

namespace strings {

/// Escapes &, <, >, ", ' for XML attribute/text contexts (GraphML export).
std::string xml_escape(std::string_view s);

/// printf-style double with trimmed trailing zeros, e.g. 1.50 -> "1.5".
std::string trim_double(double v, int max_decimals = 3);

/// Formats nanoseconds with an adaptive unit: "12ns", "3.4us", "1.2ms", "5.6s".
std::string human_time(TimeNs ns);

/// Joins parts with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace strings
}  // namespace gg
