#pragma once

// Append-only text buffer used by the exporters instead of ostringstream.
//
// operator<< mirrors the subset of ostream formatting the exporters relied
// on — and produces byte-identical output for it: integers via
// std::to_chars, doubles via printf "%g" (the same 6-significant-digit
// default formatting as an unconfigured ostream, including "inf"/"nan" and
// exponent spelling). Exporters format into one reusable buffer and flush it
// to the output stream with a single write.

#include <charconv>
#include <concepts>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace gg {

class BufWriter {
 public:
  explicit BufWriter(size_t reserve_bytes = 1 << 16) { buf_.reserve(reserve_bytes); }

  void clear() { buf_.clear(); }
  size_t size() const { return buf_.size(); }
  std::string_view view() const { return buf_; }
  const std::string& str() const { return buf_; }
  std::string take() { return std::move(buf_); }

  void write_to(std::ostream& os) const { os.write(buf_.data(), static_cast<std::streamsize>(buf_.size())); }

  BufWriter& operator<<(std::string_view v) {
    buf_.append(v);
    return *this;
  }
  BufWriter& operator<<(char c) {
    buf_.push_back(c);
    return *this;
  }
  template <std::integral T>
    requires(!std::same_as<T, char> && !std::same_as<T, bool>)
  BufWriter& operator<<(T v) {
    char tmp[24];
    auto [end, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
    (void)ec;
    buf_.append(tmp, end);
    return *this;
  }
  BufWriter& operator<<(double v) {
    char tmp[64];
    const int n = std::snprintf(tmp, sizeof(tmp), "%g", v);
    if (n > 0) buf_.append(tmp, static_cast<size_t>(n));
    return *this;
  }

 private:
  std::string buf_;
};

inline std::ostream& operator<<(std::ostream& os, const BufWriter& b) {
  b.write_to(os);
  return os;
}

}  // namespace gg
