// Lightweight always-on invariant checks.
//
// GG_CHECK stays enabled in release builds: the graph builder and metric
// derivations rely on structural invariants whose violation must never pass
// silently (Core Guidelines I.6/E.12 spirit, without exceptions in hot
// paths). GG_DCHECK compiles away in NDEBUG builds and is meant for
// per-element loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gg::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "graingraphs: check failed: %s at %s:%d%s%s\n", expr,
               file, line, msg ? ": " : "", msg ? msg : "");
  std::abort();
}

}  // namespace gg::detail

#define GG_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::gg::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define GG_CHECK_MSG(expr, msg)                                    \
  do {                                                             \
    if (!(expr)) [[unlikely]]                                      \
      ::gg::detail::check_failed(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

#ifdef NDEBUG
#define GG_DCHECK(expr) ((void)0)
#else
#define GG_DCHECK(expr) GG_CHECK(expr)
#endif
