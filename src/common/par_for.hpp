#pragma once

// Minimal fork-join helper for the embarrassingly parallel metric passes.
//
// The pool is deliberately tiny: a static block partition over [0, n) with one
// std::thread per block and a join barrier. Each invocation owns its threads,
// so there is no shared state between passes and nothing for TSan to chase
// beyond the fork/join edges. Determinism falls out of the partition being a
// pure function of (n, threads): every index is processed exactly once and
// results are written to per-index slots or merged in block order by the
// caller.

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace gg {

/// Below this many items a parallel pass runs inline on the caller; thread
/// spawn/join overhead dwarfs the work for small traces (and keeps the unit
/// tests on the serial path by default).
inline constexpr size_t kParForMinItems = 4096;

/// Resolves a requested worker count. `requested > 0` is taken as-is;
/// `requested == 0` consults the GG_THREADS environment variable and then the
/// hardware concurrency, capped at 8 — the metric passes are memory-bound and
/// stop scaling well before large core counts.
inline int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("GG_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

/// Runs `fn(block, begin, end)` over a static block partition of [0, n).
/// Block b covers [n*b/t, n*(b+1)/t); the partition depends only on (n, t),
/// never on timing. Blocks run concurrently; block 0 runs on the caller.
/// Serial fallback (threads <= 1 or n < kParForMinItems) is a single
/// fn(0, 0, n) call, so callers need no separate serial code path.
template <class Fn>
void par_for_blocks(size_t n, int threads, Fn&& fn) {
  if (n == 0) return;
  size_t t = static_cast<size_t>(std::max(threads, 1));
  if (t > n) t = n;
  if (t <= 1 || n < kParForMinItems) {
    fn(size_t{0}, size_t{0}, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(t - 1);
  for (size_t b = 1; b < t; ++b) {
    workers.emplace_back([&fn, n, t, b] { fn(b, n * b / t, n * (b + 1) / t); });
  }
  fn(size_t{0}, size_t{0}, n * 1 / t);
  for (auto& w : workers) w.join();
}

/// Convenience wrapper: `fn(i)` for each i in [0, n), partitioned as above.
template <class Fn>
void par_for_each_index(size_t n, int threads, Fn&& fn) {
  par_for_blocks(n, threads, [&fn](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Runs `fn(s)` for each shard s in [0, nshards) with one thread per shard,
/// bypassing the kParForMinItems threshold — for coarse-grained work where
/// each shard index stands for a large block (the sharded graph/grain
/// builders). Shard 0 runs on the caller; callers size nshards to their
/// resolved thread count.
template <class Fn>
void par_for_shard(size_t nshards, Fn&& fn) {
  if (nshards == 0) return;
  if (nshards == 1) {
    fn(size_t{0});
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(nshards - 1);
  for (size_t s = 1; s < nshards; ++s) {
    workers.emplace_back([&fn, s] { fn(s); });
  }
  fn(size_t{0});
  for (auto& w : workers) w.join();
}

}  // namespace gg
