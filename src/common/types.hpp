// Fundamental scalar aliases shared by every graingraphs module.
#pragma once

#include <cstdint>

namespace gg {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Virtual or wall-clock time in nanoseconds since the start of the profiled
/// program region. All trace records and grain-graph node weights use this
/// unit so threaded and simulated executions are directly comparable.
using TimeNs = u64;

/// Processor cycles (simulated executions convert cycles to TimeNs with the
/// machine frequency from the topology description).
using Cycles = u64;

/// Identifier of a task instance assigned at creation. Id 0 is reserved for
/// the implicit root task of the profiled region.
using TaskId = u64;

/// Identifier of a parallel for-loop instance.
using LoopId = u64;

/// Index into a trace's interned string table (source locations, names).
using StrId = u32;

inline constexpr TaskId kRootTask = 0;
inline constexpr TaskId kNoTask = ~u64{0};

}  // namespace gg
