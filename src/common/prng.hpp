// Deterministic pseudo-random number generation.
//
// Workload generators and the simulator must be bit-reproducible across
// runs and platforms, so we avoid std::mt19937 + std::*_distribution (whose
// outputs are implementation-defined for distributions) and ship SplitMix64
// and xoshiro256** with explicit integer/float derivations.
#pragma once

#include <array>
#include <cmath>

#include "common/types.hpp"

namespace gg {

/// SplitMix64: tiny, fast, passes BigCrush; used for seeding and for
/// one-shot hashes of identifiers.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Stateless mixing of a 64-bit value (SplitMix64 finalizer).
constexpr u64 mix64(u64 x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// xoshiro256**: the default generator for workloads.
class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  u64 bounded(u64 bound) {
    if (bound == 0) return 0;
    const u64 x = next();
    const auto m = static_cast<unsigned __int128>(x) * bound;
    return static_cast<u64>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(bounded(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform01();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log1p(-u);
  }

  /// Pareto (power-law) distributed with scale xm and shape alpha — used for
  /// skewed chunk-cost workloads such as the Freqmine FPGF loop.
  double pareto(double xm, double alpha) {
    double u = uniform01();
    if (u >= 1.0) u = 0.9999999999999999;
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_;
};

}  // namespace gg
