#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gg::stats {

namespace {

double median_sorted(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace

double median(std::span<const double> values) {
  std::vector<double> v(values.begin(), values.end());
  return median_sorted(v);
}

double median(std::span<const u64> values) {
  std::vector<double> v = to_doubles(values);
  return median_sorted(v);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double x : values) sum += x;
  return sum / static_cast<double>(values.size());
}

double mean(std::span<const u64> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (u64 x : values) sum += static_cast<double>(x);
  return sum / static_cast<double>(values.size());
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double x : values) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

u64 min_value(std::span<const u64> values) {
  if (values.empty()) return 0;
  return *std::min_element(values.begin(), values.end());
}

u64 max_value(std::span<const u64> values) {
  if (values.empty()) return 0;
  return *std::max_element(values.begin(), values.end());
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double x : values) {
    if (x <= 0.0) return 0.0;
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

std::vector<double> to_doubles(std::span<const u64> values) {
  std::vector<double> v;
  v.reserve(values.size());
  for (u64 x : values) v.push_back(static_cast<double>(x));
  return v;
}

}  // namespace gg::stats
