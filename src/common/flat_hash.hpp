#pragma once

// Open-addressing hash map for the analysis hot paths.
//
// The analysis pipeline only ever builds an index once and then queries it
// (fragment ranges per task, grain row per task/chunk, GraphML node ids), so
// the map supports insert and lookup but not erase. Linear probing over a
// power-of-two slot array keeps probes within one or two cache lines; keys
// are expected to be small PODs with a cheap mix-style hash.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace gg {

/// Default hasher: finalizer of SplitMix64 for 64-bit integral keys, which is
/// enough avalanche for linear probing; everything else falls back to
/// std::hash.
template <class K>
struct FlatHashOf {
  size_t operator()(const K& k) const { return std::hash<K>{}(k); }
};

inline u64 flat_hash_mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <>
struct FlatHashOf<u64> {
  size_t operator()(u64 k) const { return static_cast<size_t>(flat_hash_mix64(k)); }
};

template <>
struct FlatHashOf<u32> {
  size_t operator()(u32 k) const { return static_cast<size_t>(flat_hash_mix64(k)); }
};

/// Insert-only open-addressing map (linear probing, power-of-two capacity,
/// max load factor 0.7). Iteration order is unspecified — callers that need
/// deterministic order must iterate their own key list, not the map.
template <class K, class V, class Hash = FlatHashOf<K>>
class FlatMap {
 public:
  FlatMap() = default;

  void reserve(size_t n) {
    size_t cap = 16;
    while (cap * 7 / 10 < n) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  V* find(const K& key) {
    if (slots_.empty()) return nullptr;
    for (size_t i = Hash{}(key) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.val;
    }
  }
  const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Returns the value for `key`, default-constructing it on first use.
  V& operator[](const K& key) {
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    for (size_t i = Hash{}(key) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.val = V{};
        ++size_;
        return s.val;
      }
      if (s.key == key) return s.val;
    }
  }

  void insert_or_assign(const K& key, V val) { (*this)[key] = std::move(val); }

 private:
  struct Slot {
    K key{};
    V val{};
    bool used = false;
  };

  void rehash(size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) (*this)[s.key] = std::move(s.val);
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace gg
