#pragma once

// Deterministic parallel stable sort for the trace/load hot path.
//
// Strategy: stable-sort a static block partition of the input (one block per
// worker), then merge adjacent runs pairwise with std::inplace_merge until a
// single run remains. Every constituent step is stable and always merges an
// earlier-block run on the left, so the result is *the* stable sort of the
// input — identical for every thread count, including 1, and identical to a
// plain std::stable_sort. That property is what lets Trace::finalize() run
// parallel by default while corrupted traces with duplicate record keys keep
// byte-identical salvage output across thread counts and io engines.

#include <algorithm>
#include <thread>
#include <vector>

#include "common/par_for.hpp"

namespace gg {

/// Stable-sorts [first, last) with `cmp` using up to `threads` workers.
/// Output is the stable sort of the range regardless of `threads`.
template <class It, class Cmp>
void par_stable_sort(It first, It last, int threads, Cmp cmp) {
  const size_t n = static_cast<size_t>(last - first);
  size_t t = static_cast<size_t>(std::max(threads, 1));
  if (t > n) t = n;
  if (t <= 1 || n < kParForMinItems) {
    std::stable_sort(first, last, cmp);
    return;
  }
  // Block b covers [n*b/t, n*(b+1)/t) — the par_for_blocks partition.
  std::vector<size_t> bounds(t + 1);
  for (size_t b = 0; b <= t; ++b) bounds[b] = n * b / t;
  par_for_blocks(n, static_cast<int>(t), [&](size_t, size_t lo, size_t hi) {
    std::stable_sort(first + static_cast<ptrdiff_t>(lo),
                     first + static_cast<ptrdiff_t>(hi), cmp);
  });
  // Pairwise merge rounds; each round's merges are independent.
  while (bounds.size() > 2) {
    std::vector<size_t> next;
    next.reserve(bounds.size() / 2 + 2);
    next.push_back(bounds.front());
    std::vector<std::thread> workers;
    for (size_t i = 0; i + 2 < bounds.size(); i += 2) {
      const size_t lo = bounds[i], mid = bounds[i + 1], hi = bounds[i + 2];
      if (i + 4 < bounds.size()) {
        workers.emplace_back([first, lo, mid, hi, &cmp] {
          std::inplace_merge(first + static_cast<ptrdiff_t>(lo),
                             first + static_cast<ptrdiff_t>(mid),
                             first + static_cast<ptrdiff_t>(hi), cmp);
        });
      } else {
        std::inplace_merge(first + static_cast<ptrdiff_t>(lo),
                           first + static_cast<ptrdiff_t>(mid),
                           first + static_cast<ptrdiff_t>(hi), cmp);
      }
      next.push_back(hi);
    }
    if ((bounds.size() - 1) % 2 == 1) next.push_back(bounds.back());
    for (auto& w : workers) w.join();
    bounds = std::move(next);
  }
}

/// Vector convenience overload.
template <class T, class Cmp>
void par_stable_sort(std::vector<T>& v, int threads, Cmp cmp) {
  par_stable_sort(v.begin(), v.end(), threads, cmp);
}

}  // namespace gg
