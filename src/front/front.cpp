#include "front/front.hpp"

#include "common/check.hpp"

namespace gg::front {

// Ctx and Engine are interface classes; anchoring their (implicit) key
// functions here keeps vtables out of every translation unit.

namespace {

/// Recursive binary split: interior tasks split, leaves run <= grainsize
/// iterations. The body pointer stays valid because every level taskwaits
/// before returning (the taskloop's implicit taskgroup).
void taskloop_split(Ctx& ctx, const SrcLoc& loc, u64 lo, u64 hi, u64 grain,
                    const LoopFn* body) {
  if (hi - lo <= grain) {
    for (u64 i = lo; i < hi; ++i) (*body)(i, ctx);
    return;
  }
  const u64 mid = lo + (hi - lo) / 2;
  ctx.spawn(loc, [loc, lo, mid, grain, body](Ctx& c) {
    taskloop_split(c, loc, lo, mid, grain, body);
  });
  ctx.spawn(loc, [loc, mid, hi, grain, body](Ctx& c) {
    taskloop_split(c, loc, mid, hi, grain, body);
  });
  ctx.taskwait();
}

}  // namespace

void Ctx::taskloop(const SrcLoc& loc, u64 lo, u64 hi, u64 grainsize,
                   const LoopFn& body) {
  if (hi <= lo) return;
  const u64 grain = grainsize == 0 ? 1 : grainsize;
  if (hi - lo <= grain) {
    // Single leaf: still a task, matching OpenMP's "at least one task".
    ctx_taskloop_leaf(loc, lo, hi, body);
    return;
  }
  taskloop_split(*this, loc, lo, hi, grain, &body);
}

void Ctx::ctx_taskloop_leaf(const SrcLoc& loc, u64 lo, u64 hi,
                            const LoopFn& body) {
  const LoopFn* b = &body;
  spawn(loc, [lo, hi, b](Ctx& c) {
    for (u64 i = lo; i < hi; ++i) (*b)(i, c);
  });
  taskwait();
}

void Ctx::spawn(const SrcLoc& loc, const Depends& deps, TaskFn body) {
  (void)loc;
  (void)deps;
  (void)body;
  GG_CHECK_MSG(false, "this context does not support task dependences");
}

}  // namespace gg::front
