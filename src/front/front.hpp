// The unified programming front end.
//
// Benchmark applications are written once against front::Ctx / front::Engine
// and run unchanged on either executor:
//   * rts::ThreadedEngine — a real work-stealing tasking runtime (MIR-like),
//     real threads, wall-clock profiling;
//   * sim::SimEngine — a deterministic discrete-event machine simulator that
//     replays the captured task structure on a modeled NUMA machine.
//
// The API mirrors the OpenMP constructs the paper analyzes: task spawn
// (#pragma omp task), taskwait, and parallel for-loops with
// static/dynamic/guided schedules. compute()/touch() are cost annotations:
// the threaded engine ignores them (its costs are real); the simulator's
// cost model turns them into virtual time, cache misses, and stall cycles.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace gg::front {

/// Source location of a parallel construct; use the GG_SRC macro.
struct SrcLoc {
  const char* file = "?";
  int line = 0;
  const char* func = "?";
};

#define GG_SRC (::gg::front::SrcLoc{__FILE__, __LINE__, __func__})

/// Names a source location explicitly — apps reimplementing the paper's
/// benchmarks use this to reproduce the paper's labels, e.g.
/// GG_SRC_NAMED("sparselu.c", 246, "bmod").
#define GG_SRC_NAMED(file, line, func) (::gg::front::SrcLoc{(file), (line), (func)})

/// Handle to a memory region registered with the engine's memory model.
using RegionId = u32;
inline constexpr RegionId kNoRegion = 0;

/// How the engine's memory model homes a region's pages across NUMA nodes.
/// FirstTouch homes every page on the node of the first toucher (the Linux
/// default, and the "before" setting of the Sort experiment); RoundRobin
/// stripes pages over nodes (the Sort optimization, cf. numactl
/// --interleave); Local homes pages on the allocating core's node.
enum class PagePlacement : u8 { FirstTouch, RoundRobin, Local };

class Ctx;
using TaskFn = std::function<void(Ctx&)>;
using LoopFn = std::function<void(u64 iter, Ctx&)>;

/// OpenMP 4.0-style task dependences (#pragma omp task depend(...)). The
/// paper lists data-flow tasks as future work with "no conceptual problems"
/// (§6); this reproduction implements them end to end. Handles are opaque
/// 64-bit values (typically addresses via dep_handle()); `out` covers both
/// out and inout. Dependences order sibling tasks of the same parent, as in
/// OpenMP.
struct Depends {
  std::vector<u64> in;
  std::vector<u64> out;
  bool empty() const { return in.empty() && out.empty(); }
};

/// Canonical dependence handle for an object.
template <typename T>
u64 dep_handle(const T* p) {
  return reinterpret_cast<u64>(p);
}

/// Options for parallel_for.
struct ForOpts {
  ScheduleKind sched = ScheduleKind::Static;
  u64 chunk = 0;        ///< chunk size; 0 = schedule default (static: range /
                        ///< team, dynamic/guided: 1)
  int num_threads = 0;  ///< team size; 0 = all workers (the Freqmine fix sets
                        ///< this to the bin-packed minimum, §4.3.4)
};

/// Execution context passed to every task body and loop body.
class Ctx {
 public:
  virtual ~Ctx() = default;

  /// Creates a child task (#pragma omp task). The child may run immediately
  /// (inlined, under runtime internal cutoffs) or be deferred.
  virtual void spawn(const SrcLoc& loc, TaskFn body) = 0;

  /// Creates a child task with dependences (#pragma omp task depend(...)).
  /// The child starts only after every sibling it depends on has finished.
  /// Engines that execute tasks must override this; contexts that cannot
  /// spawn (loop chunks) inherit the failing default.
  virtual void spawn(const SrcLoc& loc, const Depends& deps, TaskFn body);

  /// Waits for all direct children created so far (#pragma omp taskwait).
  virtual void taskwait() = 0;

  /// Runs a parallel for-loop over [lo, hi) on the worker team
  /// (#pragma omp parallel for schedule(...)). Only valid from the root
  /// task, matching the paper's benchmark structure.
  virtual void parallel_for(const SrcLoc& loc, u64 lo, u64 hi,
                            const ForOpts& opts, const LoopFn& body) = 0;

  /// Cost annotation: the enclosing grain performs `cycles` of computation.
  virtual void compute(Cycles cycles) { (void)cycles; }

  /// Cost annotation: the enclosing grain walks `bytes` of `region`
  /// starting at `offset` with the given access stride (0 = sequential),
  /// `repeats` times (e.g. a triple-nested loop re-walking a block). Drives
  /// the simulator's cache/NUMA model.
  virtual void touch(RegionId region, u64 offset, u64 bytes, u32 stride = 0,
                     u32 repeats = 1) {
    (void)region;
    (void)offset;
    (void)bytes;
    (void)stride;
    (void)repeats;
  }

  /// OpenMP 4.5 task-generating loop (#pragma omp taskloop grainsize(g)) —
  /// the paper's second §6 future-work item, implemented. Built on task
  /// spawns with recursive binary splitting (as the LLVM runtime does), so
  /// the generated work appears as task grains in the grain graph, not as
  /// chunks. Includes the implicit taskgroup: returns after all iterations
  /// finished. Only callable from contexts that can spawn.
  void taskloop(const SrcLoc& loc, u64 lo, u64 hi, u64 grainsize,
                const LoopFn& body);

  /// Id of the worker executing this grain.
  virtual int worker() const = 0;

  /// Workers in the team.
  virtual int num_workers() const = 0;

 private:
  void ctx_taskloop_leaf(const SrcLoc& loc, u64 lo, u64 hi,
                         const LoopFn& body);
};

/// An executor that can run a profiled program and produce a trace.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Registers a memory region with the engine's memory model. Threaded
  /// executions ignore regions; the simulator homes the region's pages per
  /// `placement`. `touch_node` is the node performing the (conceptual)
  /// first touch for FirstTouch placement; -1 means node 0.
  virtual RegionId alloc_region(const std::string& name, u64 bytes,
                                PagePlacement placement,
                                int touch_node = -1) = 0;

  /// Runs `root` as the implicit root task of a profiled parallel region and
  /// returns the finalized trace.
  virtual Trace run(const std::string& program_name, const TaskFn& root) = 0;
};

}  // namespace gg::front
