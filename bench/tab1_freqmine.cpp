// Table 1: "Freqmine performs poorly on all runtime systems due to the
// imbalanced FPGF loop. 7 cores are sufficient to maintain performance for
// the evaluation input."
//
//   | RTS | Speedup | 48-core exec. time | 7-core exec. time |
//   | ICC | 6.58    | 1.71s              | 1.72s             |
//   | GCC | 6.68    | 1.68s              | 1.69s             |
//   | MIR | 7.2     | 1.65s              | 1.68s             |
//
// Reproduced shape: low speedups (bounded by the skewed FPGF loop) that are
// nearly identical across the three runtimes, and a 7-core FPGF team that
// keeps the 48-core execution time.
#include <cstdio>

#include "apps/freqmine.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Table 1 — Freqmine across runtimes, 48-core vs 7-core team",
               "speedups ~6.6-7.2 on all runtimes; 7-core FPGF team retains "
               "the 48-core time");

  auto capture_with_team = [&](int team) {
    return capture_app("freqmine", [&](front::Engine& e) {
      apps::FreqmineParams p;
      p.fpgf_threads = team;
      return apps::freqmine_program(e, p);
    });
  };
  const sim::Program full = capture_with_team(0);
  const sim::Program trimmed = capture_with_team(7);

  Table t("Table 1 (ours)");
  t.set_header({"RTS", "speedup", "48-core exec", "FPGF@7 exec",
                "paper speedup", "paper 48c", "paper 7c"});
  struct PaperRow {
    const char* rts;
    const char* speedup;
    const char* t48;
    const char* t7;
  };
  const PaperRow paper[] = {{"gcc", "6.68", "1.68s", "1.69s"},
                            {"icc", "6.58", "1.71s", "1.72s"},
                            {"mir", "7.2", "1.65s", "1.68s"}};
  int i = 0;
  for (const auto& pol : paper_policies()) {
    const TimeNs t1 = run48(full, pol, 1).makespan();
    const TimeNs t48 = run48(full, pol, 48).makespan();
    const TimeNs t7team = run48(trimmed, pol, 48).makespan();
    t.add_row({pol.name,
               strings::trim_double(static_cast<double>(t1) / t48, 2),
               strings::human_time(t48), strings::human_time(t7team),
               paper[i].speedup, paper[i].t48, paper[i].t7});
    ++i;
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("(absolute times differ — simulated machine, scaled input — "
              "but the shape holds: flat across runtimes, 7-core team "
              "approximately retains the full-machine time)\n");
  return 0;
}
