// Extension (paper §6 future work, implemented): OpenMP 4.5 task-generating
// for-loops (taskloop).
//
// "Similarly there are no conceptual problems to visualize the recently
// announced task-generating for-loops (version 4.5) once they are supported
// by the profiler."
//
// This bench contrasts the two loop forms on the Blackscholes kernel:
// parallel-for produces chunk grains with book-keeping chains; taskloop
// produces a binary task tree whose leaves carry the iterations. A
// grainsize sweep shows the parallel-benefit trade-off the paper's cutoff
// analyses revolve around, now visible for 4.5 loops too.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;
  using front::Ctx;
  using front::ForOpts;

  print_header("Extension — OpenMP 4.5 taskloop",
               "§6: task-generating for-loops visualized as task grains; "
               "grainsize trades parallelism against parallel benefit");

  constexpr u64 kIters = 100000;
  constexpr Cycles kPerIter = 2600;  // a Black-Scholes-sized iteration

  // Reference: the same work as a parallel for-loop (chunks).
  const sim::Program pfor = capture_app("bs_parallel_for", [&](front::Engine&) {
    return front::TaskFn([](Ctx& ctx) {
      ForOpts fo;
      fo.sched = ScheduleKind::Dynamic;
      fo.chunk = 512;
      ctx.parallel_for(GG_SRC_NAMED("bs.c", 408, "bs_thread"), 0, kIters, fo,
                       [](u64, Ctx& c) { c.compute(kPerIter); });
    });
  });
  const Trace t_pfor = run48(pfor, sim::SimPolicy::mir(), 48, false);
  std::printf("parallel for (chunk 512): %zu chunk grains, makespan %s\n",
              t_pfor.chunks.size(),
              strings::human_time(t_pfor.makespan()).c_str());

  Table t("taskloop grainsize sweep (48 cores)");
  t.set_header({"grainsize", "task grains", "makespan", "low benefit %",
                "low parallelism %"});
  for (u64 grain : {u64{8}, u64{64}, u64{512}, u64{4096}, u64{32768}}) {
    const sim::Program prog =
        capture_app("bs_taskloop", [&](front::Engine&) {
          return front::TaskFn([grain](Ctx& ctx) {
            ctx.taskloop(GG_SRC_NAMED("bs.c", 408, "bs_thread"), 0, kIters,
                         grain, [](u64, Ctx& c) { c.compute(kPerIter); });
          });
        });
    const BenchAnalysis b = analyze48(prog, sim::SimPolicy::mir(), 48,
                                      /*with_baseline=*/false,
                                      /*memory_model=*/false);
    t.add_row({std::to_string(grain),
               std::to_string(b.trace.tasks.size() - 1),
               strings::human_time(b.trace.makespan()),
               strings::trim_double(
                   flagged_percent(b.analysis, Problem::LowParallelBenefit),
                   1),
               strings::trim_double(
                   flagged_percent(b.analysis, Problem::LowParallelism), 1)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("small grainsizes flood the graph with low-benefit grains; "
              "large ones starve the 48 cores — the same cutoff story the "
              "paper tells for tasks, now measured for 4.5 taskloops.\n");
  return 0;
}
