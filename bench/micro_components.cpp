// Google-benchmark micro suite for the performance-critical components:
// the Chase-Lev deque (the runtime's hot path), trace recording, grain
// graph construction, metric derivation, and reduction passes.
#include <benchmark/benchmark.h>

#include "apps/fib.hpp"
#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "graph/reductions.hpp"
#include "metrics/metrics.hpp"
#include "rts/chase_lev_deque.hpp"
#include "trace/serialize.hpp"

#include <sstream>
#include "support/bench_support.hpp"

namespace {

using namespace gg;

void BM_DequePushPop(benchmark::State& state) {
  rts::ChaseLevDeque<int*> dq;
  int v = 0;
  for (auto _ : state) {
    dq.push(&v);
    benchmark::DoNotOptimize(dq.pop());
  }
}
BENCHMARK(BM_DequePushPop);

void BM_DequePushSteal(benchmark::State& state) {
  rts::ChaseLevDeque<int*> dq;
  int v = 0;
  for (auto _ : state) {
    dq.push(&v);
    benchmark::DoNotOptimize(dq.steal());
  }
}
BENCHMARK(BM_DequePushSteal);

// Shared fixture: a fib trace of the requested depth.
Trace make_trace(int n) {
  const sim::Program p = bench::capture_app("fib", [&](front::Engine& e) {
    apps::FibParams fp;
    fp.n = n;
    fp.cutoff = n;  // tasks everywhere
    return apps::fib_program(e, fp);
  });
  return bench::run48(p, sim::SimPolicy::mir(), 48, false);
}

void BM_Simulate(benchmark::State& state) {
  const sim::Program p = bench::capture_app("fib", [&](front::Engine& e) {
    apps::FibParams fp;
    fp.n = static_cast<int>(state.range(0));
    fp.cutoff = fp.n;
    return apps::fib_program(e, fp);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::run48(p, sim::SimPolicy::mir(), 48, false));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(p.task_count()));
}
BENCHMARK(BM_Simulate)->Arg(12)->Arg(16);

void BM_GraphBuild(benchmark::State& state) {
  const Trace t = make_trace(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GrainGraph::build(t));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(t.tasks.size()));
}
BENCHMARK(BM_GraphBuild)->Arg(12)->Arg(16);

void BM_Metrics(benchmark::State& state) {
  const Trace t = make_trace(14);
  const GrainGraph g = GrainGraph::build(t);
  const GrainTable grains = GrainTable::build(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_metrics(t, g, grains, Topology::opteron48()));
  }
}
BENCHMARK(BM_Metrics);

void BM_SerializeText(benchmark::State& state) {
  const Trace t = make_trace(14);
  for (auto _ : state) {
    std::ostringstream os;
    save_trace(t, os);
    benchmark::DoNotOptimize(os.str().size());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(t.tasks.size()));
}
BENCHMARK(BM_SerializeText);

void BM_SerializeBinary(benchmark::State& state) {
  const Trace t = make_trace(14);
  for (auto _ : state) {
    std::ostringstream os;
    save_trace_binary(t, os);
    benchmark::DoNotOptimize(os.str().size());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(t.tasks.size()));
}
BENCHMARK(BM_SerializeBinary);

void BM_LoadBinary(benchmark::State& state) {
  const Trace t = make_trace(14);
  std::ostringstream os;
  save_trace_binary(t, os);
  const std::string bytes = os.str();
  for (auto _ : state) {
    std::istringstream is(bytes);
    benchmark::DoNotOptimize(load_trace_binary(is));
  }
}
BENCHMARK(BM_LoadBinary);

void BM_Reduce(benchmark::State& state) {
  const Trace t = make_trace(16);
  const GrainGraph g = GrainGraph::build(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_graph(g, ReductionOptions{}));
  }
}
BENCHMARK(BM_Reduce);

}  // namespace

BENCHMARK_MAIN();
