// Figure 10 + the §4.3.4 resolution: "Load balance of second instance of
// loop FPGF which contains 1292 chunks of disproportionate size. Load
// balance is 35.5 on 48 cores and improves to 1.06 on 7 cores." The 7 comes
// from a bin-packer computing the minimum cores that retain the makespan.
#include <cstdio>

#include "analysis/binpack.hpp"
#include "apps/freqmine.hpp"
#include "common/strings.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Figure 10 — FPGF load balance and the bin-packed team size",
               "1292 chunks of disproportionate size; LB 35.5 @48 cores -> "
               "1.06 @7 cores (bin-packer says 7 cores suffice)");

  auto run_with_team = [&](int team) {
    const sim::Program prog = capture_app("freqmine", [&](front::Engine& e) {
      apps::FreqmineParams p;
      p.fpgf_threads = team;
      return apps::freqmine_program(e, p);
    });
    return run48(prog, sim::SimPolicy::mir(), 48);
  };

  const Trace full = run_with_team(0);
  const LoopRec& fpgf = full.loops[1];  // the 2nd instance
  const auto chunks = full.chunks_of(fpgf.uid);
  std::printf("FPGF (2nd loop instance): %zu chunks (paper: 1292)\n",
              chunks.size());
  const double lb48 = loop_load_balance(full, fpgf);
  std::printf("load balance on 48 cores: %.2f (paper: 35.5)\n", lb48);

  // Bin-pack the chunk durations against the loop's makespan.
  std::vector<u64> durations;
  TimeNs loop_span = fpgf.end - fpgf.start;
  for (const ChunkRec* c : chunks) durations.push_back(c->end - c->start);
  const BinPackResult pack = min_bins(durations, loop_span);
  std::printf("bin-packer: minimum cores retaining the %.2fms makespan = %d "
              "(%s; paper: 7)\n",
              static_cast<double>(loop_span) / 1e6, pack.bins,
              pack.exact ? "proven optimal" : "FFD bound");

  const Trace trimmed = run_with_team(pack.bins);
  const LoopRec& fpgf7 = trimmed.loops[1];
  const double lb7 = loop_load_balance(trimmed, fpgf7);
  std::printf("load balance with num_threads(%d): %.2f (paper: 1.06)\n",
              pack.bins, lb7);
  std::printf("FPGF loop time: 48-core %.2fms vs %d-core %.2fms "
              "(paper: 7 cores retain the makespan)\n",
              static_cast<double>(fpgf.end - fpgf.start) / 1e6, pack.bins,
              static_cast<double>(fpgf7.end - fpgf7.start) / 1e6);
  return 0;
}
