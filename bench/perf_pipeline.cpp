// perf_pipeline — end-to-end analysis pipeline benchmark: legacy path
// (istream parser + serial metrics) vs fast path (mmap ingestion +
// parallel decode + sharded graph/grain construction + parallel metrics)
// on a seeded synthetic trace.
//
//   perf_pipeline [--grains N] [--seed S] [--workers W] [--out file.json]
//                 [--skip-legacy] [--skip-text]
//
// Measures load + graph + grain-table + metrics + problem-view wall time
// per engine/io/thread-count combination on the same input file, checks
// every combination produces byte-identical analysis output (including a
// thread sweep over 1/2/4/8 workers and mmap vs read() ingestion), and
// writes machine-readable results to BENCH_analyze.json. Exit 1 on any
// parse error or output mismatch (so CI can gate on correctness without
// gating on timing). --skip-legacy / --skip-text drop the slow reference
// paths for very large runs (e.g. --grains 10000000), where the text
// round-trip would dominate the wall time and the memory budget.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "export/grain_csv.hpp"
#include "export/graphml.hpp"
#include "export/json_summary.hpp"
#include "support/bench_support.hpp"
#include "trace/serialize.hpp"
#include "trace/synth.hpp"

namespace {

using namespace gg;

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PathResult {
  i64 load_ns = 0;
  AnalysisTimings stages;
  std::string report;     ///< rendered textual report
  std::string summary;    ///< JSON summary bytes
  i64 total_ns() const { return load_ns + stages.total_ns(); }
};

/// Loads `path` with the given engine/io source and runs the full pipeline
/// with `threads` workers in every stage. Returns false on load failure.
bool run_path(const std::string& path, ParseEngine engine, IoSource io,
              int threads, PathResult& out) {
  LoadOptions lo;
  lo.engine = engine;
  lo.mode = LoadMode::Strict;
  lo.io = io;
  lo.threads = threads;
  const i64 t0 = now_ns();
  LoadResult lr = load_trace_file_ex(path, lo);
  out.load_ns = now_ns() - t0;
  if (!lr.usable()) {
    std::fprintf(stderr, "error: %s", lr.describe().c_str());
    return false;
  }
  AnalysisOptions opts;
  opts.threads = threads;
  opts.metrics.threads = threads;
  const Analysis a = analyze(*lr.trace, Topology::generic4(), opts,
                             &out.stages);
  out.report = render_report(*lr.trace, a);
  std::ostringstream js;
  write_json_summary(js, *lr.trace, a);
  out.summary = js.str();
  return true;
}

void emit_stages(std::ofstream& os, const std::string& name,
                 const PathResult& r) {
  os << "  \"" << name << "\": {\"load_ns\": " << r.load_ns
     << ", \"graph_ns\": " << r.stages.graph_ns
     << ", \"grains_ns\": " << r.stages.grains_ns
     << ", \"metrics_ns\": " << r.stages.metrics_ns
     << ", \"problems_ns\": " << r.stages.problems_ns
     << ", \"total_ns\": " << r.total_ns() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  SynthOptions sopts;
  sopts.grains = 1000000;
  std::string out_json = "BENCH_analyze.json";
  bool skip_legacy = false, skip_text = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grains") {
      sopts.grains = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      sopts.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--workers") {
      sopts.workers = std::atoi(value());
    } else if (arg == "--out") {
      out_json = value();
    } else if (arg == "--skip-legacy") {
      skip_legacy = true;
    } else if (arg == "--skip-text") {
      skip_text = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--grains N] [--seed S] [--workers W] "
                   "[--out file.json] [--skip-legacy] [--skip-text]\n",
                   argv[0]);
      return 2;
    }
  }
  if (skip_text) skip_legacy = true;  // the legacy engine is text-only

  bench::print_header(
      "analysis pipeline throughput (serial vs sharded-parallel)",
      "n/a (implementation benchmark; target >= 1M grains/s end-to-end)");

  std::printf("generating synthetic trace: %llu grains, %d workers, seed "
              "%llu\n",
              static_cast<unsigned long long>(sopts.grains), sopts.workers,
              static_cast<unsigned long long>(sopts.seed));
  const std::string dir = bench::out_dir();
  const std::string text_path = dir + "/perf_pipeline.ggtrace";
  const std::string bin_path = dir + "/perf_pipeline.ggbin";
  u64 n_grains = 0;
  int n_workers = 0;
  {
    // Scoped so the synthesized trace is freed before the measured loads:
    // at 10M grains the in-memory trace is multiple GB and keeping it
    // alive would double the peak footprint.
    const Trace trace = synth_trace(sopts);
    n_grains = trace.grain_count();
    n_workers = trace.meta.num_workers;
    if (!save_trace_file(trace, bin_path) ||
        (!skip_text && !save_trace_file(trace, text_path))) {
      std::fprintf(stderr, "error: cannot write trace files under %s\n",
                   dir.c_str());
      return 1;
    }
  }
  std::error_code ec;
  const u64 bin_bytes = std::filesystem::file_size(bin_path, ec);
  const u64 text_bytes =
      skip_text ? 0 : std::filesystem::file_size(text_path, ec);
  if (skip_text) {
    std::printf("trace file: %s (%.1f MB binary)\n", bin_path.c_str(),
                static_cast<double>(bin_bytes) / 1e6);
  } else {
    std::printf("trace files: %s (%.1f MB text), %s (%.1f MB binary)\n",
                text_path.c_str(), static_cast<double>(text_bytes) / 1e6,
                bin_path.c_str(), static_cast<double>(bin_bytes) / 1e6);
  }

  auto ms = [](i64 ns) { return static_cast<double>(ns) / 1e6; };
  auto print_path = [&](const std::string& name, const PathResult& r) {
    std::printf("%-18s load %9.1f ms, graph %9.1f ms, grains %9.1f ms, "
                "metrics %9.1f ms, problems %9.1f ms => total %9.1f ms\n",
                name.c_str(), ms(r.load_ns), ms(r.stages.graph_ns),
                ms(r.stages.grains_ns), ms(r.stages.metrics_ns),
                ms(r.stages.problems_ns), ms(r.total_ns()));
  };

  // The serial binary run is the correctness reference every other
  // combination must match byte-for-byte.
  PathResult serial;
  if (!run_path(bin_path, ParseEngine::Fast, IoSource::Mmap, /*threads=*/1,
                serial))
    return 1;
  print_path("serial/binary", serial);

  bool identical = true;
  auto gate = [&](const std::string& name, const PathResult& r) {
    if (r.report != serial.report || r.summary != serial.summary) {
      std::fprintf(stderr,
                   "error: %s output differs from the serial reference\n",
                   name.c_str());
      identical = false;
    }
  };

  PathResult parallel;
  if (!run_path(bin_path, ParseEngine::Fast, IoSource::Mmap, /*threads=*/0,
                parallel))
    return 1;
  print_path("parallel/binary", parallel);
  gate("parallel/binary", parallel);

  PathResult stream;
  if (!run_path(bin_path, ParseEngine::Fast, IoSource::Stream, /*threads=*/0,
                stream))
    return 1;
  print_path("stream/binary", stream);
  gate("stream/binary", stream);

  // Thread sweep: the sharded builders must be bit-identical at every
  // worker count, not just serial-vs-auto.
  struct SweepPoint {
    int threads = 0;
    i64 total_ns = 0;
  };
  std::vector<SweepPoint> sweep;
  for (const int t : {2, 4, 8}) {
    PathResult r;
    if (!run_path(bin_path, ParseEngine::Fast, IoSource::Mmap, t, r))
      return 1;
    print_path("t=" + std::to_string(t) + "/binary", r);
    gate("t=" + std::to_string(t) + "/binary", r);
    sweep.push_back({t, r.total_ns()});
  }

  PathResult legacy, fast_text;
  bool have_legacy = false, have_text = false;
  if (!skip_text) {
    if (!run_path(text_path, ParseEngine::Fast, IoSource::Mmap,
                  /*threads=*/0, fast_text))
      return 1;
    have_text = true;
    print_path("parallel/text", fast_text);
    gate("parallel/text", fast_text);
  }
  if (!skip_legacy) {
    if (!run_path(text_path, ParseEngine::Legacy, IoSource::Stream,
                  /*threads=*/1, legacy))
      return 1;
    have_legacy = true;
    print_path("legacy/text", legacy);
    gate("legacy/text", legacy);
  }

  const double serial_over_parallel =
      serial.total_ns() > 0 && parallel.total_ns() > 0
          ? static_cast<double>(serial.total_ns()) /
                static_cast<double>(parallel.total_ns())
          : 0.0;
  const double legacy_over_fast =
      have_legacy && legacy.total_ns() > 0 && parallel.total_ns() > 0
          ? static_cast<double>(legacy.total_ns()) /
                static_cast<double>(parallel.total_ns())
          : 0.0;
  const double grains_per_sec =
      parallel.total_ns() > 0
          ? static_cast<double>(n_grains) * 1e9 /
                static_cast<double>(parallel.total_ns())
          : 0.0;
  std::printf("parallel speedup over serial (binary): %.2fx\n",
              serial_over_parallel);
  if (have_legacy) {
    std::printf("end-to-end speedup (legacy/text vs parallel): %.2fx\n",
                legacy_over_fast);
  }
  std::printf("end-to-end throughput (parallel/binary): %.0f grains/s\n",
              grains_per_sec);
  std::printf("outputs byte-identical across paths: %s\n",
              identical ? "yes" : "NO");

  std::ofstream os(out_json);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", out_json.c_str());
    return 1;
  }
  os << "{\n  \"bench\": \"perf_pipeline\",\n  \"grains\": " << n_grains
     << ",\n  \"workers\": " << n_workers << ",\n  \"seed\": " << sopts.seed
     << ",\n  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ",\n  \"text_bytes\": " << text_bytes
     << ",\n  \"binary_bytes\": " << bin_bytes << ",\n";
  emit_stages(os, "serial_binary", serial);
  os << ",\n";
  emit_stages(os, "parallel_binary", parallel);
  os << ",\n";
  emit_stages(os, "stream_binary", stream);
  if (have_text) {
    os << ",\n";
    emit_stages(os, "parallel_text", fast_text);
  }
  if (have_legacy) {
    os << ",\n";
    emit_stages(os, "legacy_text", legacy);
  }
  os << ",\n  \"thread_sweep\": [";
  for (size_t i = 0; i < sweep.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"threads\": " << sweep[i].threads
       << ", \"total_ns\": " << sweep[i].total_ns << "}";
  }
  os << "]";
  os << ",\n  \"speedup_parallel_over_serial\": " << serial_over_parallel;
  if (have_legacy)
    os << ",\n  \"speedup_end_to_end\": " << legacy_over_fast;
  os << ",\n  \"grains_per_sec\": " << grains_per_sec
     << ",\n  \"outputs_identical\": " << (identical ? "true" : "false")
     << "\n}\n";
  os.close();
  std::printf("wrote %s\n", out_json.c_str());
  return identical ? 0 : 1;
}
