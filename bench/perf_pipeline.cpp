// perf_pipeline — end-to-end analysis pipeline benchmark: legacy path
// (istream parser + serial metrics) vs fast path (buffered parser +
// parallel metrics) on a seeded synthetic trace.
//
//   perf_pipeline [--grains N] [--seed S] [--workers W] [--out file.json]
//
// Measures load + graph + grain-table + metrics + problem-view wall time
// for both engines on the same input file, checks the two paths produce
// byte-identical analysis output, and writes machine-readable results to
// BENCH_analyze.json. Exit 1 on any parse error or output mismatch (so CI
// can gate on correctness without gating on timing).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "export/grain_csv.hpp"
#include "export/graphml.hpp"
#include "export/json_summary.hpp"
#include "support/bench_support.hpp"
#include "trace/serialize.hpp"
#include "trace/synth.hpp"

namespace {

using namespace gg;

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PathResult {
  i64 load_ns = 0;
  AnalysisTimings stages;
  std::string report;     ///< rendered textual report
  std::string summary;    ///< JSON summary bytes
  i64 total_ns() const { return load_ns + stages.total_ns(); }
};

/// Loads `path` with the given engine and runs the full pipeline.
/// Returns false on any load failure.
bool run_path(const std::string& path, ParseEngine engine, int threads,
              PathResult& out) {
  LoadOptions lo;
  lo.engine = engine;
  lo.mode = LoadMode::Strict;
  const i64 t0 = now_ns();
  LoadResult lr = load_trace_file_ex(path, lo);
  out.load_ns = now_ns() - t0;
  if (!lr.usable()) {
    std::fprintf(stderr, "error: %s", lr.describe().c_str());
    return false;
  }
  AnalysisOptions opts;
  opts.metrics.threads = threads;
  const Analysis a = analyze(*lr.trace, Topology::generic4(), opts,
                             &out.stages);
  out.report = render_report(*lr.trace, a);
  std::ostringstream js;
  write_json_summary(js, *lr.trace, a);
  out.summary = js.str();
  return true;
}

void emit_stages(std::ofstream& os, const char* name, const PathResult& r) {
  os << "  \"" << name << "\": {\"load_ns\": " << r.load_ns
     << ", \"graph_ns\": " << r.stages.graph_ns
     << ", \"grains_ns\": " << r.stages.grains_ns
     << ", \"metrics_ns\": " << r.stages.metrics_ns
     << ", \"problems_ns\": " << r.stages.problems_ns
     << ", \"total_ns\": " << r.total_ns() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  SynthOptions sopts;
  sopts.grains = 1000000;
  std::string out_json = "BENCH_analyze.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grains") {
      sopts.grains = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      sopts.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--workers") {
      sopts.workers = std::atoi(value());
    } else if (arg == "--out") {
      out_json = value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--grains N] [--seed S] [--workers W] "
                   "[--out file.json]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "analysis pipeline throughput (fast vs legacy engine)",
      "n/a (implementation benchmark; target >= 5x end-to-end)");

  std::printf("generating synthetic trace: %llu grains, %d workers, seed "
              "%llu\n",
              static_cast<unsigned long long>(sopts.grains), sopts.workers,
              static_cast<unsigned long long>(sopts.seed));
  const Trace trace = synth_trace(sopts);
  const std::string dir = bench::out_dir();
  const std::string text_path = dir + "/perf_pipeline.ggtrace";
  const std::string bin_path = dir + "/perf_pipeline.ggbin";
  if (!save_trace_file(trace, text_path) ||
      !save_trace_file(trace, bin_path)) {
    std::fprintf(stderr, "error: cannot write trace files under %s\n",
                 dir.c_str());
    return 1;
  }
  std::error_code ec;
  const u64 text_bytes = std::filesystem::file_size(text_path, ec);
  const u64 bin_bytes = std::filesystem::file_size(bin_path, ec);
  std::printf("trace files: %s (%.1f MB text), %s (%.1f MB binary)\n",
              text_path.c_str(), static_cast<double>(text_bytes) / 1e6,
              bin_path.c_str(), static_cast<double>(bin_bytes) / 1e6);

  PathResult legacy, fast, fast_bin;
  if (!run_path(text_path, ParseEngine::Legacy, /*threads=*/1, legacy))
    return 1;
  if (!run_path(text_path, ParseEngine::Fast, /*threads=*/0, fast)) return 1;
  if (!run_path(bin_path, ParseEngine::Fast, /*threads=*/0, fast_bin))
    return 1;

  const bool identical = legacy.report == fast.report &&
                         legacy.summary == fast.summary &&
                         legacy.report == fast_bin.report &&
                         legacy.summary == fast_bin.summary;
  if (!identical) {
    std::fprintf(stderr,
                 "error: fast and legacy paths produced different output\n");
  }

  auto ms = [](i64 ns) { return static_cast<double>(ns) / 1e6; };
  auto print_path = [&](const char* name, const PathResult& r) {
    std::printf("%-12s load %9.1f ms, graph %9.1f ms, grains %9.1f ms, "
                "metrics %9.1f ms, problems %9.1f ms => total %9.1f ms\n",
                name, ms(r.load_ns), ms(r.stages.graph_ns),
                ms(r.stages.grains_ns), ms(r.stages.metrics_ns),
                ms(r.stages.problems_ns), ms(r.total_ns()));
  };
  print_path("legacy/text", legacy);
  print_path("fast/text", fast);
  print_path("fast/binary", fast_bin);
  const double speedup = legacy.total_ns() > 0 && fast.total_ns() > 0
                             ? static_cast<double>(legacy.total_ns()) /
                                   static_cast<double>(fast.total_ns())
                             : 0.0;
  std::printf("end-to-end speedup (legacy/text vs fast/text): %.2fx\n",
              speedup);
  std::printf("outputs byte-identical across paths: %s\n",
              identical ? "yes" : "NO");

  std::ofstream os(out_json);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", out_json.c_str());
    return 1;
  }
  os << "{\n  \"bench\": \"perf_pipeline\",\n  \"grains\": "
     << trace.grain_count() << ",\n  \"workers\": " << trace.meta.num_workers
     << ",\n  \"seed\": " << sopts.seed
     << ",\n  \"text_bytes\": " << text_bytes
     << ",\n  \"binary_bytes\": " << bin_bytes << ",\n";
  emit_stages(os, "legacy_text", legacy);
  os << ",\n";
  emit_stages(os, "fast_text", fast);
  os << ",\n";
  emit_stages(os, "fast_binary", fast_bin);
  os << ",\n  \"speedup_end_to_end\": " << speedup
     << ",\n  \"outputs_identical\": " << (identical ? "true" : "false")
     << "\n}\n";
  os.close();
  std::printf("wrote %s\n", out_json.c_str());
  return identical ? 0 : 1;
}
