// Ablation: machine-model sensitivity.
//
// The paper's numbers come from one machine (48-core Opteron). This
// ablation re-runs the Fig. 1-style sweep on different modeled machines to
// check which conclusions are topology-sensitive: the cutoff bugs
// (kdtree/strassen) hurt on any machine, while the NUMA stories (sort
// placement, botsspar inflation) shrink with fewer sockets.
#include <cstdio>

#include "apps/kdtree.hpp"
#include "apps/sort.hpp"
#include "apps/sparselu.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Ablation — topology sensitivity",
               "cutoff bugs hurt on any machine; NUMA effects scale with "
               "socket count");

  struct Machine {
    const char* name;
    Topology topo;
    int cores;
  };
  const std::vector<Machine> machines = {
      {"opteron48 (4 sockets x 2 nodes x 6)", Topology::opteron48(), 48},
      {"generic16 (2 sockets x 2 nodes x 4)", Topology::generic16(), 16},
      {"generic4 (single socket)", Topology::generic4(), 4},
  };

  auto ratio_on = [&](const Machine& m,
                      const std::function<sim::Program(bool)>& capture,
                      bool memory) {
    const sim::Program before = capture(false);
    const sim::Program after = capture(true);
    sim::SimOptions o;
    o.topology = m.topo;
    o.num_cores = m.cores;
    o.memory_model = memory;
    const TimeNs tb = sim::simulate(before, o).makespan();
    const TimeNs ta = sim::simulate(after, o).makespan();
    return static_cast<double>(tb) / static_cast<double>(ta);
  };

  auto capture_kdtree = [](bool fixed) {
    return capture_app("kdtree", [&](front::Engine& e) {
      apps::KdtreeParams p;
      p.num_points = 8000;
      p.fixed = fixed;
      return apps::kdtree_program(e, p);
    });
  };
  auto capture_sort = [](bool fixed) {
    return capture_app("sort", [&](front::Engine& e) {
      apps::SortParams p;
      p.num_elements = 1 << 19;
      p.quick_cutoff = 1 << 13;
      p.merge_cutoff = 1 << 13;
      p.placement = fixed ? front::PagePlacement::RoundRobin
                          : front::PagePlacement::FirstTouch;
      return apps::sort_program(e, p);
    });
  };
  auto capture_botsspar = [](bool fixed) {
    return capture_app("botsspar", [&](front::Engine& e) {
      apps::SparseLuParams p;
      p.blocks = 12;
      p.block_size = 24;
      p.interchange = fixed;
      return apps::sparselu_program(e, p);
    });
  };

  Table t("fix benefit (makespan before / after) per machine");
  t.set_header({"machine", "kdtree depth fix", "sort page placement",
                "botsspar interchange"});
  for (const Machine& m : machines) {
    t.add_row({m.name,
               strings::trim_double(ratio_on(m, capture_kdtree, false), 2) + "x",
               strings::trim_double(ratio_on(m, capture_sort, true), 2) + "x",
               strings::trim_double(ratio_on(m, capture_botsspar, true), 2) +
                   "x"});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("expected shape: the cutoff fix (col 1) helps on every machine "
              "and grows with cores; page placement (col 2) is a pure NUMA "
              "effect and fades to 1x on a single socket; the interchange "
              "(col 3) is chiefly a cache-access fix, so it helps "
              "everywhere.\n");
  return 0;
}
