// Figure 7: "FFT performance grouped by definition in source files. Several
// grains have low parallel benefit in the original program. Grains show
// good parallel benefit after optimizations. Not all grains are created in
// the optimized program due to cutoffs."
//
// The graph singled out fft.c:4680 as the first optimization candidate:
// high prevalence of poor parallel benefit AND the heaviest contribution to
// total program work.
#include <cstdio>

#include "apps/fft.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Figure 7 — FFT parallel benefit by source definition",
               "fft.c:4680 has high low-benefit prevalence and the largest "
               "work share; after cutoffs all created grains have good "
               "benefit and far fewer grains exist");

  auto run_case = [&](u64 cutoff) {
    const sim::Program prog = capture_app("fft", [&](front::Engine& e) {
      apps::FftParams p;
      p.num_samples = 1 << 16;
      p.spawn_cutoff = cutoff;
      return apps::fft_program(e, p);
    });
    return analyze48(prog, sim::SimPolicy::mir(), 48);
  };

  const BenchAnalysis before = run_case(2);
  const BenchAnalysis after = run_case(1 << 8);

  auto table_for = [](const char* title, const BenchAnalysis& b) {
    Table t(title);
    t.set_header({"definition", "grains", "work share %", "low benefit %",
                  "median benefit"});
    for (const SourceProfileRow& r : b.analysis.sources) {
      t.add_row({r.source, std::to_string(r.grain_count),
                 strings::trim_double(100.0 * r.work_share, 1),
                 strings::trim_double(r.low_benefit_percent, 1),
                 strings::trim_double(r.median_parallel_benefit, 2)});
    }
    return t.to_text();
  };
  std::printf("%s", table_for("before (no cutoff)", before).c_str());
  std::printf("total grains before: %zu\n\n", before.analysis.grains.size());
  std::printf("%s", table_for("after (recursion cutoff)", after).c_str());
  std::printf("total grains after: %zu (not all grains are created due to "
              "cutoffs)\n",
              after.analysis.grains.size());
  std::printf("48-core makespan: before %.2fms -> after %.2fms\n",
              static_cast<double>(before.trace.makespan()) / 1e6,
              static_cast<double>(after.trace.makespan()) / 1e6);
  return 0;
}
