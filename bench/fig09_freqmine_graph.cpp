// Figure 9: "Grain graph of Freqmine with evaluation input contains 6985
// grains. (a) The large magenta grains from for-loop in
// FP_tree::FP_growth_first() give bad load balance of 35.5. (b) Most grains
// are too small and provide poor parallel benefit... Poor parallel benefit
// also seen in other loops."
#include <cstdio>

#include "apps/freqmine.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "export/graphml.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Figure 9 — Freqmine grain graph",
               "6985 grains; FPGF loop load balance 35.5; most grains too "
               "small (poor parallel benefit), in other loops too");

  const sim::Program prog = capture_app("freqmine", [&](front::Engine& e) {
    apps::FreqmineParams p;
    return apps::freqmine_program(e, p);
  });
  const BenchAnalysis b = analyze48(prog, sim::SimPolicy::mir(), 48);

  std::printf("grains: %zu (paper: 6985)\n", b.analysis.grains.size());
  Table t("per-loop view");
  t.set_header({"loop (source)", "chunks", "load balance", "low benefit %"});
  for (const LoopRec& loop : b.trace.loops) {
    const auto chunks = b.trace.chunks_of(loop.uid);
    size_t low = 0, idx = 0;
    const auto& view = b.analysis.problems[static_cast<size_t>(
        Problem::LowParallelBenefit)];
    for (size_t i = 0; i < b.analysis.grains.size(); ++i) {
      const Grain& g = b.analysis.grains.grains()[i];
      if (g.kind == GrainKind::Chunk && g.loop == loop.uid) {
        ++idx;
        if (view.flagged[i]) ++low;
      }
    }
    t.add_row({std::string(b.trace.strings.get(loop.src)),
               std::to_string(chunks.size()),
               strings::trim_double(
                   b.analysis.metrics.loop_load_balance.at(loop.uid), 2),
               strings::trim_double(
                   idx == 0 ? 0.0 : 100.0 * static_cast<double>(low) / idx,
                   1)});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("(paper: FPGF's second instance takes ~70%% of execution time "
              "and balances at 35.5 on 48 cores)\n");

  const std::string dir = out_dir();
  GraphMlOptions gopts;
  gopts.view = Problem::LowParallelBenefit;
  write_graphml_file(dir + "/fig09_freqmine_benefit.graphml", b.analysis.graph,
                     b.trace, &b.analysis.grains, &b.analysis.metrics, gopts);
  std::printf("exported: %s/fig09_freqmine_benefit.graphml\n", dir.c_str());
  return 0;
}
