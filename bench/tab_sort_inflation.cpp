// §4.3.1 table: Sort's mutually-exclusive problems before/after round-robin
// NUMA page distribution:
//
//   | Problem                           | Before | After |
//   | Work Inflation                    | 68.54  | 37.08 |
//   | Poor Memory Hierarchy Utilization | 56.05  | 30.11 |
//
// (percent of affected grains). We reproduce the direction and rough
// magnitude: first-touch placement homes all pages on one node, so 48-core
// grains inflate; round-robin distribution halves the affected share.
#include <cstdio>

#include "apps/sort.hpp"
#include "common/table.hpp"
#include "common/strings.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("§4.3.1 table — Sort work inflation vs page placement",
               "work inflation 68.54% -> 37.08%; poor mem util 56.05% -> "
               "30.11% after round-robin pages");

  auto measure = [&](front::PagePlacement placement) {
    const sim::Program prog = capture_app("sort", [&](front::Engine& e) {
      apps::SortParams p;
      p.num_elements = 1 << 20;
      p.quick_cutoff = 1 << 14;
      p.merge_cutoff = 1 << 14;
      p.placement = placement;
      return apps::sort_program(e, p);
    });
    BenchAnalysis b =
        analyze48(prog, sim::SimPolicy::mir(), 48, /*with_baseline=*/true);
    // The paper lowers the deviation threshold to inspect inflation; keep
    // the default (2.0) for the headline numbers and also report 1.2.
    AnalysisOptions ao;
    ao.baseline = &b.baseline;
    ProblemThresholds th =
        ProblemThresholds::defaults(48, Topology::opteron48());
    th.work_deviation_max = 1.2;
    ao.thresholds = th;
    const Analysis sensitive = analyze(b.trace, Topology::opteron48(), ao);
    struct Out {
      double inflation_default, inflation_12, mem_util;
      TimeNs makespan;
    };
    return Out{flagged_percent(b.analysis, Problem::WorkInflation),
               flagged_percent(sensitive, Problem::WorkInflation),
               flagged_percent(b.analysis, Problem::PoorMemUtil),
               b.trace.makespan()};
  };

  const auto before = measure(front::PagePlacement::FirstTouch);
  const auto after = measure(front::PagePlacement::RoundRobin);

  Table t("affected grains (%), before (first-touch) vs after (round-robin)");
  t.set_header({"problem", "paper before", "paper after", "ours before",
                "ours after"});
  t.add_row({"work inflation (deviation > 1.2)", "68.54", "37.08",
             strings::trim_double(before.inflation_12, 2),
             strings::trim_double(after.inflation_12, 2)});
  t.add_row({"work inflation (deviation > 2.0)", "-", "-",
             strings::trim_double(before.inflation_default, 2),
             strings::trim_double(after.inflation_default, 2)});
  t.add_row({"poor memory hierarchy utilization", "56.05", "30.11",
             strings::trim_double(before.mem_util, 2),
             strings::trim_double(after.mem_util, 2)});
  std::printf("%s", t.to_text().c_str());
  std::printf("48-core makespan: first-touch %.2fms -> round-robin %.2fms "
              "(paper: performance improved on all runtimes)\n",
              static_cast<double>(before.makespan) / 1e6,
              static_cast<double>(after.makespan) / 1e6);
  return 0;
}
