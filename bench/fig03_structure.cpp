// Figure 3: grain-graph structure on the paper's two illustration programs:
// (a-f) task foo creating bar/baz with computation in between, and (b,g,h)
// a 20-iteration parallel for-loop in chunks of 4 on two threads. Prints
// node/edge-kind inventories before and after each reduction and exports
// DOT renderings of every stage.
#include <cstdio>

#include "export/dot.hpp"
#include "export/graphml.hpp"
#include "graph/reductions.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace gg;

void print_inventory(const char* name, const GrainGraph& g) {
  size_t kinds[5] = {0, 0, 0, 0, 0};
  for (const GraphNode& n : g.nodes()) kinds[static_cast<size_t>(n.kind)]++;
  size_t ekinds[3] = {0, 0, 0};
  for (const GraphEdge& e : g.edges()) ekinds[static_cast<size_t>(e.kind)]++;
  std::printf(
      "%-28s nodes=%3zu (frag %zu, fork %zu, join %zu, book %zu, chunk %zu)  "
      "edges=%3zu (creation %zu, join %zu, continuation %zu)\n",
      name, g.node_count(), kinds[0], kinds[1], kinds[2], kinds[3], kinds[4],
      g.edge_count(), ekinds[0], ekinds[1], ekinds[2]);
}

}  // namespace

int main() {
  using namespace gg;
  using namespace gg::bench;
  using front::Ctx;
  using front::ForOpts;

  print_header("Figure 3 — grain graph structure and reductions",
               "five node kinds, three edge kinds; fragment/fork/book-keeping "
               "reductions shrink the graph while conserving weights");

  // (a) task program: foo { spawn bar; compute; spawn baz; compute;
  // taskwait; }.
  const sim::Program taskp = capture_app("fig3a", [](front::Engine&) {
    return front::TaskFn([](Ctx& ctx) {
      ctx.compute(10000);
      ctx.spawn(GG_SRC_NAMED("fig3.c", 3, "bar"),
                [](Ctx& c) { c.compute(40000); });
      ctx.compute(15000);
      ctx.spawn(GG_SRC_NAMED("fig3.c", 5, "baz"),
                [](Ctx& c) { c.compute(25000); });
      ctx.compute(5000);
      ctx.taskwait();
      ctx.compute(2000);
    });
  });
  // (b) loop program: 20 iterations, chunks of 4, two threads.
  const sim::Program loopp = capture_app("fig3b", [](front::Engine&) {
    return front::TaskFn([](Ctx& ctx) {
      ForOpts fo;
      fo.sched = ScheduleKind::Static;
      fo.chunk = 4;
      ctx.parallel_for(GG_SRC_NAMED("fig3.c", 20, "loop"), 0, 20, fo,
                       [](u64, Ctx& c) { c.compute(30000); });
    });
  });

  sim::SimOptions two_cores;
  two_cores.num_cores = 2;
  const Trace task_trace = sim::simulate(taskp, two_cores);
  const Trace loop_trace = sim::simulate(loopp, two_cores);

  const GrainGraph task_g = GrainGraph::build(task_trace);
  const GrainGraph loop_g = GrainGraph::build(loop_trace);
  std::printf("-- Fig. 3c: task program (foo spawns bar, baz) --\n");
  print_inventory("unreduced", task_g);
  ReductionOptions frag_only{true, false, false};
  ReductionOptions fork_only{false, true, false};
  print_inventory("fragment reduction (3d)", reduce_graph(task_g, frag_only));
  print_inventory("fork reduction (3e)", reduce_graph(task_g, fork_only));
  print_inventory("both", reduce_graph(task_g, ReductionOptions{}));

  std::printf("\n-- Fig. 3g: for-loop on two threads (5 chunks of 4) --\n");
  print_inventory("unreduced", loop_g);
  ReductionOptions book_only{false, false, true};
  print_inventory("book-keeping grouped (3h)",
                  reduce_graph(loop_g, book_only));

  const std::string dir = bench::out_dir();
  write_dot_file(dir + "/fig03_tasks.dot", task_g, task_trace);
  write_dot_file(dir + "/fig03_loop.dot", loop_g, loop_trace);
  write_dot_file(dir + "/fig03_tasks_reduced.dot",
                 reduce_graph(task_g, ReductionOptions{}), task_trace);
  GraphMlOptions gopts;
  write_graphml_file(dir + "/fig03_tasks.graphml", task_g, task_trace, nullptr,
                     nullptr, gopts);
  std::printf("\nexported: %s/fig03_*.dot, fig03_tasks.graphml\n",
              dir.c_str());
  return 0;
}
