// perf_telemetry — self-telemetry overhead gate for the analysis pipeline.
//
//   perf_telemetry [--grains N] [--seed S] [--workers W] [--reps R]
//                  [--out file.json]
//
// The telemetry layer (src/obs) is compiled in but off by default: every
// call site probes one atomic pointer and takes an untaken branch when no
// context is installed. This bench verifies that contract on the full
// pipeline (load + analyze + report + JSON summary) over a seeded
// synthetic trace, three interleaved arms, median of R reps each:
//
//   baseline  telemetry off (the shipped default)
//   disabled  the identical off configuration, sampled independently —
//             baseline vs disabled is an A/A comparison, so any measured
//             gap is the bench's own noise floor; the 1% gate on it fails
//             if the off path ever grows real work (e.g. a span that
//             reads the clock unconditionally would also show up in the
//             direct per-site cost below)
//   enabled   obs::Telemetry installed (registry + span tracer live)
//
// It also micro-times the disabled call sites directly (PhaseSpan with no
// tracer + a current_registry() probe) and scales by the sites per run,
// giving a noise-free upper bound on the off-path cost. All three arms
// must produce byte-identical report and JSON bytes. Machine-readable
// results go to BENCH_telemetry.json; exit 1 when the gate or the
// byte-identity check fails.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "export/json_summary.hpp"
#include "obs/telemetry.hpp"
#include "support/bench_support.hpp"
#include "trace/serialize.hpp"
#include "trace/synth.hpp"

namespace {

using namespace gg;

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Obs call sites executed by one pipeline run: four analysis stage spans,
/// five metric pass spans, and three registry probes in analyze().
constexpr double kSitesPerRun = 12.0;

struct RunResult {
  i64 wall_ns = 0;
  std::string report;
  std::string summary;
};

/// One full pipeline pass: load (fast engine), analyze, render the text
/// report and the JSON summary. `telemetry` non-null installs the context
/// for the duration of the run.
bool run_once(const std::string& path, obs::Telemetry* telemetry,
              RunResult& out) {
  obs::install(telemetry);
  const i64 t0 = now_ns();
  LoadOptions lo;
  lo.mode = LoadMode::Strict;
  LoadResult lr = load_trace_file_ex(path, lo);
  if (!lr.usable()) {
    obs::install(nullptr);
    std::fprintf(stderr, "error: %s", lr.describe().c_str());
    return false;
  }
  const Analysis a = analyze(*lr.trace, Topology::generic4());
  out.report = render_report(*lr.trace, a);
  std::ostringstream js;
  write_json_summary(js, *lr.trace, a);
  out.summary = js.str();
  out.wall_ns = now_ns() - t0;
  obs::install(nullptr);
  return true;
}

i64 median(std::vector<i64> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Per-call cost of a disabled call site: a PhaseSpan that never finds a
/// tracer plus one current_registry() probe. Nothing may be installed.
double disabled_site_ns() {
  constexpr int kIters = 1000000;
  u64 sink = 0;
  const i64 t0 = now_ns();
  for (int i = 0; i < kIters; ++i) {
    obs::PhaseSpan span("bench.site");
    sink += obs::current_registry() != nullptr ? 1u : 0u;
  }
  const i64 t1 = now_ns();
  if (sink != 0) std::fprintf(stderr, "error: registry unexpectedly set\n");
  return static_cast<double>(t1 - t0) / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  SynthOptions sopts;
  sopts.grains = 100000;
  int reps = 7;
  std::string out_json = "BENCH_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grains") {
      sopts.grains = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      sopts.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--workers") {
      sopts.workers = std::atoi(value());
    } else if (arg == "--reps") {
      reps = std::atoi(value());
    } else if (arg == "--out") {
      out_json = value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--grains N] [--seed S] [--workers W] "
                   "[--reps R] [--out file.json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  bench::print_header(
      "self-telemetry overhead (disabled path must stay under 1%)",
      "n/a (tool-quality gate; MIR's own profiler budget is 2.5%)");

  std::printf("generating synthetic trace: %llu grains, %d workers, seed "
              "%llu\n",
              static_cast<unsigned long long>(sopts.grains), sopts.workers,
              static_cast<unsigned long long>(sopts.seed));
  const Trace trace = synth_trace(sopts);
  const std::string path = bench::out_dir() + "/perf_telemetry.ggbin";
  if (!save_trace_file(trace, path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }

  // Warm the page cache and capture the reference output bytes.
  RunResult reference;
  if (!run_once(path, nullptr, reference)) return 1;

  std::vector<i64> baseline_ns, disabled_ns, enabled_ns;
  bool identical = true;
  for (int r = 0; r < reps; ++r) {
    RunResult a, b, c;
    auto telemetry = std::make_unique<obs::Telemetry>();
    if (!run_once(path, nullptr, a) || !run_once(path, nullptr, b) ||
        !run_once(path, telemetry.get(), c))
      return 1;
    baseline_ns.push_back(a.wall_ns);
    disabled_ns.push_back(b.wall_ns);
    enabled_ns.push_back(c.wall_ns);
    for (const RunResult* rr : {&a, &b, &c})
      identical = identical && rr->report == reference.report &&
                  rr->summary == reference.summary;
  }
  if (!identical)
    std::fprintf(stderr, "error: telemetry arms changed output bytes\n");

  const i64 base = median(baseline_ns);
  const i64 off = median(disabled_ns);
  const i64 on = median(enabled_ns);
  const double off_pct =
      base > 0 ? (static_cast<double>(off) / static_cast<double>(base) - 1.0) *
                     100.0
               : 0.0;
  const double on_pct =
      base > 0 ? (static_cast<double>(on) / static_cast<double>(base) - 1.0) *
                     100.0
               : 0.0;
  const double site_ns = disabled_site_ns();
  const double site_pct = base > 0 ? site_ns * kSitesPerRun /
                                         static_cast<double>(base) * 100.0
                                   : 0.0;
  const double gate_pct = 1.0;
  const bool gate_ok = off_pct <= gate_pct && site_pct <= gate_pct;

  auto ms = [](i64 ns) { return static_cast<double>(ns) / 1e6; };
  std::printf("pipeline medians over %d reps (interleaved):\n", reps);
  std::printf("  baseline (telemetry off)   %9.2f ms\n", ms(base));
  std::printf("  disabled (off, arm 2)      %9.2f ms  (%+.3f%%)\n", ms(off),
              off_pct);
  std::printf("  enabled  (registry+spans)  %9.2f ms  (%+.3f%%)\n", ms(on),
              on_pct);
  std::printf("disabled call site: %.2f ns/site x %.0f sites/run = %.5f%% "
              "of a run\n",
              site_ns, kSitesPerRun, site_pct);
  std::printf("outputs byte-identical across arms: %s\n",
              identical ? "yes" : "NO");
  std::printf("gate: disabled-path overhead <= %.1f%%: %s\n", gate_pct,
              gate_ok ? "pass" : "FAIL");

  std::ofstream os(out_json);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", out_json.c_str());
    return 1;
  }
  os << "{\n  \"bench\": \"perf_telemetry\",\n  \"grains\": "
     << trace.grain_count() << ",\n  \"workers\": " << trace.meta.num_workers
     << ",\n  \"seed\": " << sopts.seed << ",\n  \"reps\": " << reps
     << ",\n  \"baseline_ns\": " << base << ",\n  \"disabled_ns\": " << off
     << ",\n  \"enabled_ns\": " << on << ",\n  \"disabled_overhead_pct\": "
     << off_pct << ",\n  \"enabled_overhead_pct\": " << on_pct
     << ",\n  \"disabled_site_ns\": " << site_ns
     << ",\n  \"disabled_site_cost_pct\": " << site_pct
     << ",\n  \"outputs_identical\": " << (identical ? "true" : "false")
     << ",\n  \"gate_pct\": " << gate_pct
     << ",\n  \"pass\": " << (gate_ok && identical ? "true" : "false")
     << "\n}\n";
  os.close();
  std::printf("wrote %s\n", out_json.c_str());
  return gate_ok && identical ? 0 : 1;
}
