// Ablation: instantaneous-parallelism interval choice and flavor (§3.2).
//
// "Interval size is a balance between accuracy and post-processing time. We
// provide the minimum grain length, the smallest difference between when a
// grain starts and another grain ends, and the median grain length as
// default choices. The metric comes in two flavors: optimistic... and
// conservative..."
#include <chrono>
#include <cstdio>

#include "apps/sort.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Ablation — instantaneous parallelism intervals and flavors",
               "interval presets trade accuracy for post-processing time; "
               "conservative <= optimistic everywhere");

  const sim::Program prog = capture_app("sort", [&](front::Engine& e) {
    apps::SortParams p;
    p.num_elements = 1 << 20;
    p.quick_cutoff = 1 << 14;
    p.merge_cutoff = 1 << 14;
    return apps::sort_program(e, p);
  });
  const Trace t = run48(prog, sim::SimPolicy::mir(), 48, false);
  const GrainGraph g = GrainGraph::build(t);
  const GrainTable grains = GrainTable::build(t);

  struct Case {
    const char* name;
    IntervalPreset preset;
  };
  const Case cases[] = {
      {"min grain length", IntervalPreset::MinGrain},
      {"min start/end gap", IntervalPreset::MinGap},
      {"median grain length", IntervalPreset::MedianGrain},
  };
  Table table("interval preset ablation (48-core Sort)");
  table.set_header({"preset", "interval", "slots", "peak opt", "peak cons",
                    "grains<48 (opt)", "grains<48 (cons)", "compute time"});
  for (const Case& c : cases) {
    MetricOptions mo;
    mo.interval = c.preset;
    const auto t0 = std::chrono::steady_clock::now();
    const MetricsResult m =
        compute_metrics(t, g, grains, Topology::opteron48(), mo);
    const auto t1 = std::chrono::steady_clock::now();
    u32 peak_o = 0, peak_c = 0;
    for (u32 v : m.parallelism_optimistic) peak_o = std::max(peak_o, v);
    for (u32 v : m.parallelism_conservative) peak_c = std::max(peak_c, v);
    size_t low_o = 0, low_c = 0;
    for (const auto& gm : m.per_grain) {
      if (gm.inst_parallelism_optimistic < 48) ++low_o;
      if (gm.inst_parallelism < 48) ++low_c;
    }
    table.add_row(
        {c.name, strings::human_time(m.interval_used),
         std::to_string(m.parallelism_optimistic.size()),
         std::to_string(peak_o), std::to_string(peak_c),
         strings::trim_double(100.0 * static_cast<double>(low_o) /
                                  static_cast<double>(grains.size()), 1) + "%",
         strings::trim_double(100.0 * static_cast<double>(low_c) /
                                  static_cast<double>(grains.size()), 1) + "%",
         strings::trim_double(
             std::chrono::duration<double, std::milli>(t1 - t0).count(), 1) +
             "ms"});
  }
  std::printf("%s", table.to_text().c_str());
  std::printf("smaller intervals -> more slots (post-processing time) and "
              "stricter conservative counts; the optimistic flavor bounds "
              "the conservative one from above by construction.\n");
  return 0;
}
