// Extension (paper §6 future work, implemented): OpenMP 4.0 data-flow tasks.
//
// "We do not yet visualize OpenMP 4.0 data-flow tasks due to lack of
// data-dependence resolution support in the MIR profiler. There are no
// conceptual problems in extending our method to task dependence graphs."
//
// This bench quantifies the extension on SparseLU: per-block depend clauses
// replace the per-phase taskwait barriers, letting fwd/bdiv/bmod of later
// outer iterations overlap earlier ones. The grain graph gains dependence
// edges (dashed violet in the exports) and the instantaneous-parallelism
// timeline fills in the barrier troughs.
#include <cstdio>

#include "apps/sparselu.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "export/graphml.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Extension — data-flow SparseLU (OpenMP 4.0 depend clauses)",
               "§6: extending grain graphs to task dependence graphs; "
               "expected: barriers removed -> higher parallelism, shorter "
               "makespan, dependence edges in the graph");

  auto capture_lu = [&](bool dataflow) {
    return capture_app("sparselu", [&](front::Engine& e) {
      apps::SparseLuParams p;
      p.blocks = 20;
      p.block_size = 24;
      p.interchange = true;  // isolate the scheduling effect
      p.dataflow = dataflow;
      return apps::sparselu_program(e, p);
    });
  };
  const sim::Program barrier = capture_lu(false);
  const sim::Program dataflow = capture_lu(true);

  Table t("barrier vs data-flow on the 48-core machine");
  t.set_header({"runtime", "barrier makespan", "dataflow makespan",
                "improvement"});
  for (const auto& pol : paper_policies()) {
    const TimeNs tb = run48(barrier, pol).makespan();
    const TimeNs td = run48(dataflow, pol).makespan();
    t.add_row({pol.name, strings::human_time(tb), strings::human_time(td),
               strings::trim_double(
                   100.0 * (1.0 - static_cast<double>(td) /
                                      static_cast<double>(tb)),
                   1) + "%"});
  }
  std::printf("%s", t.to_text().c_str());

  const BenchAnalysis ab = analyze48(barrier, sim::SimPolicy::mir(), 48);
  const BenchAnalysis ad = analyze48(dataflow, sim::SimPolicy::mir(), 48);
  std::printf("dependence edges: barrier %zu -> dataflow %zu\n",
              ab.trace.depends.size(), ad.trace.depends.size());
  std::printf("low instantaneous parallelism: barrier %.1f%% -> dataflow "
              "%.1f%% of grains\n",
              flagged_percent(ab.analysis, Problem::LowParallelism),
              flagged_percent(ad.analysis, Problem::LowParallelism));

  auto strip = [](const MetricsResult& m) {
    const auto& par = m.parallelism_optimistic;
    std::string s;
    for (size_t b = 0; b < 64; ++b) {
      const size_t lo = b * par.size() / 64;
      const size_t hi = std::max(lo + 1, (b + 1) * par.size() / 64);
      u64 acc = 0;
      for (size_t i = lo; i < hi && i < par.size(); ++i) acc += par[i];
      const u32 v = static_cast<u32>(acc / (hi - lo));
      s += v >= 48 ? 'X' : static_cast<char>('0' + std::min<u32>(9, v / 5));
    }
    return s;
  };
  std::printf("parallelism timeline (X = >= 48):\n");
  std::printf("  barrier : %s\n", strip(ab.analysis.metrics).c_str());
  std::printf("  dataflow: %s\n", strip(ad.analysis.metrics).c_str());

  const std::string dir = out_dir();
  GraphMlOptions gopts;
  write_graphml_file(dir + "/ext_dataflow_sparselu.graphml",
                     ad.analysis.graph, ad.trace, &ad.analysis.grains,
                     &ad.analysis.metrics, gopts);
  std::printf("exported: %s/ext_dataflow_sparselu.graphml (dependence edges "
              "dashed violet)\n", dir.c_str());
  return 0;
}
