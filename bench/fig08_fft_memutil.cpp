// Figure 8: "Grain graph of FFT shows the next problem to be tackled.
// Several grains have poor memory hierarchy utilization... Algorithmic
// changes and better scheduling are necessary to further improve
// performance. Grain graph has 4591 grains."
//
// The key observation reproduced: optimization focused on the critical path
// alone will not suffice since poor memory utilization is wide-spread (the
// flagged set is much larger than the critical-path set).
#include <cstdio>

#include "apps/fft.hpp"
#include "export/graphml.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Figure 8 — optimized FFT: widespread poor memory utilization",
               "4591 grains; poor mem-util widespread (so critical-path-only "
               "optimization will not suffice)");

  const sim::Program prog = capture_app("fft", [&](front::Engine& e) {
    apps::FftParams p;
    p.num_samples = 1 << 17;
    p.spawn_cutoff = 1 << 9;
    return apps::fft_program(e, p);
  });
  const BenchAnalysis b = analyze48(prog, sim::SimPolicy::mir(), 48);

  std::printf("grains: %zu (paper: 4591)\n", b.analysis.grains.size());
  std::printf("poor memory hierarchy utilization: %.1f%% of grains "
              "(paper: a majority)\n",
              flagged_percent(b.analysis, Problem::PoorMemUtil));
  size_t on_cp = 0, flagged_off_cp = 0;
  const auto& view =
      b.analysis.problems[static_cast<size_t>(Problem::PoorMemUtil)];
  for (size_t i = 0; i < b.analysis.grains.size(); ++i) {
    if (b.analysis.metrics.per_grain[i].on_critical_path) {
      ++on_cp;
    } else if (view.flagged[i]) {
      ++flagged_off_cp;
    }
  }
  std::printf("critical-path grains: %zu; flagged grains OFF the critical "
              "path: %zu\n",
              on_cp, flagged_off_cp);
  std::printf("=> optimizing the critical path alone cannot fix this "
              "(the paper's conclusion).\n");

  const std::string dir = out_dir();
  GraphMlOptions gopts;
  gopts.view = Problem::PoorMemUtil;
  write_graphml_file(dir + "/fig08_fft_memutil.graphml", b.analysis.graph,
                     b.trace, &b.analysis.grains, &b.analysis.metrics, gopts);
  std::printf("exported: %s/fig08_fft_memutil.graphml\n", dir.c_str());
  return 0;
}
