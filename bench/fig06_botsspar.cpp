// Figure 6: 359.botsspar.
// (a) two distinct interleaved phases exposing gradually decreasing
//     parallelism (fwd/bdiv: light; bmod: heavy);
// (b) evaluation-input graph has 19811 grains; work-inflated grains
//     highlighted;
// (c) wide-spread work inflation at threshold 1.2, pin-pointed to
//     sparselu.c:246(bmod) — most frequent definition with inflation
//     similar to others;
// (d) loop interchange removes inflation from the large-parallelism phase.
#include <cstdio>

#include "apps/sparselu.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "export/graphml.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Figure 6 — 359.botsspar phases and work inflation",
               "two interleaved phases, decreasing parallelism; 19811 grains "
               "at evaluation input; widespread inflation @1.2 from "
               "sparselu.c:246(bmod); interchange isolates inflation");

  auto run_case = [&](bool interchange) {
    const sim::Program prog =
        capture_app("359.botsspar", [&](front::Engine& e) {
          apps::SparseLuParams p;
          p.blocks = 24;
          p.block_size = 32;
          p.interchange = interchange;
          return apps::sparselu_program(e, p);
        });
    AnalysisOptions ao;
    ProblemThresholds th =
        ProblemThresholds::defaults(48, Topology::opteron48());
    th.work_deviation_max = 1.2;  // the paper gradually lowers 2.0 -> 1.2
    ao.thresholds = th;
    BenchAnalysis b = analyze48(prog, sim::SimPolicy::mir(), 48,
                                /*with_baseline=*/true);
    ao.baseline = &b.baseline;
    b.analysis = analyze(b.trace, Topology::opteron48(), ao);
    return b;
  };

  const BenchAnalysis before = run_case(false);
  std::printf("(a/b) grains: %zu (paper evaluation input: 19811)\n",
              before.analysis.grains.size());
  // (a) phase interleaving on the paper's small input (it uses (5,5); the
  // big input saturates all 48 cores so phases are invisible there).
  const sim::Program small_prog =
      capture_app("359.botsspar", [&](front::Engine& e) {
        apps::SparseLuParams sp;
        sp.blocks = 8;
        sp.block_size = 32;
        return apps::sparselu_program(e, sp);
      });
  const BenchAnalysis small = analyze48(small_prog, sim::SimPolicy::mir(), 48);
  const auto& par = small.analysis.metrics.parallelism_optimistic;
  std::string strip = "      ";
  for (size_t b = 0; b < 64; ++b) {
    const size_t lo = b * par.size() / 64;
    const size_t hi = std::max(lo + 1, (b + 1) * par.size() / 64);
    u64 acc = 0;
    for (size_t i = lo; i < hi && i < par.size(); ++i) acc += par[i];
    const u32 v = static_cast<u32>(acc / (hi - lo));
    strip += v >= 48 ? 'X' : static_cast<char>('0' + std::min<u32>(9, v / 5));
  }
  std::printf("      parallelism: %s\n", strip.c_str());
  std::printf("      (alternating low [fwd/bdiv] and high [bmod] phases, "
              "amplitude decreasing as kk advances)\n\n");

  const BenchAnalysis after = run_case(true);

  Table t("(c/d) work inflation (threshold 1.2) by task definition");
  t.set_header({"definition", "grains", "inflated% before", "inflated% after",
                "median deviation before", "median deviation after"});
  for (const SourceProfileRow& rb : before.analysis.sources) {
    if (rb.grain_count < 2) continue;
    const SourceProfileRow* ra = nullptr;
    for (const auto& r : after.analysis.sources) {
      if (r.source == rb.source) ra = &r;
    }
    t.add_row({rb.source, std::to_string(rb.grain_count),
               strings::trim_double(rb.inflated_percent, 1),
               ra ? strings::trim_double(ra->inflated_percent, 1) : "-",
               strings::trim_double(rb.median_work_deviation, 2),
               ra ? strings::trim_double(ra->median_work_deviation, 2) : "-"});
  }
  std::printf("%s", t.to_text().c_str());
  std::printf("bmod is the most frequent definition (sorted first by "
              "creation count) — the paper's first optimization candidate.\n");
  std::printf("48-core makespan: before %.2fms -> after %.2fms\n",
              static_cast<double>(before.trace.makespan()) / 1e6,
              static_cast<double>(after.trace.makespan()) / 1e6);

  const std::string dir = out_dir();
  GraphMlOptions gopts;
  gopts.view = Problem::WorkInflation;
  write_graphml_file(dir + "/fig06_botsspar_inflation.graphml",
                     before.analysis.graph, before.trace,
                     &before.analysis.grains, &before.analysis.metrics, gopts);
  std::printf("exported: %s/fig06_botsspar_inflation.graphml\n", dir.c_str());
  return 0;
}
