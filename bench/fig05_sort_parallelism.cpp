// Figure 5: Sort grain graph.
// (a) "Low instantaneous parallelism causes load imbalance. Phases with
//     decreasing and non-uniform parallelism can be seen on the graph...
//     The grain graph contains 815 grains."
// (b) "Increasing instantaneous parallelism by lowering cutoffs reduces
//     parallel benefit and does not improve performance... Entire graph
//     contains 18373 grains, 48% with low parallel benefit."
#include <algorithm>
#include <cstdio>

#include "apps/sort.hpp"
#include "export/graphml.hpp"
#include "graph/summarize.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header(
      "Figure 5 — Sort: instantaneous parallelism vs parallel benefit",
      "(a) 815 grains, waxing/waning parallelism below 48 cores; (b) lower "
      "cutoffs: 18373 grains, 48% with low parallel benefit, no speedup");

  auto capture_sort = [](u64 cutoff) {
    return capture_app("sort", [&](front::Engine& e) {
      apps::SortParams p;
      p.num_elements = 1 << 21;
      p.quick_cutoff = cutoff;
      p.merge_cutoff = cutoff;
      return apps::sort_program(e, p);
    });
  };

  // (a) best cutoffs. The memory model is disabled for this figure: Fig. 5
  // isolates the parallelism/benefit trade-off (the memory story is the
  // separate §4.3.1 table bench).
  const sim::Program best = capture_sort(1 << 15);
  const BenchAnalysis a = analyze48(best, sim::SimPolicy::mir(), 48,
                                    /*with_baseline=*/false,
                                    /*memory_model=*/false);
  std::printf("(a) best cutoffs: %zu grains (paper: 815)\n",
              a.analysis.grains.size());
  const auto& par = a.analysis.metrics.parallelism_optimistic;
  // Render the parallelism timeline in 60 buckets.
  const size_t buckets = 60;
  std::printf("    instantaneous parallelism over time:\n");
  std::string line = "    ";
  u32 peak = 0;
  size_t below_48 = 0;
  for (size_t b = 0; b < buckets; ++b) {
    const size_t lo = b * par.size() / buckets;
    const size_t hi = std::max(lo + 1, (b + 1) * par.size() / buckets);
    u64 acc = 0;
    for (size_t i = lo; i < hi && i < par.size(); ++i) acc += par[i];
    const u32 v = static_cast<u32>(acc / (hi - lo));
    peak = std::max(peak, v);
    line += v >= 48 ? 'X' : static_cast<char>('0' + std::min<u32>(9, v / 5));
  }
  for (u32 v : par)
    if (v < 48) ++below_48;
  std::printf("%s\n", line.c_str());
  std::printf("    (digit = parallelism/5, X = >= 48) peak %u; %.0f%% of "
              "intervals below the 48 cores available\n",
              peak, 100.0 * static_cast<double>(below_48) / par.size());
  std::printf("    grains flagged low-parallelism: %.1f%%, low parallel "
              "benefit: %.1f%%\n",
              flagged_percent(a.analysis, Problem::LowParallelism),
              flagged_percent(a.analysis, Problem::LowParallelBenefit));

  // (b) lowered cutoffs.
  const sim::Program low = capture_sort(1 << 10);
  const BenchAnalysis b = analyze48(low, sim::SimPolicy::mir(), 48,
                                    /*with_baseline=*/false,
                                    /*memory_model=*/false);
  std::printf("\n(b) lowered cutoffs: %zu grains (paper: 18373)\n",
              b.analysis.grains.size());
  std::printf("    low parallel benefit: %.1f%% of grains (paper: 48%%)\n",
              flagged_percent(b.analysis, Problem::LowParallelBenefit));
  const TimeNs t_best = a.trace.makespan();
  const TimeNs t_low = b.trace.makespan();
  std::printf("    makespan best-cutoffs %.2fms vs lowered %.2fms -> lowering "
              "cutoffs %s help (paper: it does not)\n",
              static_cast<double>(t_best) / 1e6,
              static_cast<double>(t_low) / 1e6,
              t_low >= t_best ? "does NOT" : "DOES");

  const std::string dir = out_dir();
  GraphMlOptions gopts;
  gopts.view = Problem::LowParallelism;
  write_graphml_file(dir + "/fig05a_sort_parallelism.graphml",
                     a.analysis.graph, a.trace, &a.analysis.grains,
                     &a.analysis.metrics, gopts);
  // (b) has ~80k grains; export a §6-style summarized graph so the file
  // stays viewer-friendly (the full graph is reproducible on demand).
  gopts.view = std::nullopt;
  const SummarizeResult summarized = summarize_graph(b.analysis.graph, 20000);
  write_graphml_file(dir + "/fig05b_sort_benefit.graphml", summarized.graph,
                     b.trace, nullptr, nullptr, gopts);
  std::printf("exported: %s/fig05{a,b}_*.graphml (b summarized to %zu "
              "nodes)\n", dir.c_str(), summarized.graph.node_count());
  return 0;
}
