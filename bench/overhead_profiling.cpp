// §4.2: "Less than 2.5% overhead is incurred by the MIR profiler to
// determine grain properties and hardware performance counts."
//
// Measures the real threaded runtime with profiling on vs off (median of
// several trials) on a task-heavy and a loop-heavy workload. This is the
// one bench that exercises wall-clock behavior of rts::ThreadedEngine
// rather than the simulator.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "apps/fib.hpp"
#include "apps/sort.hpp"
#include "rts/threaded_engine.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace gg;

TimeNs median_makespan(bool profile, int workers,
                       const std::function<front::TaskFn(front::Engine&)>& make,
                       int trials) {
  std::vector<TimeNs> times;
  for (int i = 0; i < trials; ++i) {
    rts::Options o;
    o.num_workers = workers;
    o.profile = profile;
    rts::ThreadedEngine eng(o);
    const front::TaskFn fn = make(eng);
    times.push_back(eng.run("overhead", fn).makespan());
  }
  std::sort(times.begin(), times.end());
  return times.front();  // min-of-trials: the standard for overhead micros
                         // (medians absorb scheduler noise poorly on a
                         // single-core host)
}

}  // namespace

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("§4.2 — profiling overhead of the threaded runtime",
               "the MIR profiler incurs < 2.5% overhead");

  struct Case {
    const char* name;
    std::function<front::TaskFn(front::Engine&)> make;
  };
  const std::vector<Case> cases = {
      {"fib(28, cutoff 7) tasks",
       [](front::Engine& e) {
         apps::FibParams p;
         p.n = 28;
         p.cutoff = 7;  // realistic grains (tens of microseconds)
         return apps::fib_program(e, p);
       }},
      {"fib(20, cutoff 12) stress",
       [](front::Engine& e) {
         apps::FibParams p;
         p.n = 20;
         p.cutoff = 12;  // pathological: profiling cost per tiny grain shows
         return apps::fib_program(e, p);
       }},
      {"sort 512k",
       [](front::Engine& e) {
         apps::SortParams p;
         p.num_elements = 1 << 19;
         p.quick_cutoff = 1 << 13;
         p.merge_cutoff = 1 << 13;
         return apps::sort_program(e, p);
       }},
  };
  const int workers = 1;  // single-core host: avoid oversubscription noise
  const int trials = 11;
  for (const Case& c : cases) {
    const TimeNs off = median_makespan(false, workers, c.make, trials);
    const TimeNs on = median_makespan(true, workers, c.make, trials);
    const double overhead =
        100.0 * (static_cast<double>(on) / static_cast<double>(off) - 1.0);
    std::printf("%-26s profiling off %8.2fms  on %8.2fms  overhead %+.2f%% "
                "(paper: < 2.5%%)\n",
                c.name, static_cast<double>(off) / 1e6,
                static_cast<double>(on) / 1e6, overhead);
  }
  std::printf("(min of %d trials on %d workers; the stress case shows where "
              "per-grain profiling cost becomes visible — grains of a few "
              "hundred ns, 10-100x finer than the paper's programs)\n",
              trials, workers);
  return 0;
}
