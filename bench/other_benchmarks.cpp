// §4.3.6 "Other benchmarks": the per-program metric summary the paper gives
// for the remaining suite members, grouped by speedup.
//
// Paper highlights reproduced:
//  * Blackscholes: >65% of chunks have poor memory-hierarchy utilization,
//    ~33% also low parallel benefit; other metrics healthy.
//  * 367.imagick: five loops missing omp_throttle show poor benefit.
//  * 372.smithwa: both parallel blocks imbalanced / low mem-util / poor
//    benefit; verifyData's imbalance is outside the usual timed region but
//    the grain graph covers the whole program.
//  * NQueens and 358.botsalgn: linear scaling, all metrics healthy.
//  * Fibonacci (48, cutoff 12 -> scaled): work-deviation and
//    parallel-benefit problems.
//  * UTS: poor parallel benefit for most grains.
//  * Bodytrack: all loops except CalcWeights poor benefit + low mem-util.
//  * Floorplan: graph shape changes across runs (non-determinism).
#include <cstdio>

#include "apps/blackscholes.hpp"
#include "apps/fib.hpp"
#include "apps/floorplan.hpp"
#include "apps/health.hpp"
#include "apps/nqueens.hpp"
#include "apps/others.hpp"
#include "apps/uts.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("§4.3.6 — other benchmarks metric summary",
               "see source header for the per-program claims");

  struct Entry {
    const char* name;
    std::function<sim::Program()> capture;
  };
  const std::vector<Entry> entries = {
      {"blackscholes",
       [] {
         return capture_app("blackscholes", [](front::Engine& e) {
           apps::BlackscholesParams p;
           p.num_options = 100000;
           p.sched = ScheduleKind::Dynamic;
           p.chunk = 64;
           return apps::blackscholes_program(e, p);
         });
       }},
      {"367.imagick",
       [] {
         return capture_app("367.imagick", [](front::Engine& e) {
           return apps::imagick_program(e, apps::ImagickParams{});
         });
       }},
      {"372.smithwa",
       [] {
         return capture_app("372.smithwa", [](front::Engine& e) {
           return apps::smithwa_program(e, apps::SmithwaParams{});
         });
       }},
      {"nqueens",
       [] {
         return capture_app("nqueens", [](front::Engine& e) {
           apps::NQueensParams p;
           p.n = 11;
           p.cutoff = 3;
           return apps::nqueens_program(e, p);
         });
       }},
      {"358.botsalgn",
       [] {
         return capture_app("358.botsalgn", [](front::Engine& e) {
           return apps::botsalgn_program(e, apps::BotsalgnParams{});
         });
       }},
      {"fib",
       [] {
         return capture_app("fib", [](front::Engine& e) {
           apps::FibParams p;
           p.n = 30;
           p.cutoff = 12;
           return apps::fib_program(e, p);
         });
       }},
      {"uts",
       [] {
         return capture_app("uts", [](front::Engine& e) {
           apps::UtsParams p;
           return apps::uts_program(e, p);
         });
       }},
      {"health",
       [] {
         return capture_app("health", [](front::Engine& e) {
           return apps::health_program(e, apps::HealthParams{});
         });
       }},
      {"bodytrack",
       [] {
         return capture_app("bodytrack", [](front::Engine& e) {
           return apps::bodytrack_program(e, apps::BodytrackParams{});
         });
       }},
  };

  Table t("48-core metric summary (percent of grains affected)");
  t.set_header({"program", "grains", "speedup", "low benefit%", "poor mem%",
                "low parallelism%", "inflated%", "load balance"});
  for (const Entry& e : entries) {
    const sim::Program prog = e.capture();
    const BenchAnalysis b =
        analyze48(prog, sim::SimPolicy::mir(), 48, /*with_baseline=*/true);
    const TimeNs t1 = run48(prog, sim::SimPolicy::mir(), 1).makespan();
    t.add_row(
        {e.name, std::to_string(b.analysis.grains.size()),
         strings::trim_double(static_cast<double>(t1) /
                                  static_cast<double>(b.trace.makespan()),
                              1),
         strings::trim_double(
             flagged_percent(b.analysis, Problem::LowParallelBenefit), 1),
         strings::trim_double(flagged_percent(b.analysis, Problem::PoorMemUtil),
                              1),
         strings::trim_double(
             flagged_percent(b.analysis, Problem::LowParallelism), 1),
         strings::trim_double(
             flagged_percent(b.analysis, Problem::WorkInflation), 1),
         strings::trim_double(b.analysis.metrics.region_load_balance, 2)});
  }
  std::printf("%s", t.to_text().c_str());

  // Floorplan's non-determinism: the graph shape changes across exploration
  // orders (standing in for thread counts).
  std::printf("\nfloorplan graph shape across exploration orders:");
  for (u64 seed : {1ull, 7ull, 23ull}) {
    const sim::Program prog = capture_app("floorplan", [&](front::Engine& e) {
      apps::FloorplanParams p;
      p.cutoff = p.num_cells;
      p.shape_seed = seed;
      return apps::floorplan_program(e, p);
    });
    std::printf(" seed %llu -> %zu grains;",
                static_cast<unsigned long long>(seed), prog.task_count());
  }
  std::printf("\n(the one program whose grain graph is not "
              "schedule-independent, as the paper notes)\n");
  return 0;
}
