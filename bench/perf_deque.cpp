// perf_deque — producer/consumer contention benchmark over the pluggable
// work-queue backends (rts/work_queue.hpp), in the style of the scal
// benchmarking framework: one owner thread pushes and pops while thief
// threads steal, across backends x thread counts x grain sizes, where the
// grain size is spin-work per consumed item (grain 0 is pure queue-protocol
// contention; larger grains approximate real task bodies and show the
// contention cost amortizing away).
//
//   perf_deque [--items N] [--reps R] [--quick] [--out file.json]
//
// Every timed run is also an accounting run: each pushed value must come
// back exactly once (the free-running cousin of the check_deque harness),
// and the bench additionally replays one generated program on the threaded
// engine under a fixed controller schedule once per backend, requiring the
// canonical structural signature to match the serial reference — the same
// cross-backend equivalence backend_equiv_test proves, gated here so a
// BENCH_deque.json can never come from runs that disagreed on structure.
// Exit 1 when either gate fails. Results go to BENCH_deque.json: median
// throughput (items/ms) per {backend, threads, grain}.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "check/genprog.hpp"
#include "check/schedule.hpp"
#include "check/serial_ref.hpp"
#include "check/signature.hpp"
#include "rts/threaded_engine.hpp"
#include "rts/work_queue.hpp"
#include "support/bench_support.hpp"
#include "topology/topology.hpp"

namespace {

using namespace gg;

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Spin-work standing in for a task body of `grain` iterations.
void burn(u64 grain) {
  volatile u64 sink = 0;
  for (u64 i = 0; i < grain; ++i) sink = sink + i;
}

struct RunOutcome {
  bool clean = false;  ///< every value delivered exactly once
  i64 wall_ns = 0;
};

/// One free-running contention run: the owner pushes `items` values
/// (popping every third), `threads - 1` thieves steal, everyone burns
/// `grain` per consumed item. Returns wall time and the accounting verdict.
RunOutcome contention_run(rts::QueueBackend backend, int threads, u64 items,
                          u64 grain) {
  rts::WorkQueueConfig cfg;
  auto queue = rts::make_work_queue<u64>(backend, cfg);
  const int thieves = threads - 1;
  std::atomic<bool> go{false};
  std::atomic<bool> done_pushing{false};
  std::vector<std::vector<u64>> got(static_cast<size_t>(threads));

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(thieves));
  for (int t = 1; t <= thieves; ++t) {
    pool.emplace_back([&, t] {
      auto& mine = got[static_cast<size_t>(t)];
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (true) {
        if (auto v = queue->steal()) {
          mine.push_back(*v);
          burn(grain);
          continue;
        }
        if (done_pushing.load(std::memory_order_acquire) &&
            queue->size_estimate() == 0) {
          break;
        }
        std::this_thread::yield();
      }
    });
  }

  const i64 t0 = now_ns();
  go.store(true, std::memory_order_release);
  auto& mine = got[0];
  for (u64 v = 1; v <= items; ++v) {
    queue->push(v);
    if (v % 3 == 0) {
      if (auto x = queue->pop()) {
        mine.push_back(*x);
        burn(grain);
      }
    }
  }
  while (auto x = queue->pop()) {
    mine.push_back(*x);
    burn(grain);
  }
  done_pushing.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  while (auto x = queue->pop()) mine.push_back(*x);

  RunOutcome out;
  out.wall_ns = now_ns() - t0;
  std::vector<u64> all;
  all.reserve(items);
  for (const auto& g : got) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  out.clean = all.size() == items;
  for (u64 v = 1; out.clean && v <= items; ++v) {
    out.clean = all[static_cast<size_t>(v - 1)] == v;
  }
  return out;
}

i64 median(std::vector<i64> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Cross-backend analysis-equivalence gate: one generated program, one
/// fixed controller schedule, every backend; all canonical structural
/// signatures must equal the serial reference's.
bool backends_agree_on_structure() {
  const check::ProgramSpec spec = check::generate_program(/*seed=*/8);
  constexpr int kWorkers = 3;

  check::SerialRefOptions sropts;
  sropts.topology = Topology::opteron48();
  sropts.team_size = kWorkers;
  check::SerialRefEngine ref_eng(sropts);
  const std::string ref = check::canonical_signature(run_spec(spec, ref_eng));

  bool ok = true;
  for (const rts::QueueBackend b : rts::kAllQueueBackends) {
    check::ScheduleOptions sopts;
    sopts.strategy = check::Strategy::RandomWalk;
    sopts.seed = 0xbe11c4ull;
    sopts.num_threads = kWorkers;
    check::ScheduleController ctrl(sopts);
    rts::Options ropts;
    ropts.num_workers = kWorkers;
    ropts.queue_backend = b;
    ctrl.install();
    Trace trace;
    {
      rts::ThreadedEngine eng(ropts);
      trace = run_spec(spec, eng);
    }
    ctrl.uninstall();
    const std::string sig = check::canonical_signature(trace);
    if (sig != ref) {
      std::fprintf(stderr,
                   "error: backend %s diverged from the serial reference "
                   "on the replayed schedule: %s\n",
                   rts::to_string(b),
                   check::first_signature_diff(ref, sig).c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  u64 items = 200000;
  int reps = 5;
  std::string out_json = "BENCH_deque.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--items") {
      items = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--reps") {
      reps = std::atoi(value());
    } else if (arg == "--quick") {
      items = 20000;
      reps = 3;
    } else if (arg == "--out") {
      out_json = value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--items N] [--reps R] [--quick] "
                   "[--out file.json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  bench::print_header(
      "work-queue backend contention (owner push/pop vs thief steals)",
      "n/a (scheduler-substrate microbenchmark; backends validated by the "
      "oracle)");

  constexpr int kThreadCounts[] = {1, 2, 4};
  constexpr u64 kGrains[] = {0, 64, 512};

  bool accounting_ok = true;
  struct Row {
    rts::QueueBackend backend;
    int threads;
    u64 grain;
    i64 wall_ns;
    double items_per_ms;
  };
  std::vector<Row> rows;

  for (const rts::QueueBackend backend : rts::kAllQueueBackends) {
    for (const int threads : kThreadCounts) {
      for (const u64 grain : kGrains) {
        std::vector<i64> walls;
        for (int r = 0; r < reps; ++r) {
          const RunOutcome o = contention_run(backend, threads, items, grain);
          if (!o.clean) {
            std::fprintf(stderr,
                         "error: %s threads=%d grain=%llu rep=%d lost or "
                         "duplicated values\n",
                         rts::to_string(backend), threads,
                         static_cast<unsigned long long>(grain), r);
            accounting_ok = false;
          }
          walls.push_back(o.wall_ns);
        }
        Row row;
        row.backend = backend;
        row.threads = threads;
        row.grain = grain;
        row.wall_ns = median(walls);
        row.items_per_ms = row.wall_ns > 0
                               ? static_cast<double>(items) /
                                     (static_cast<double>(row.wall_ns) / 1e6)
                               : 0.0;
        rows.push_back(row);
      }
    }
  }

  std::printf("%-10s %8s %7s %12s %14s\n", "backend", "threads", "grain",
              "median ms", "items/ms");
  for (const Row& r : rows) {
    std::printf("%-10s %8d %7llu %12.3f %14.1f\n", rts::to_string(r.backend),
                r.threads, static_cast<unsigned long long>(r.grain),
                static_cast<double>(r.wall_ns) / 1e6, r.items_per_ms);
  }

  std::printf("cross-backend structural-equivalence gate: ");
  const bool equiv_ok = backends_agree_on_structure();
  std::printf("%s\n", equiv_ok ? "pass" : "FAIL");
  std::printf("value accounting across all runs: %s\n",
              accounting_ok ? "pass" : "FAIL");

  std::ofstream os(out_json);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", out_json.c_str());
    return 1;
  }
  os << "{\n  \"bench\": \"perf_deque\",\n  \"items\": " << items
     << ",\n  \"reps\": " << reps << ",\n  \"accounting_ok\": "
     << (accounting_ok ? "true" : "false") << ",\n  \"equivalence_ok\": "
     << (equiv_ok ? "true" : "false") << ",\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"backend\": \"" << rts::to_string(r.backend)
       << "\", \"threads\": " << r.threads << ", \"grain\": " << r.grain
       << ", \"median_ns\": " << r.wall_ns << ", \"items_per_ms\": "
       << r.items_per_ms << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"pass\": "
     << (accounting_ok && equiv_ok ? "true" : "false") << "\n}\n";
  os.close();
  std::printf("wrote %s\n", out_json.c_str());
  return accounting_ok && equiv_ok ? 0 : 1;
}
