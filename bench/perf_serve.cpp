// perf_serve — multi-client GGWIRE1 ingestion stress benchmark.
//
//   perf_serve [--clients N] [--grains G] [--queries Q] [--quick]
//              [--out file.json]
//
// Three phases against a real ggserved core (serve::Server with ingest +
// query sockets), every timed run doubling as a correctness run:
//
//   throughput   N wire clients concurrently push distinct synthesized
//                spools while Q query threads hammer STATUS/SESSIONS over
//                the query socket; gates on every push sealing and on every
//                REPORT answer being byte-identical to the batch
//                `gganalyze --recover` pipeline over the same source bytes.
//   ack-latency  one window=1 client (each EPOCH waits for its durable
//                ACK), per-frame round-trip percentiles.
//   degrade      a deliberately tiny admission budget: concurrent clients
//                have their OFFERs shed while the ladder is degraded, back
//                off, and are admitted as sealed streams get evicted —
//                gates on every shed client eventually sealing (graceful
//                degradation, not collapse).
//
// Gates are correctness-only, never wall time — shared runners are too
// noisy for timing gates. Numbers land in BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/endpoint.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/wire_client.hpp"
#include "support/bench_support.hpp"
#include "trace/salvage.hpp"
#include "trace/spool.hpp"
#include "trace/synth.hpp"
#include "trace/validate.hpp"

namespace {

using namespace gg;

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string temp_path(const char* tag) {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("gg-perf-serve-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(counter++)))
      .string();
}

std::string make_spool_bytes(u64 seed, u64 grains) {
  SynthOptions opts;
  opts.seed = seed;
  opts.workers = 4;
  opts.grains = grains;
  return spool::spool_trace_bytes(synth_trace(opts), /*epoch_bytes=*/512);
}

/// The batch `gganalyze --recover` pipeline — the reference side of the
/// wire/batch parity gate.
std::string batch_report(const std::string& bytes) {
  spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
  if (!rr.usable) return {};
  if (serve::recovery_degraded(rr.report)) salvage_trace(rr.trace);
  if (!validate_trace(rr.trace).empty()) return {};
  return serve::analysis_report_text(rr.trace);
}

serve::WireClientOptions client_opts(const std::string& socket,
                                     const std::string& name, u64 seed) {
  serve::WireClientOptions o;
  o.socket_path = socket;
  o.name = name;
  o.seed = seed;
  o.backoff_initial_ns = 1'000'000;    // 1ms
  o.backoff_max_ns = 100'000'000;      // 100ms
  o.max_attempts = 100;
  return o;
}

i64 percentile(std::vector<i64> v, int p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = v.size() * static_cast<size_t>(p) / 100;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

/// Extracts the `level=<name>` token from a STATUS line.
std::string status_level(const std::string& status) {
  const size_t at = status.find("level=");
  if (at == std::string::npos) return {};
  const size_t end = status.find(' ', at);
  return status.substr(at + 6, end == std::string::npos ? std::string::npos
                                                        : end - at - 6);
}

struct ThroughputResult {
  bool pushes_ok = true;
  bool parity_ok = true;
  i64 wall_ns = 0;
  u64 epochs = 0;
  u64 queries_served = 0;
};

ThroughputResult run_throughput(int clients, int queries, u64 grains) {
  serve::ServerOptions sopts;
  sopts.ingest_socket_path = temp_path("ingest");
  sopts.socket_path = temp_path("query");
  serve::Server server(sopts);
  std::thread runner([&server] { server.run(); });

  std::vector<std::string> spools;
  std::vector<std::string> names;
  for (int c = 0; c < clients; ++c) {
    spools.push_back(make_spool_bytes(1000 + static_cast<u64>(c), grains));
    names.push_back("push-" + std::to_string(c));
  }

  ThroughputResult res;
  std::atomic<bool> pushing{true};
  std::atomic<u64> served{0};
  std::vector<std::thread> query_pool;
  for (int q = 0; q < queries; ++q) {
    query_pool.emplace_back([&, q] {
      u64 n = 0;
      while (pushing.load(std::memory_order_acquire)) {
        std::string resp, err;
        const char* verb = (n + static_cast<u64>(q)) % 2 == 0 ? "STATUS"
                                                              : "SESSIONS";
        if (serve::endpoint_request_retry(sopts.socket_path, verb,
                                          /*max_attempts=*/20,
                                          /*backoff_initial_ns=*/1'000'000,
                                          /*backoff_max_ns=*/50'000'000,
                                          &resp, &err))
          ++n;
      }
      served.fetch_add(n, std::memory_order_acq_rel);
    });
  }

  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  std::atomic<u64> epochs{0};
  const i64 t0 = now_ns();
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      serve::WireClient client(client_opts(
          sopts.ingest_socket_path, names[static_cast<size_t>(c)],
          500 + static_cast<u64>(c)));
      std::string err;
      if (!client.push_bytes(spools[static_cast<size_t>(c)], &err)) {
        std::fprintf(stderr, "error: push %s failed: %s\n",
                     names[static_cast<size_t>(c)].c_str(), err.c_str());
        failures.fetch_add(1, std::memory_order_acq_rel);
      }
      epochs.fetch_add(client.epochs_sent(), std::memory_order_acq_rel);
      client.bye();
    });
  }
  for (auto& t : pool) t.join();
  res.wall_ns = now_ns() - t0;
  pushing.store(false, std::memory_order_release);
  for (auto& t : query_pool) t.join();
  res.pushes_ok = failures.load() == 0;
  res.epochs = epochs.load();
  res.queries_served = served.load();

  // Parity: every stream's REPORT over the query socket must match batch
  // recovery over the same source bytes.
  for (int c = 0; c < clients; ++c) {
    const std::string batch = batch_report(spools[static_cast<size_t>(c)]);
    std::string resp, err;
    if (batch.empty() ||
        !serve::endpoint_request(sopts.socket_path,
                                 "REPORT " + names[static_cast<size_t>(c)],
                                 &resp, &err) ||
        resp != batch) {
      std::fprintf(stderr, "error: report parity failed for %s\n",
                   names[static_cast<size_t>(c)].c_str());
      res.parity_ok = false;
    }
  }

  server.stop();
  runner.join();
  return res;
}

struct AckLatencyResult {
  bool ok = true;
  u64 frames = 0;
  i64 p50_ns = 0;
  i64 p95_ns = 0;
  i64 p99_ns = 0;
};

AckLatencyResult run_ack_latency(u64 grains) {
  serve::ServerOptions sopts;
  sopts.ingest_socket_path = temp_path("ack");
  serve::Server server(sopts);
  std::thread runner([&server] { server.run(); });

  const std::string bytes = make_spool_bytes(77, grains);
  const auto frames = spool::scan_frames(bytes);

  serve::WireClientOptions copts =
      client_opts(sopts.ingest_socket_path, "ack-probe", 77);
  copts.window = 1;  // every EPOCH waits for its durable ACK: RTT per frame
  serve::WireClient client(copts);

  AckLatencyResult res;
  std::string err;
  std::vector<i64> rtts;
  u32 num_workers = 0;
  for (int i = 0; i < 4; ++i)
    num_workers |= static_cast<u32>(static_cast<u8>(
                       bytes[spool::kSpoolMagic.size() + i]))
                   << (8 * i);
  if (!client.begin(num_workers, &err)) {
    std::fprintf(stderr, "error: ack-latency begin: %s\n", err.c_str());
    res.ok = false;
  }
  for (const auto& f : frames) {
    if (!res.ok) break;
    const i64 t0 = now_ns();
    if (!client.send_frame(
            std::string_view(bytes.data() + f.offset, f.size), f.offset,
            &err)) {
      std::fprintf(stderr, "error: ack-latency send: %s\n", err.c_str());
      res.ok = false;
      break;
    }
    rtts.push_back(now_ns() - t0);
  }
  if (res.ok &&
      !client.seal(serve::wire::EndKind::Clean, bytes.size(), 0, &err)) {
    std::fprintf(stderr, "error: ack-latency seal: %s\n", err.c_str());
    res.ok = false;
  }
  client.bye();
  res.frames = rtts.size();
  res.p50_ns = percentile(rtts, 50);
  res.p95_ns = percentile(rtts, 95);
  res.p99_ns = percentile(rtts, 99);

  server.stop();
  runner.join();
  return res;
}

struct DegradeResult {
  bool pushes_ok = true;
  bool shed_observed = false;
  u64 level_transitions = 0;
  u64 reconnects = 0;
  std::string max_level = "normal";
};

DegradeResult run_degrade(int clients, u64 grains) {
  serve::ServerOptions sopts;
  sopts.ingest_socket_path = temp_path("degrade");
  // A budget small enough that concurrent streams must cross the shed
  // threshold; sealed streams are evicted quickly so the ladder recovers
  // and shed clients get admitted on retry.
  sopts.admission.budget_bytes = 256 * 1024;
  sopts.admission.shed_fraction = 0.5;
  sopts.admission.pause_fraction = 0.75;
  sopts.ingest.evict_after_ns = 300'000'000;  // 300ms after seal
  serve::Server server(sopts);
  std::thread runner([&server] { server.run(); });

  std::atomic<bool> sampling{true};
  DegradeResult res;
  std::thread sampler([&] {
    std::string last;
    int rank_max = 0;
    while (sampling.load(std::memory_order_acquire)) {
      const std::string level = status_level(server.query("STATUS"));
      if (!level.empty() && level != last) {
        if (!last.empty()) ++res.level_transitions;
        last = level;
        const int rank = level == "normal" ? 0 : 1;
        if (level != "normal") res.shed_observed = true;
        if (rank >= rank_max) {
          rank_max = rank;
          if (level != "normal") res.max_level = level;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> pool;
  std::atomic<int> failures{0};
  std::atomic<u64> reconnects{0};
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      // Staggered starts: the first push degrades the ladder before later
      // OFFERs arrive, so later clients really are shed and must ride the
      // backoff loop until eviction recovers the budget.
      std::this_thread::sleep_for(std::chrono::milliseconds(25 * c));
      const std::string bytes =
          make_spool_bytes(3000 + static_cast<u64>(c), grains);
      serve::WireClient client(
          client_opts(sopts.ingest_socket_path,
                      "shed-" + std::to_string(c), 900 + static_cast<u64>(c)));
      std::string err;
      if (!client.push_bytes(bytes, &err)) {
        std::fprintf(stderr, "error: degrade push %d failed: %s\n", c,
                     err.c_str());
        failures.fetch_add(1, std::memory_order_acq_rel);
      }
      reconnects.fetch_add(client.reconnects(), std::memory_order_acq_rel);
      client.bye();
    });
  }
  for (auto& t : pool) t.join();
  sampling.store(false, std::memory_order_release);
  sampler.join();
  res.pushes_ok = failures.load() == 0;
  res.reconnects = reconnects.load();

  server.stop();
  runner.join();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  int clients = 8;
  int queries = 2;
  u64 grains = 5000;
  std::string out_json = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      clients = std::atoi(value());
    } else if (arg == "--grains") {
      grains = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--queries") {
      queries = std::atoi(value());
    } else if (arg == "--quick") {
      clients = 4;
      grains = 1000;
    } else if (arg == "--out") {
      out_json = value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients N] [--grains G] [--queries Q] "
                   "[--quick] [--out file.json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (clients < 1) clients = 1;

  bench::print_header(
      "GGWIRE1 multi-client ingestion stress (wire push vs batch parity)",
      "n/a (daemon-substrate benchmark; gates are correctness-only)");

  const ThroughputResult tp = run_throughput(clients, queries, grains);
  const double wall_ms = static_cast<double>(tp.wall_ns) / 1e6;
  const double eps = tp.wall_ns > 0
                         ? static_cast<double>(tp.epochs) /
                               (static_cast<double>(tp.wall_ns) / 1e9)
                         : 0.0;
  std::printf("throughput: clients=%d grains=%llu epochs=%llu wall=%.1fms "
              "epochs/s=%.0f queries=%llu pushes=%s parity=%s\n",
              clients, static_cast<unsigned long long>(grains),
              static_cast<unsigned long long>(tp.epochs), wall_ms, eps,
              static_cast<unsigned long long>(tp.queries_served),
              tp.pushes_ok ? "ok" : "FAIL", tp.parity_ok ? "ok" : "FAIL");

  const AckLatencyResult al = run_ack_latency(std::min<u64>(grains, 2000));
  std::printf("ack-latency: frames=%llu p50=%.1fus p95=%.1fus p99=%.1fus "
              "%s\n",
              static_cast<unsigned long long>(al.frames),
              static_cast<double>(al.p50_ns) / 1e3,
              static_cast<double>(al.p95_ns) / 1e3,
              static_cast<double>(al.p99_ns) / 1e3,
              al.ok ? "ok" : "FAIL");

  const DegradeResult dg = run_degrade(clients, grains);
  std::printf("degrade: pushes=%s shed_observed=%s transitions=%llu "
              "max_level=%s client_reconnects=%llu\n",
              dg.pushes_ok ? "ok" : "FAIL",
              dg.shed_observed ? "true" : "false",
              static_cast<unsigned long long>(dg.level_transitions),
              dg.max_level.c_str(),
              static_cast<unsigned long long>(dg.reconnects));

  const bool pass = tp.pushes_ok && tp.parity_ok && al.ok && dg.pushes_ok;

  std::ofstream os(out_json);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", out_json.c_str());
    return 1;
  }
  os << "{\n  \"bench\": \"perf_serve\",\n  \"clients\": " << clients
     << ",\n  \"grains\": " << grains << ",\n  \"throughput\": {"
     << "\"wall_ms\": " << wall_ms << ", \"epochs\": " << tp.epochs
     << ", \"epochs_per_s\": " << eps
     << ", \"queries_served\": " << tp.queries_served
     << ", \"pushes_ok\": " << (tp.pushes_ok ? "true" : "false")
     << ", \"parity_ok\": " << (tp.parity_ok ? "true" : "false")
     << "},\n  \"ack_latency\": {\"frames\": " << al.frames
     << ", \"p50_us\": " << static_cast<double>(al.p50_ns) / 1e3
     << ", \"p95_us\": " << static_cast<double>(al.p95_ns) / 1e3
     << ", \"p99_us\": " << static_cast<double>(al.p99_ns) / 1e3
     << ", \"ok\": " << (al.ok ? "true" : "false")
     << "},\n  \"degrade\": {"
     << "\"pushes_ok\": " << (dg.pushes_ok ? "true" : "false")
     << ", \"shed_observed\": " << (dg.shed_observed ? "true" : "false")
     << ", \"level_transitions\": " << dg.level_transitions
     << ", \"max_level\": \"" << dg.max_level << "\""
     << ", \"client_reconnects\": " << dg.reconnects
     << "},\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  os.close();
  std::printf("wrote %s\n", out_json.c_str());
  return pass ? 0 : 1;
}
