// Figure 1: "Performance improves after optimization on all runtime
// systems."
//
// For each of the five optimized programs — 376.kdtree, Sort, 359.botsspar,
// FFT, Strassen — and each runtime-system model (GCC, ICC, MIR), prints the
// 48-core speedup before and after the paper's optimization:
//   kdtree:   fix the missing depth increment, cutoffs 2 -> separate sweep 10
//   sort:     round-robin NUMA page placement
//   botsspar: bmod loop interchange
//   fft:      add recursion cutoffs
//   strassen: disable the hard-coded decomposition cutoff
//
// Expected shape (not absolute numbers): "after" beats "before" everywhere;
// ICC is the outlier that already performs well on unoptimized kdtree and
// FFT thanks to its queue-size internal cutoff (§2, §4.3.3).
#include <cstdio>
#include <functional>

#include "apps/fft.hpp"
#include "apps/kdtree.hpp"
#include "apps/sort.hpp"
#include "apps/sparselu.hpp"
#include "apps/strassen.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header(
      "Figure 1 — speedup before vs after optimization (48 cores)",
      "after-optimization wins on every runtime; ICC already good on "
      "unoptimized kdtree/FFT (internal cutoff); improvements up to 54.9x "
      "the original scalability");

  struct Row {
    const char* program;
    std::function<sim::Program(bool fixed)> capture;
  };
  const std::vector<Row> rows = {
      {"376.kdtree",
       [](bool fixed) {
         return capture_app("376.kdtree", [&](front::Engine& e) {
           apps::KdtreeParams p;
           p.num_points = 12000;
           p.fixed = fixed;
           return apps::kdtree_program(e, p);
         });
       }},
      {"sort",
       [](bool fixed) {
         return capture_app("sort", [&](front::Engine& e) {
           apps::SortParams p;
           p.num_elements = 1 << 20;
           p.quick_cutoff = 1 << 14;
           p.merge_cutoff = 1 << 14;
           p.placement = fixed ? front::PagePlacement::RoundRobin
                               : front::PagePlacement::FirstTouch;
           return apps::sort_program(e, p);
         });
       }},
      {"359.botsspar",
       [](bool fixed) {
         return capture_app("359.botsspar", [&](front::Engine& e) {
           apps::SparseLuParams p;
           p.blocks = 16;
           p.block_size = 32;
           p.interchange = fixed;
           return apps::sparselu_program(e, p);
         });
       }},
      {"fft",
       [](bool fixed) {
         return capture_app("fft", [&](front::Engine& e) {
           apps::FftParams p;
           p.num_samples = 1 << 15;
           p.spawn_cutoff = fixed ? (1u << 7) : 2;
           return apps::fft_program(e, p);
         });
       }},
      {"strassen",
       [](bool fixed) {
         return capture_app("strassen", [&](front::Engine& e) {
           apps::StrassenParams p;
           p.matrix_size = 4096;
           p.sc = 128;
           p.hard_coded_cutoff = !fixed;
           return apps::strassen_program(e, p);
         });
       }},
  };

  Table table(
      "48-core speedup over the serial baseline, before -> after "
      "optimization (baseline: 1-core run of the optimized program)");
  table.set_header({"program", "gcc before", "gcc after", "icc before",
                    "icc after", "mir before", "mir after"});
  for (const Row& row : rows) {
    const sim::Program before = row.capture(false);
    const sim::Program after = row.capture(true);
    // Common serial baseline, as BOTS/SPEC report speedup: the optimized
    // program on one core (minimal tasking overhead).
    const TimeNs serial =
        run48(after, sim::SimPolicy::mir(), /*cores=*/1).makespan();
    std::vector<std::string> cells = {row.program};
    for (const auto& pol : paper_policies()) {
      const TimeNs t_before = run48(before, pol).makespan();
      const TimeNs t_after = run48(after, pol).makespan();
      cells.push_back(strings::trim_double(
          static_cast<double>(serial) / static_cast<double>(t_before), 1));
      cells.push_back(strings::trim_double(
          static_cast<double>(serial) / static_cast<double>(t_after), 1));
    }
    table.add_row(cells);
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}
