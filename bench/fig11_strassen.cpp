// Figure 11: Strassen (2048x2048 input).
// (a) hard-coded cutoff -> shallow graph "limited to 58 grains" regardless
//     of SC: insufficient parallelism for 48 cores;
// (b) cutoff disabled -> 2801 grains, more parallelism, and poor memory
//     hierarchy utilization comes to the fore;
// (c) work stealing keeps sibling grains near each other (low scatter);
// (d) a central queue scatters siblings across sockets (48-core speedup of
//     only ~10 under central-queue scheduling).
#include <cstdio>

#include "apps/strassen.hpp"
#include "common/strings.hpp"
#include "export/graphml.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Figure 11 — Strassen: hard-coded cutoff + scatter",
               "(a) 58 grains with hard-coded cutoff; (b) 2801 without; poor "
               "mem-util surfaces; (c) WS scatter low; (d) central-queue "
               "scatter high, speedup ~10");

  auto capture_strassen = [&](bool hard_cutoff) {
    return capture_app("strassen", [&](front::Engine& e) {
      apps::StrassenParams p;
      p.matrix_size = 2048;
      p.sc = 128;
      p.hard_coded_cutoff = hard_cutoff;
      return apps::strassen_program(e, p);
    });
  };

  // (a) hard-coded cutoff.
  const sim::Program shallow = capture_strassen(true);
  const BenchAnalysis a = analyze48(shallow, sim::SimPolicy::mir(), 48);
  std::printf("(a) grains with hard-coded cutoff: %zu + root = %zu nodes' "
              "worth (paper: 'limited to 58 grains')\n",
              a.analysis.grains.size(), a.analysis.grains.size() + 2);
  std::printf("    SC sweep has NO effect on the graph:");
  for (u64 sc : {64u, 128u, 256u}) {
    const sim::Program p2 = capture_app("strassen", [&](front::Engine& e) {
      apps::StrassenParams sp;
      sp.matrix_size = 2048;
      sp.sc = sc;
      sp.hard_coded_cutoff = true;
      return apps::strassen_program(e, sp);
    });
    std::printf(" SC=%llu -> %zu grains;", static_cast<unsigned long long>(sc),
                p2.task_count());
  }
  std::printf("  (all identical — the bug)\n");
  std::printf("    low instantaneous parallelism: %.1f%% of grains\n",
              flagged_percent(a.analysis, Problem::LowParallelism));

  // (b) cutoff disabled.
  const sim::Program deep = capture_strassen(false);
  const BenchAnalysis b = analyze48(deep, sim::SimPolicy::mir(), 48);
  std::printf("\n(b) grains without hard-coded cutoff: %zu (paper: 2801)\n",
              b.analysis.grains.size());
  std::printf("    poor memory hierarchy utilization: %.1f%% (comes to the "
              "fore)\n",
              flagged_percent(b.analysis, Problem::PoorMemUtil));
  std::printf("    48-core makespan: shallow %.2fms -> deep %.2fms\n",
              static_cast<double>(a.trace.makespan()) / 1e6,
              static_cast<double>(b.trace.makespan()) / 1e6);

  // (c/d) scatter under work stealing vs central queue.
  const BenchAnalysis ws = analyze48(deep, sim::SimPolicy::mir(), 48);
  const BenchAnalysis cq = analyze48(deep, sim::SimPolicy::mir_central(), 48);
  auto scatter_stats = [](const BenchAnalysis& r) {
    double sum = 0.0;
    size_t off_socket = 0;
    for (const auto& m : r.analysis.metrics.per_grain) {
      sum += m.scatter;
      if (m.scatter > 16.0) ++off_socket;
    }
    return std::make_pair(sum / static_cast<double>(
                                    r.analysis.metrics.per_grain.size()),
                          100.0 * static_cast<double>(off_socket) /
                              static_cast<double>(
                                  r.analysis.metrics.per_grain.size()));
  };
  const auto [ws_mean, ws_off] = scatter_stats(ws);
  const auto [cq_mean, cq_off] = scatter_stats(cq);
  std::printf("\n(c) work stealing:  mean sibling scatter %.1f, %.1f%% of "
              "grains scattered off-socket\n", ws_mean, ws_off);
  std::printf("(d) central queue:  mean sibling scatter %.1f, %.1f%% of "
              "grains scattered off-socket\n", cq_mean, cq_off);
  const TimeNs t1c = run48(deep, sim::SimPolicy::mir_central(), 1).makespan();
  std::printf("    central-queue 48-core speedup: %.1f (paper: ~10)\n",
              static_cast<double>(t1c) /
                  static_cast<double>(cq.trace.makespan()));

  const std::string dir = out_dir();
  GraphMlOptions gopts;
  gopts.view = Problem::HighScatter;
  write_graphml_file(dir + "/fig11c_strassen_scatter_ws.graphml",
                     ws.analysis.graph, ws.trace, &ws.analysis.grains,
                     &ws.analysis.metrics, gopts);
  write_graphml_file(dir + "/fig11d_strassen_scatter_central.graphml",
                     cq.analysis.graph, cq.trace, &cq.analysis.grains,
                     &cq.analysis.metrics, gopts);
  std::printf("exported: %s/fig11{c,d}_strassen_scatter_*.graphml\n",
              dir.c_str());
  return 0;
}
