#include "bench_support.hpp"

#include <sys/stat.h>

#include <cstdio>

namespace gg::bench {

std::vector<sim::SimPolicy> paper_policies() {
  return {sim::SimPolicy::gcc(), sim::SimPolicy::icc(), sim::SimPolicy::mir()};
}

sim::Program capture_app(
    const std::string& name,
    const std::function<front::TaskFn(front::Engine&)>& make) {
  sim::Capture cap;
  sim::CaptureRegionEngine eng(cap);
  return cap.run(name, make(eng));
}

Trace run48(const sim::Program& prog, const sim::SimPolicy& policy, int cores,
            bool memory_model) {
  sim::SimOptions o;
  o.topology = Topology::opteron48();
  o.num_cores = cores;
  o.policy = policy;
  o.memory_model = memory_model;
  return sim::simulate(prog, o);
}

double speedup(const sim::Program& prog, const sim::SimPolicy& policy,
               int cores, bool memory_model) {
  const TimeNs t1 = run48(prog, policy, 1, memory_model).makespan();
  const TimeNs tp = run48(prog, policy, cores, memory_model).makespan();
  if (tp == 0) return 0.0;
  return static_cast<double>(t1) / static_cast<double>(tp);
}

BenchAnalysis analyze48(const sim::Program& prog, const sim::SimPolicy& policy,
                        int cores, bool with_baseline, bool memory_model) {
  BenchAnalysis out;
  out.trace = run48(prog, policy, cores, memory_model);
  AnalysisOptions ao;
  if (with_baseline) {
    const Trace t1 = run48(prog, policy, 1, memory_model);
    out.baseline = GrainTable::build(t1);
    ao.baseline = &out.baseline;
  }
  out.analysis = analyze(out.trace, Topology::opteron48(), ao);
  return out;
}

double flagged_percent(const Analysis& a, Problem problem) {
  return a.problems[static_cast<size_t>(problem)].flagged_percent;
}

void print_header(const std::string& experiment,
                  const std::string& paper_says) {
  std::printf("################################################################\n");
  std::printf("# %s\n", experiment.c_str());
  std::printf("# paper reports: %s\n", paper_says.c_str());
  std::printf("################################################################\n");
}

std::string out_dir() {
  const std::string dir = "bench_out";
  ::mkdir(dir.c_str(), 0775);
  return dir;
}

}  // namespace gg::bench
