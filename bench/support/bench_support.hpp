// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) the paper's reported numbers and (b) our measured
// numbers side by side, so paper-vs-measured comparisons can be read off
// bench output directly (EXPERIMENTS.md aggregates them).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace gg::bench {

/// The three runtime systems of the paper's evaluation.
std::vector<sim::SimPolicy> paper_policies();  // gcc, icc, mir

/// Captures an app built through the standard builder signature
/// (Engine& for regions -> TaskFn).
sim::Program capture_app(
    const std::string& name,
    const std::function<front::TaskFn(front::Engine&)>& make);

/// Simulates on the paper's 48-core machine.
Trace run48(const sim::Program& prog, const sim::SimPolicy& policy,
            int cores = 48, bool memory_model = true);

/// Speedup of `cores`-core over 1-core execution under the same policy.
double speedup(const sim::Program& prog, const sim::SimPolicy& policy,
               int cores = 48, bool memory_model = true);

/// Full analysis pipeline on a 48-core trace (optionally with a 1-core
/// baseline for work deviation).
struct BenchAnalysis {
  Trace trace;
  Analysis analysis;
  GrainTable baseline;  ///< valid when with_baseline was requested
};
BenchAnalysis analyze48(const sim::Program& prog, const sim::SimPolicy& policy,
                        int cores = 48, bool with_baseline = false,
                        bool memory_model = true);

/// Percent of grains flagged with `problem` in an analysis.
double flagged_percent(const Analysis& a, Problem problem);

/// Prints a standard header naming the experiment and what the paper
/// reports for it.
void print_header(const std::string& experiment, const std::string& paper_says);

/// Directory for bench artifacts (GraphML/DOT exports); created on demand.
std::string out_dir();

}  // namespace gg::bench
