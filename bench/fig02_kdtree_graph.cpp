// Figure 2: grain graph of 376.kdtree for a small input (tree size 200,
// radius 10, cutoff 2) "containing 740 grains. Performance is lost due to
// many grains created by recursing to a large depth despite providing 2 as
// cutoff. The cutoff has no effect."
//
// Prints the grain count and the recursion-depth distribution for the buggy
// and fixed program, demonstrating the structural anomaly the graph makes
// visible, and exports the buggy graph to GraphML/DOT for viewing.
#include <algorithm>
#include <cstdio>
#include <map>

#include "apps/kdtree.hpp"
#include "export/dot.hpp"
#include "export/graphml.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Figure 2 — kdtree grain graph, small input",
               "740 grains; deep recursion; the cutoff (2) has no effect");

  auto run_case = [&](bool fixed) {
    const sim::Program prog =
        capture_app("376.kdtree", [&](front::Engine& e) {
          apps::KdtreeParams p;
          p.num_points = 200;
          p.cutoff = 2;
          p.sweep_cutoff = 4;
          p.fixed = fixed;
          return apps::kdtree_program(e, p);
        });
    return analyze48(prog, sim::SimPolicy::mir(), 48);
  };

  const BenchAnalysis buggy = run_case(false);
  const BenchAnalysis ok = run_case(true);

  auto depth_histogram = [](const GrainTable& grains) {
    std::map<size_t, size_t> hist;  // path depth -> count
    for (const Grain& g : grains.grains()) {
      const size_t depth =
          static_cast<size_t>(std::count(g.path.begin(), g.path.end(), '.'));
      hist[depth]++;
    }
    return hist;
  };

  std::printf("buggy (cutoff 2, no depth increment): %zu grains\n",
              buggy.analysis.grains.size());
  std::printf("fixed (depth increment, sweep cutoff 4): %zu grains\n\n",
              ok.analysis.grains.size());
  std::printf("recursion-depth histogram (depth: grains)\n");
  const auto bh = depth_histogram(buggy.analysis.grains);
  const auto fh = depth_histogram(ok.analysis.grains);
  const size_t max_depth = std::max(bh.rbegin()->first, fh.rbegin()->first);
  for (size_t d = 1; d <= max_depth; ++d) {
    const auto b = bh.count(d) ? bh.at(d) : 0;
    const auto f = fh.count(d) ? fh.at(d) : 0;
    std::printf("  depth %2zu: buggy %4zu   fixed %4zu%s\n", d, b, f,
                d > 2 && b > 0 ? "   <- beyond the cutoff!" : "");
  }
  std::printf("\nThe buggy graph recurses to depth %zu despite cutoff 2 — the "
              "structural anomaly Figure 2 shows at a glance.\n",
              bh.rbegin()->first);

  const std::string dir = out_dir();
  GraphMlOptions gopts;
  write_graphml_file(dir + "/fig02_kdtree_buggy.graphml", buggy.analysis.graph,
                     buggy.trace, &buggy.analysis.grains,
                     &buggy.analysis.metrics, gopts);
  write_dot_file(dir + "/fig02_kdtree_buggy.dot", buggy.analysis.graph,
                 buggy.trace);
  std::printf("exported: %s/fig02_kdtree_buggy.{graphml,dot}\n", dir.c_str());
  return 0;
}
