// Ablation: graph reductions (§3.1, §6).
//
// The paper motivates reductions with rendering time ("Large graphs have
// long rendering times... encouraging results from early experiments with
// collapsing collections of nodes"). This ablation quantifies what each
// reduction buys on a large graph: node/edge counts, reduction-pass time,
// and the conserved aggregate weight.
#include <chrono>
#include <cstdio>

#include "apps/fft.hpp"
#include "apps/sort.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "graph/reductions.hpp"
#include "graph/summarize.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Ablation — graph reductions",
               "reductions shrink graphs for rendering while conserving "
               "aggregate weights");

  const sim::Program prog = capture_app("fft", [&](front::Engine& e) {
    apps::FftParams p;
    p.num_samples = 1 << 14;
    p.spawn_cutoff = 2;  // maximal graph
    return apps::fft_program(e, p);
  });
  const Trace t = run48(prog, sim::SimPolicy::mir(), 48);
  const auto t0 = std::chrono::steady_clock::now();
  const GrainGraph g = GrainGraph::build(t);
  const auto t1 = std::chrono::steady_clock::now();
  const double build_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("graph build: %zu nodes, %zu edges in %.1fms\n", g.node_count(),
              g.edge_count(), build_ms);

  TimeNs busy_total = 0;
  for (const GraphNode& n : g.nodes()) busy_total += n.busy;

  struct Case {
    const char* name;
    ReductionOptions opts;
  };
  const Case cases[] = {
      {"fragments only", {true, false, false}},
      {"forks only", {false, true, false}},
      {"bookkeeps only", {false, false, true}},
      {"all", {true, true, true}},
  };
  Table table("reduction ablation");
  table.set_header({"reduction", "nodes", "edges", "node shrink",
                    "pass time", "weight conserved"});
  for (const Case& c : cases) {
    const auto r0 = std::chrono::steady_clock::now();
    const GrainGraph r = reduce_graph(g, c.opts);
    const auto r1 = std::chrono::steady_clock::now();
    TimeNs busy_r = 0;
    for (const GraphNode& n : r.nodes()) busy_r += n.busy;
    table.add_row(
        {c.name, std::to_string(r.node_count()), std::to_string(r.edge_count()),
         strings::trim_double(
             100.0 * (1.0 - static_cast<double>(r.node_count()) /
                                static_cast<double>(g.node_count())),
             1) + "%",
         strings::trim_double(
             std::chrono::duration<double, std::milli>(r1 - r0).count(), 1) +
             "ms",
         busy_r == busy_total ? "yes" : "NO"});
  }
  std::printf("%s", table.to_text().c_str());

  // §6's follow-on idea: collapse whole subtrees into summary nodes.
  for (size_t budget : {10000ul, 1000ul, 100ul}) {
    const auto t0 = std::chrono::steady_clock::now();
    const SummarizeResult s = summarize_graph(g, budget);
    const auto t1 = std::chrono::steady_clock::now();
    TimeNs busy_s = 0;
    for (const GraphNode& n : s.graph.nodes()) busy_s += n.busy;
    std::printf("summarize to <= %6zu nodes: %7zu nodes (cut depth %zu, %zu "
                "subtrees collapsed, %.1fms, weight conserved: %s)\n",
                budget, s.graph.node_count(), s.cut_depth,
                s.collapsed_subtrees,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                busy_s == busy_total ? "yes" : "NO");
  }
  return 0;
}
