# Bench binaries land directly in ${CMAKE_BINARY_DIR}/bench (no CMake
# artifacts there) so `for b in build/bench/*; do $b; done` runs cleanly.
set(GG_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

add_library(gg_bench_support ${CMAKE_SOURCE_DIR}/bench/support/bench_support.cpp)
target_include_directories(gg_bench_support PUBLIC ${CMAKE_SOURCE_DIR}/bench)
target_link_libraries(gg_bench_support PUBLIC
  gg_apps gg_sim gg_rts gg_analysis gg_metrics gg_graph gg_export gg_trace
  gg_topology gg_common)

function(gg_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE gg_bench_support gg_warnings)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${GG_BENCH_DIR})
endfunction()

gg_add_bench(fig01_speedup)
gg_add_bench(fig02_kdtree_graph)
gg_add_bench(fig03_structure)
gg_add_bench(fig04_timeline_foil)
gg_add_bench(fig05_sort_parallelism)
gg_add_bench(tab_sort_inflation)
gg_add_bench(fig06_botsspar)
gg_add_bench(fig07_fft_benefit)
gg_add_bench(fig08_fft_memutil)
gg_add_bench(fig09_freqmine_graph)
gg_add_bench(fig10_freqmine_lb)
gg_add_bench(tab1_freqmine)
gg_add_bench(fig11_strassen)
gg_add_bench(other_benchmarks)
gg_add_bench(overhead_profiling)
gg_add_bench(ablation_reductions)
gg_add_bench(ablation_parallelism_intervals)
gg_add_bench(micro_components)
target_link_libraries(micro_components PRIVATE benchmark::benchmark)
gg_add_bench(ext_dataflow_sparselu)
gg_add_bench(ext_taskloop)
gg_add_bench(ablation_topology)
gg_add_bench(perf_pipeline)
