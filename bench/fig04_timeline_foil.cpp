// Figure 4: "Existing visualizations show load imbalance and offer no
// actionable information about Sort performance" — the VTune-style
// thread-timeline foil.
//
// Renders the per-thread timeline for Sort: it shows that cores perform
// uneven work and spend time in the runtime, but NOTHING links the
// imbalance to culprit tasks. The grain-graph report that follows shows the
// contrast: the same trace pinpoints low instantaneous parallelism and the
// waxing/waning phases (Fig. 5).
#include <cstdio>

#include "analysis/timeline.hpp"
#include "apps/sort.hpp"
#include "common/strings.hpp"
#include "support/bench_support.hpp"

int main() {
  using namespace gg;
  using namespace gg::bench;

  print_header("Figure 4 — thread-timeline foil (Sort)",
               "timeline shows uneven per-core work and runtime time; no "
               "link to culprit tasks");

  const sim::Program prog = capture_app("sort", [&](front::Engine& e) {
    apps::SortParams p;
    p.num_elements = 1 << 19;
    p.quick_cutoff = 1 << 14;
    p.merge_cutoff = 1 << 14;
    return apps::sort_program(e, p);
  });
  const Trace t = run48(prog, sim::SimPolicy::mir(), 48);
  const TimelineView v = thread_timeline(t, 72);

  std::printf("thread timeline ('#' busy, '+' runtime, '.' idle), first 12 of "
              "%d threads:\n", t.meta.num_workers);
  for (size_t i = 0; i < v.strips.size() && i < 12; ++i) {
    std::printf("  t%02zu |%s| busy %5.1f%% runtime %4.1f%% idle %5.1f%%\n", i,
                v.strips[i].c_str(), v.threads[i].busy_percent,
                v.threads[i].overhead_percent, v.threads[i].idle_percent);
  }
  std::printf("\nload imbalance visible (max/mean busy = %.2f) — and that is "
              "ALL this view shows.\n", v.imbalance);
  std::printf("No task identities, no parent-child links, no per-instance "
              "times: the paper's point about Fig. 4.\n");
  std::printf("\n--- the same trace through the grain-graph pipeline ---\n");
  const Analysis a = analyze(t, Topology::opteron48());
  std::printf("%s", render_report(t, a).c_str());
  return 0;
}
