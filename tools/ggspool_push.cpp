// ggspool-push — stream a GGSPOOL1 spool into a ggserved ingest socket.
//
// The network twin of dropping a spool file into the daemon's --dir: each
// complete frame ships as one GGWIRE1 EPOCH, acked durably by the daemon,
// and the final report is byte-identical to `gganalyze --recover` over the
// same file. Two modes:
//
//   batch (default)  read the whole file, push it, seal, exit;
//   --follow         tail a growing spool like the daemon's own tailer,
//                    pushing frames as the writer seals them; seals the
//                    wire stream when the spool's footer lands (or, after
//                    --idle-ms of silence, with whatever the tail shows).
//
// Connection failures (daemon still starting, daemon restarting) retry
// with capped exponential backoff; mid-push disconnects resume on the
// client's session token with the server deduplicating acked epochs. If
// the daemon lost the session (restart), the push restarts from the file
// — the source of truth is always the spool on disk.
//
// --fault arms a deterministic client-side fault plan (chaos scripting):
//   reset | mid-frame-reset | partial-write | duplicate | bit-flip |
//   slowloris | garbage
//
// Exit: 0 pushed + sealed, 1 push failed, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "fault/fault.hpp"
#include "serve/wire_client.hpp"
#include "trace/spool.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <spool> --socket <ingest-socket> [options]\n"
      "  --name <s>         session display name (default: file basename)\n"
      "  --follow           live-follow a growing spool\n"
      "  --idle-ms <n>      --follow: seal after this much silence (5000)\n"
      "  --seed <n>         deterministic token/jitter seed (0: derive)\n"
      "  --attempts <n>     connect/reconnect attempts per op (30)\n"
      "  --backoff-ms <n>   initial reconnect backoff (10)\n"
      "  --fault <kind>     arm a client-side fault plan (chaos testing):\n"
      "                     reset|mid-frame-reset|partial-write|duplicate|\n"
      "                     bit-flip|slowloris|garbage\n"
      "  --fault-seq <n>    1-based epoch seq the fault targets (1)\n"
      "  --fault-repeat <n> injections before the plan disarms (1)\n",
      argv0);
  return 2;
}

bool parse_fault_kind(const std::string& s, gg::fault::WireFaultPlan* plan) {
  using Kind = gg::fault::WireFaultPlan::Kind;
  if (s == "reset") plan->kind = Kind::ResetAtFrame;
  else if (s == "mid-frame-reset") plan->kind = Kind::ResetMidFrame;
  else if (s == "partial-write") plan->kind = Kind::PartialWrite;
  else if (s == "duplicate") plan->kind = Kind::DuplicateFrame;
  else if (s == "bit-flip") plan->kind = Kind::BitFlip;
  else if (s == "slowloris") plan->kind = Kind::Slowloris;
  else if (s == "garbage") plan->kind = Kind::GarbagePreamble;
  else return false;
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Live-follow: tail the growing spool, pushing every complete frame the
/// writer seals, until the footer arrives or the file goes silent for
/// idle_ms. The delimiting walk is the tailer's: header magic, bounded
/// payload length, complete-frame-or-wait.
int follow_push(gg::serve::WireClient& client, const std::string& path,
                gg::u64 idle_ms) {
  using namespace gg;
  constexpr u64 kMaxPayload = 1ull << 30;
  const size_t kHeaderBytes = spool::kSpoolMagic.size() + 4;

  std::string buf;
  size_t pos = 0;          // consumed offset into buf == stream offset
  bool begun = false;
  u64 quiet_ms = 0;
  std::string error;

  while (true) {
    // Pull whatever the writer appended since the last look.
    std::ifstream in(path, std::ios::binary);
    if (in) {
      in.seekg(0, std::ios::end);
      const auto size = static_cast<size_t>(in.tellg());
      if (size > buf.size()) {
        in.seekg(static_cast<std::streamoff>(buf.size()));
        std::string delta(size - buf.size(), '\0');
        in.read(delta.data(), static_cast<std::streamsize>(delta.size()));
        buf += delta;
      }
    }

    bool progressed = false;
    if (!begun && buf.size() >= kHeaderBytes) {
      if (buf.compare(0, spool::kSpoolMagic.size(), spool::kSpoolMagic) !=
          0) {
        std::fprintf(stderr, "error: %s is not a GGSPOOL1 spool\n",
                     path.c_str());
        return 1;
      }
      u32 num_workers = 0;
      for (int i = 0; i < 4; ++i)
        num_workers |= static_cast<u32>(static_cast<u8>(
                           buf[spool::kSpoolMagic.size() + i]))
                       << (8 * i);
      if (!client.begin(num_workers, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      pos = kHeaderBytes;
      begun = true;
      progressed = true;
    }

    while (begun && buf.size() - pos >= spool::kFrameHeaderBytes) {
      if (std::memcmp(buf.data() + pos, spool::kFrameMagic, 4) != 0) {
        // Garbled magic mid-stream: a live writer never produces this, so
        // the source is damaged — seal what we have and stop.
        if (!client.seal(serve::wire::EndKind::Garbled, pos,
                         buf.size() - pos, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return 1;
        }
        return 0;
      }
      u64 payload_len = 0;
      for (int i = 0; i < 8; ++i)
        payload_len |= static_cast<u64>(static_cast<u8>(buf[pos + 13 + i]))
                       << (8 * i);
      if (payload_len > kMaxPayload) {
        if (!client.seal(serve::wire::EndKind::Overrun, pos,
                         buf.size() - pos, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return 1;
        }
        return 0;
      }
      const u64 frame_len = spool::kFrameHeaderBytes + payload_len;
      if (buf.size() - pos < frame_len) break;  // wait for the rest
      const char type = buf[pos + 4];
      if (!client.send_frame(
              std::string_view(buf.data() + pos, frame_len), pos, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      pos += frame_len;
      progressed = true;
      if (type == 'F' || type == 'C') {
        if (!client.seal(serve::wire::EndKind::Clean, pos, 0, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return 1;
        }
        return 0;
      }
    }

    if (progressed) {
      quiet_ms = 0;
      continue;
    }
    if (quiet_ms >= idle_ms) {
      // Writer went silent with no footer: seal with what the tail shows,
      // exactly how the daemon's own tailer classifies a stale spool.
      const u64 tail = buf.size() - pos;
      const auto end = !begun || tail == 0
                           ? serve::wire::EndKind::Clean
                           : serve::wire::EndKind::TornHeader;
      if (!begun) {
        if (!client.begin(1, &error)) {
          std::fprintf(stderr, "error: %s\n", error.c_str());
          return 1;
        }
      }
      if (!client.seal(end, pos, tail, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    quiet_ms += 20;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gg;

  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];

  serve::WireClientOptions opts;
  fault::WireFaultPlan plan;
  bool follow = false;
  u64 idle_ms = 5000;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) return usage(argv[0]);
      opts.socket_path = argv[++i];
    } else if (arg == "--name") {
      if (i + 1 >= argc) return usage(argv[0]);
      opts.name = argv[++i];
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--idle-ms") {
      if (i + 1 >= argc) return usage(argv[0]);
      idle_ms = static_cast<u64>(std::atol(argv[++i]));
    } else if (arg == "--seed") {
      if (i + 1 >= argc) return usage(argv[0]);
      opts.seed = static_cast<u64>(std::atoll(argv[++i]));
    } else if (arg == "--attempts") {
      if (i + 1 >= argc) return usage(argv[0]);
      opts.max_attempts = static_cast<u32>(std::atol(argv[++i]));
    } else if (arg == "--backoff-ms") {
      if (i + 1 >= argc) return usage(argv[0]);
      opts.backoff_initial_ns =
          static_cast<u64>(std::atol(argv[++i])) * 1'000'000ull;
    } else if (arg == "--fault") {
      if (i + 1 >= argc || !parse_fault_kind(argv[++i], &plan))
        return usage(argv[0]);
    } else if (arg == "--fault-seq") {
      if (i + 1 >= argc) return usage(argv[0]);
      plan.target_seq = static_cast<u32>(std::atol(argv[++i]));
    } else if (arg == "--fault-repeat") {
      if (i + 1 >= argc) return usage(argv[0]);
      plan.repeat = static_cast<u32>(std::atol(argv[++i]));
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.socket_path.empty()) {
    std::fprintf(stderr, "error: --socket is required\n");
    return usage(argv[0]);
  }
  if (opts.name.empty()) {
    const size_t slash = path.find_last_of('/');
    opts.name = slash == std::string::npos ? path : path.substr(slash + 1);
  }
  if (plan.enabled()) opts.fault = &plan;

  serve::WireClient client(opts);
  std::string error;
  int rc;
  if (follow) {
    rc = follow_push(client, path, idle_ms);
  } else {
    std::string bytes;
    if (!read_file(path, &bytes)) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 1;
    }
    rc = serve::push_spool_stream(client, bytes, &error) ? 0 : 1;
    if (rc != 0) std::fprintf(stderr, "error: %s\n", error.c_str());
  }
  client.bye();
  std::fprintf(stderr,
               "ggspool-push: %s token=%s epochs=%llu acked=%llu "
               "reconnects=%llu faults=%llu %s\n",
               opts.name.c_str(), client.token().hex().substr(0, 12).c_str(),
               static_cast<unsigned long long>(client.epochs_sent()),
               static_cast<unsigned long long>(client.acked_seq()),
               static_cast<unsigned long long>(client.reconnects()),
               static_cast<unsigned long long>(client.faults_injected()),
               rc == 0 ? "sealed" : "FAILED");
  return rc;
}
