// ggstat — live spool monitor: pretty-prints the telemetry ('T') frames a
// running (or finished, or crashed) engine streams into its GGSPOOL1 file.
//
// Unlike gganalyze --recover, ggstat never replays records: it walks frame
// headers, verifies only the frames it reads, and decodes the 'M' meta and
// 'T' telemetry payloads. That makes it cheap enough to run against a live
// spool while workers are still appending to it.
//
// Usage:
//   ggstat <run.ggspool> [options]
//     --follow         poll the file and print a progress line whenever a
//                      new telemetry frame lands; exits when the footer
//                      ('F' clean or 'C' crash) appears
//     --interval <ms>      base polling interval for --follow (default 100)
//     --max-interval <ms>  backoff ceiling for --follow when the file is
//                          not growing (default 2000)
//     --json           one-shot mode: emit the last snapshot as JSON
//                      instead of the aligned text dump
//   ggstat --connect <socket> [REQUEST ...]
//     sends one query line to a running ggserved (default STATUS) and
//     prints the response; e.g. `ggstat --connect /tmp/gg.sock SESSIONS`.
//
// --follow stats the file before touching it: an unchanged size means no
// read, no re-scan, and an exponentially backed-off sleep (interval
// doubling up to --max-interval, reset the moment the file grows), so
// following an idle spool costs ~0 CPU instead of a full re-parse per
// tick.
//
// Exit codes: 0 footer seen (clean or crash) or one-shot success; 1 the
// file is not a spool / unreadable; 2 usage error. A spool with no valid
// telemetry frames reports "telemetry unavailable" and still exits 0 —
// telemetry is advisory by design.
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "serve/endpoint.hpp"
#include "trace/spool.hpp"
#include "trace/trace.hpp"

namespace {

using namespace gg;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <run.ggspool> [--follow] [--interval ms]\n"
               "       [--max-interval ms] [--json]\n"
               "   or: %s --connect <socket> [REQUEST ...]\n"
               "  tails the spool's telemetry ('T') frames: run identity,\n"
               "  progress, epoch rate, per-worker health. --follow exits\n"
               "  when the run writes its footer (clean or crash).\n"
               "  --connect queries a running ggserved instead (default\n"
               "  request: STATUS).\n",
               argv0, argv0);
  return 2;
}

/// What one scan pass over the currently-readable bytes yields.
struct SpoolView {
  bool is_spool = false;
  std::optional<TraceMeta> meta;   ///< from the first valid 'M' frame
  obs::MetricsSnapshot telemetry;  ///< last valid 'T' payload, decoded
  u64 telemetry_frames = 0;        ///< valid 'T' frames
  u64 telemetry_corrupt = 0;       ///< 'T' frames failing checksum/decode
  u64 epoch_frames = 0;
  u64 frames_total = 0;
  bool clean_footer = false;
  bool crash_footer = false;
};

/// Reads the frame payload and verifies the stored checksum. `bytes` must
/// cover the whole frame (scan_frames guarantees it).
bool frame_valid(std::string_view bytes, const spool::FrameSpan& f,
                 std::string_view* payload_out) {
  const char* p = bytes.data() + f.offset;
  // Header: magic(4) type(1) worker(4) seq(4) payload_len(8) checksum(8);
  // all fields little-endian.
  u64 stored = 0;
  for (int i = 7; i >= 0; --i) {
    stored = (stored << 8) | static_cast<unsigned char>(p[21 + i]);
  }
  const size_t plen = f.size - spool::kFrameHeaderBytes;
  std::string_view payload(p + spool::kFrameHeaderBytes, plen);
  if (spool::frame_checksum(f.type, f.worker, f.seq, payload.data(),
                            payload.size()) != stored) {
    return false;
  }
  *payload_out = payload;
  return true;
}

SpoolView scan(std::string_view bytes) {
  SpoolView v;
  if (!spool::looks_like_spool(bytes)) return v;
  v.is_spool = true;
  for (const spool::FrameSpan& f : spool::scan_frames(bytes)) {
    ++v.frames_total;
    std::string_view payload;
    switch (f.type) {
      case spool::FrameType::Meta:
      case spool::FrameType::CleanFooter: {
        if (f.type == spool::FrameType::CleanFooter) v.clean_footer = true;
        if (!frame_valid(bytes, f, &payload)) break;
        TraceMeta meta;
        if (spool::decode_meta_payload(payload, &meta)) {
          v.meta = std::move(meta);  // footer meta supersedes the header's
        }
        break;
      }
      case spool::FrameType::CrashFooter:
        v.crash_footer = true;
        break;
      case spool::FrameType::Epoch:
        ++v.epoch_frames;
        break;
      case spool::FrameType::Telemetry: {
        if (!frame_valid(bytes, f, &payload)) {
          ++v.telemetry_corrupt;
          break;
        }
        obs::MetricsSnapshot snap;
        if (obs::decode_telemetry_payload(payload, &snap)) {
          v.telemetry = std::move(snap);  // keep the latest
          ++v.telemetry_frames;
        } else {
          ++v.telemetry_corrupt;
        }
        break;
      }
      default:
        break;  // strings/dump frames carry nothing ggstat reports
    }
  }
  return v;
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  *ok = true;
  return std::move(ss).str();
}

double gauge_of(const obs::MetricsSnapshot& s, const std::string& name,
                double fallback = 0.0) {
  auto it = s.gauges.find(name);
  return it != s.gauges.end() ? it->second : fallback;
}

u64 counter_of(const obs::MetricsSnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it != s.counters.end() ? it->second : 0;
}

void print_identity(const SpoolView& v) {
  if (v.meta.has_value()) {
    std::printf("program %s (%s), %d workers on %s, clock %s\n",
                v.meta->program.c_str(), v.meta->runtime.c_str(),
                v.meta->num_workers, v.meta->topology.c_str(),
                v.meta->clock_source.empty() ? "unknown"
                                             : v.meta->clock_source.c_str());
  } else {
    std::printf("program (meta frame not yet written)\n");
  }
}

/// Per-worker health line from the engine.worker.N.* gauges. Worker state
/// values mirror rts::WorkerState: 0 idle, 1 exec, 2 taskwait, 3 loopwait.
void print_workers(const obs::MetricsSnapshot& s) {
  static const char* const kStates[] = {"idle", "exec", "taskwait",
                                        "loopwait"};
  for (int w = 0; w < 4096; ++w) {
    const std::string base = "engine.worker." + std::to_string(w) + ".";
    auto hb = s.gauges.find(base + "heartbeat");
    if (hb == s.gauges.end()) break;
    const int state = static_cast<int>(gauge_of(s, base + "state"));
    std::printf("  worker %2d: heartbeat %10.0f, %s, queue depth %.0f\n", w,
                hb->second,
                state >= 0 && state < 4 ? kStates[state] : "?",
                gauge_of(s, base + "queue_depth"));
  }
}

void print_snapshot(const SpoolView& v, bool json) {
  if (v.telemetry_frames == 0) {
    std::printf("telemetry unavailable (%s)\n",
                v.telemetry_corrupt > 0 ? "all frames corrupt"
                                        : "no 'T' frames in spool");
    return;
  }
  if (json) {
    obs::render_json(std::cout, v.telemetry);
    return;
  }
  obs::render_text(std::cout, v.telemetry);
  print_workers(v.telemetry);
}

int one_shot(const std::string& path, bool json) {
  bool ok = false;
  const std::string bytes = read_file(path, &ok);
  if (!ok) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  const SpoolView v = scan(bytes);
  if (!v.is_spool) {
    std::fprintf(stderr, "error: %s is not a GGSPOOL1 file\n", path.c_str());
    return 1;
  }
  if (!json) {
    print_identity(v);
    std::printf("frames %" PRIu64 " (%" PRIu64 " epochs, %" PRIu64
                " telemetry", v.frames_total, v.epoch_frames,
                v.telemetry_frames);
    if (v.telemetry_corrupt > 0) {
      std::printf(", %" PRIu64 " corrupt", v.telemetry_corrupt);
    }
    std::printf("), %s\n", v.clean_footer   ? "clean footer"
                           : v.crash_footer ? "CRASH footer"
                                            : "no footer (live or torn)");
  }
  print_snapshot(v, json);
  return 0;
}

int follow(const std::string& path, int interval_ms, int max_interval_ms) {
  u64 last_epochs = 0;
  u64 last_ts_ns = 0;
  u64 printed_frames = 0;
  bool printed_identity = false;
  // Backoff state: sleep doubles from the base interval up to the ceiling
  // while the file does not grow, and snaps back the moment it does. -1
  // means "size unknown" (first pass / file absent), which always reads.
  long long last_size = -1;
  int sleep_ms = interval_ms;
  for (;;) {
    struct stat st;
    const bool statted = ::stat(path.c_str(), &st) == 0;
    if (statted && static_cast<long long>(st.st_size) == last_size) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      sleep_ms = std::min(sleep_ms * 2, max_interval_ms);
      continue;  // unchanged: no read, no re-scan
    }
    if (statted) last_size = static_cast<long long>(st.st_size);
    sleep_ms = interval_ms;
    bool ok = false;
    const std::string bytes = read_file(path, &ok);
    if (ok) {
      const SpoolView v = scan(bytes);
      if (!v.is_spool && bytes.size() >= spool::kSpoolMagic.size()) {
        std::fprintf(stderr, "error: %s is not a GGSPOOL1 file\n",
                     path.c_str());
        return 1;
      }
      if (v.is_spool) {
        if (!printed_identity && v.meta.has_value()) {
          print_identity(v);
          printed_identity = true;
        }
        if (v.telemetry_frames > printed_frames) {
          printed_frames = v.telemetry_frames;
          const obs::MetricsSnapshot& s = v.telemetry;
          const u64 executed = counter_of(s, "engine.tasks_executed");
          const u64 spawned = counter_of(s, "engine.tasks_spawned");
          const double progress = gauge_of(s, "engine.progress");
          const double live = gauge_of(s, "engine.live_tasks");
          // Epoch rate across successive snapshots (wall-clock based).
          double epochs_per_sec = 0.0;
          const double epochs = gauge_of(s, "spool.epochs_sealed");
          if (last_ts_ns != 0 && s.ts_ns > last_ts_ns &&
              epochs >= static_cast<double>(last_epochs)) {
            epochs_per_sec = (epochs - static_cast<double>(last_epochs)) *
                             1e9 / static_cast<double>(s.ts_ns - last_ts_ns);
          }
          last_epochs = static_cast<u64>(epochs);
          last_ts_ns = s.ts_ns;
          const double pct =
              spawned > 0 ? 100.0 * static_cast<double>(executed) /
                                static_cast<double>(spawned)
                          : 0.0;
          std::printf("[T %3" PRIu64 "] grains %.0f, tasks %" PRIu64 "/%"
                      PRIu64 " (%.0f%%), live %.0f, steals %" PRIu64
                      ", epochs %.0f (%.1f/s)\n",
                      v.telemetry_frames, progress, executed, spawned, pct,
                      live, counter_of(s, "engine.steals"), epochs,
                      epochs_per_sec);
          std::fflush(stdout);
        }
        if (v.clean_footer || v.crash_footer) {
          std::printf("run finished: %s (%" PRIu64 " frames, %" PRIu64
                      " telemetry snapshots%s)\n",
                      v.clean_footer ? "clean" : "CRASHED", v.frames_total,
                      v.telemetry_frames,
                      v.telemetry_corrupt > 0 ? ", some corrupt" : "");
          if (v.telemetry_frames > 0) print_workers(v.telemetry);
          return 0;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int connect_mode(const std::string& socket_path,
                 const std::string& request) {
  std::string response, error;
  // Retry connection failures with capped backoff: scripts routinely start
  // ggserved and query it in the same breath, racing the socket's bind.
  if (!gg::serve::endpoint_request_retry(socket_path, request,
                                         /*max_attempts=*/20,
                                         /*backoff_initial_ns=*/10'000'000,
                                         /*backoff_max_ns=*/500'000'000,
                                         &response, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::fwrite(response.data(), 1, response.size(), stdout);
  if (!response.empty() && response.back() != '\n') std::printf("\n");
  return response.rfind("ERR", 0) == 0 ? 1 : 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  if (std::string(argv[1]) == "--connect") {
    if (argc < 3) return usage(argv[0]);
    std::string request;
    for (int i = 3; i < argc; ++i) {
      if (!request.empty()) request += ' ';
      request += argv[i];
    }
    if (request.empty()) request = "STATUS";
    return connect_mode(argv[2], request);
  }
  const std::string path = argv[1];
  bool follow_mode = false, json = false;
  int interval_ms = 100;
  int max_interval_ms = 2000;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--follow") {
      follow_mode = true;
    } else if (arg == "--interval") {
      if (i + 1 >= argc) return usage(argv[0]);
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms <= 0) {
        std::fprintf(stderr, "--interval expects a positive ms count\n");
        return 2;
      }
    } else if (arg == "--max-interval") {
      if (i + 1 >= argc) return usage(argv[0]);
      max_interval_ms = std::atoi(argv[++i]);
      if (max_interval_ms <= 0) {
        std::fprintf(stderr, "--max-interval expects a positive ms count\n");
        return 2;
      }
    } else if (arg == "--json") {
      json = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (follow_mode && json) {
    std::fprintf(stderr, "--follow and --json are mutually exclusive\n");
    return 2;
  }
  max_interval_ms = std::max(max_interval_ms, interval_ms);
  return follow_mode ? follow(path, interval_ms, max_interval_ms)
                     : one_shot(path, json);
}
