// ggtrace-recover — reconstruct a trace from a crash spool (.ggspool).
//
//   ggtrace-recover in.ggspool out.(ggtrace|ggbin)
//
// Replays the longest valid prefix of the spool's epoch frames, prints the
// recovery report (frames kept/corrupt, torn tail, crash provenance,
// supervisor diagnostics) to stderr, runs the salvage pass when the spool
// is partial, and writes the reconstructed trace in the format chosen by
// the output extension. Exit codes follow the pipeline contract: 0 the
// spool was cleanly finalized, 3 the trace was recovered/salvaged from a
// partial spool (degraded but analyzable), 4 nothing analyzable survived,
// 1 output write failure, 2 usage.
#include <cstdio>
#include <string>
#include <vector>

#include "trace/salvage.hpp"
#include "trace/serialize.hpp"
#include "trace/spool.hpp"
#include "trace/validate.hpp"

int main(int argc, char** argv) {
  using namespace gg;
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <in.ggspool> <out.(ggtrace|ggbin)>\n",
                 argv[0]);
    return 2;
  }
  const std::string in_path = argv[1];
  const char* out_path = argv[2];

  std::string err;
  spool::RecoverResult rr = spool::recover_spool_file(in_path, &err);
  if (!rr.usable) {
    std::fprintf(stderr, "error: spool recovery failed: %s\n",
                 err.empty() ? rr.report.summary().c_str() : err.c_str());
    return 4;
  }
  std::fprintf(stderr, "%s\n", rr.report.summary().c_str());
  if (!rr.report.crash_reason.empty()) {
    std::fprintf(stderr, "crash provenance: %s\n",
                 rr.report.crash_reason.c_str());
  }
  if (!rr.report.supervisor_dump.empty()) {
    std::fprintf(stderr, "supervisor diagnostic:\n%s",
                 rr.report.supervisor_dump.c_str());
  }

  const bool degraded = rr.report.partial() || rr.report.frames_corrupt > 0 ||
                        rr.report.frames_out_of_order > 0 ||
                        rr.report.torn_tail;
  if (degraded) {
    const SalvageReport srep = salvage_trace(rr.trace);
    if (srep.any()) std::fprintf(stderr, "%s\n", srep.summary().c_str());
  }
  const std::vector<std::string> violations = validate_trace(rr.trace);
  if (!violations.empty()) {
    std::fprintf(stderr, "error: recovered trace unsalvageable: %s\n",
                 violations.front().c_str());
    return 4;
  }

  if (!save_trace_file(rr.trace, out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("%s -> %s (%zu tasks, %zu fragments, %zu chunks; %s)\n",
              in_path.c_str(), out_path, rr.trace.tasks.size(),
              rr.trace.fragments.size(), rr.trace.chunks.size(),
              degraded ? "recovered" : "clean shutdown");
  return degraded ? 3 : 0;
}
