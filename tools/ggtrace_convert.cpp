// ggtrace-convert — convert traces between the text (.ggtrace), binary
// (.ggbin) and crash-spool (.ggspool) formats; formats are chosen by file
// extension.
//
//   ggtrace-convert [--salvage] in.ggtrace out.ggbin
//   ggtrace-convert [--salvage] in.ggbin out.ggtrace
//   ggtrace-convert in.ggspool out.ggtrace     (recover, then convert)
//   ggtrace-convert in.ggbin out.ggspool       (re-spool a finalized trace)
//
// The input is validated before conversion; a malformed or structurally
// invalid trace fails (exit 1) naming the first bad record. With --salvage
// a damaged trace is repaired first (exit 3 when anything was repaired) and
// only an unsalvageable input fails (exit 4). A .ggspool input always takes
// the recovery path (as if --salvage were given); a partial spool that
// recovers converts with exit 3.
#include <cstdio>
#include <string>

#include "trace/salvage.hpp"
#include "trace/serialize.hpp"
#include "trace/spool.hpp"
#include "trace/validate.hpp"

namespace {

bool has_suffix(const std::string& s, const char* suf) {
  const std::string t(suf);
  return s.size() >= t.size() && s.compare(s.size() - t.size(), t.size(), t) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gg;
  bool salvage = false;
  int argi = 1;
  if (argi < argc && std::string(argv[argi]) == "--salvage") {
    salvage = true;
    ++argi;
  }
  if (argc - argi != 2) {
    std::fprintf(stderr,
                 "usage: %s [--salvage] <in.(ggtrace|ggbin|ggspool)> "
                 "<out.(ggtrace|ggbin|ggspool)>\n",
                 argv[0]);
    return 2;
  }
  const std::string in_path = argv[argi];
  const std::string out_path = argv[argi + 1];

  Trace trace;
  bool degraded = false;
  if (has_suffix(in_path, ".ggspool") || spool::spool_file_magic(in_path)) {
    std::string err;
    spool::RecoverResult rr = spool::recover_spool_file(in_path, &err);
    if (!rr.usable) {
      std::fprintf(stderr, "error: spool recovery failed: %s\n",
                   err.empty() ? rr.report.summary().c_str() : err.c_str());
      return 4;
    }
    std::fprintf(stderr, "%s\n", rr.report.summary().c_str());
    degraded = rr.report.partial() || rr.report.frames_corrupt > 0 ||
               rr.report.frames_out_of_order > 0 || rr.report.torn_tail;
    if (degraded) {
      const SalvageReport srep = salvage_trace(rr.trace);
      if (srep.any()) std::fprintf(stderr, "%s\n", srep.summary().c_str());
    }
    if (!validate_trace(rr.trace).empty()) {
      std::fprintf(stderr, "error: recovered trace unsalvageable\n");
      return 4;
    }
    trace = std::move(rr.trace);
  } else {
    LoadOptions opts;
    opts.mode = salvage ? LoadMode::Salvage : LoadMode::Strict;
    LoadResult lr = load_trace_file_ex(in_path, opts);
    if (!lr.usable()) {
      std::fprintf(stderr, "error: %s", lr.describe().c_str());
      return salvage ? 4 : 1;
    }
    if (lr.status == LoadStatus::Salvaged) {
      std::fprintf(stderr, "%s", lr.describe().c_str());
    }
    degraded = lr.status == LoadStatus::Salvaged;
    trace = std::move(*lr.trace);
  }

  if (has_suffix(out_path, ".ggspool")) {
    // Re-spool a finalized trace: a cleanly-footered spool, useful for
    // building recovery corpora out of ordinary traces.
    std::string err;
    spool::SpoolOptions sopts;
    sopts.path = out_path;
    if (!spool::spool_trace(trace, sopts, &err)) {
      std::fprintf(stderr, "error: cannot write %s: %s\n", out_path.c_str(),
                   err.c_str());
      return 1;
    }
  } else if (!save_trace_file(trace, out_path.c_str())) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s -> %s (%zu tasks, %zu fragments, %zu chunks, %zu "
              "dependences)\n",
              in_path.c_str(), out_path.c_str(), trace.tasks.size(),
              trace.fragments.size(), trace.chunks.size(),
              trace.depends.size());
  return degraded ? 3 : 0;
}
