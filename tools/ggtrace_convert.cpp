// ggtrace-convert — convert traces between the text (.ggtrace) and binary
// (.ggbin) formats; formats are chosen by file extension.
//
//   ggtrace-convert [--salvage] in.ggtrace out.ggbin
//   ggtrace-convert [--salvage] in.ggbin out.ggtrace
//
// The input is validated before conversion; a malformed or structurally
// invalid trace fails (exit 1) naming the first bad record. With --salvage
// a damaged trace is repaired first (exit 3 when anything was repaired) and
// only an unsalvageable input fails (exit 4).
#include <cstdio>
#include <string>

#include "trace/serialize.hpp"

int main(int argc, char** argv) {
  using namespace gg;
  bool salvage = false;
  int argi = 1;
  if (argi < argc && std::string(argv[argi]) == "--salvage") {
    salvage = true;
    ++argi;
  }
  if (argc - argi != 2) {
    std::fprintf(stderr,
                 "usage: %s [--salvage] <in.(ggtrace|ggbin)> "
                 "<out.(ggtrace|ggbin)>\n",
                 argv[0]);
    return 2;
  }
  const char* in_path = argv[argi];
  const char* out_path = argv[argi + 1];

  LoadOptions opts;
  opts.mode = salvage ? LoadMode::Salvage : LoadMode::Strict;
  LoadResult lr = load_trace_file_ex(in_path, opts);
  if (!lr.usable()) {
    std::fprintf(stderr, "error: %s", lr.describe().c_str());
    return salvage ? 4 : 1;
  }
  if (lr.status == LoadStatus::Salvaged) {
    std::fprintf(stderr, "%s", lr.describe().c_str());
  }
  const Trace& trace = *lr.trace;
  if (!save_trace_file(trace, out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("%s -> %s (%zu tasks, %zu fragments, %zu chunks, %zu "
              "dependences)\n",
              in_path, out_path, trace.tasks.size(), trace.fragments.size(),
              trace.chunks.size(), trace.depends.size());
  return lr.status == LoadStatus::Salvaged ? 3 : 0;
}
