// ggtrace-convert — convert traces between the text (.ggtrace) and binary
// (.ggbin) formats; formats are chosen by file extension.
//
//   ggtrace-convert in.ggtrace out.ggbin
//   ggtrace-convert in.ggbin out.ggtrace
#include <cstdio>
#include <string>

#include "trace/serialize.hpp"
#include "trace/validate.hpp"

int main(int argc, char** argv) {
  using namespace gg;
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <in.(ggtrace|ggbin)> <out.(ggtrace|ggbin)>\n",
                 argv[0]);
    return 2;
  }
  std::string error;
  auto trace = load_trace_file(argv[1], &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const auto problems = validate_trace(*trace);
  if (!problems.empty()) {
    std::fprintf(stderr, "warning: trace has %zu validation issues; first: %s\n",
                 problems.size(), problems.front().c_str());
  }
  if (!save_trace_file(*trace, argv[2])) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("%s -> %s (%zu tasks, %zu fragments, %zu chunks, %zu "
              "dependences)\n",
              argv[1], argv[2], trace->tasks.size(), trace->fragments.size(),
              trace->chunks.size(), trace->depends.size());
  return 0;
}
