// gganalyze — the post-profiling command-line front end (the paper's
// post-processing step as a tool): load a trace, derive metrics, print the
// report, and export problem views.
//
// Usage:
//   gganalyze <trace.(ggtrace|ggbin)> [options]
//     --baseline <trace>     1-core trace of the same program: enables the
//                            work-deviation metric (grains matched by
//                            schedule-independent id)
//     --view <problem>       benefit|inflation|memutil|parallelism|scatter
//     --graphml <out.graphml>  export (honors --view and --reduced)
//     --dot <out.dot>        export Graphviz
//     --csv <out.csv>        per-grain metric table
//     --json <out.json>      machine-readable summary
//     --html <out.html>      self-contained HTML report
//     --chrome <out.json>    Chrome trace-event timeline (Perfetto-loadable)
//     --reduced              apply all reductions before graph export
//     --topology <name>      opteron48|generic4|generic16 (default: from
//                            the trace's metadata when recognized)
//     --timeline             print the thread-timeline foil view
//     --compare <trace>      before/after comparison against another run of
//                            the same program (this trace = before)
//     --summarize <N>        collapse task subtrees until the exported
//                            graph has ~N nodes (implies graph export path)
//     --strict               fail on the first ingestion problem (CI gating)
//     --salvage              repair a damaged trace and analyze what
//                            survives; prints a degradation report
//     --recover              treat the input as a crash spool (.ggspool):
//                            reconstruct the longest valid prefix of epoch
//                            frames, salvage it, and analyze what survives.
//                            Crash provenance (signal, supervisor stall
//                            diagnostic) is reported and kept in the trace
//                            notes. Inputs named *.ggspool or starting with
//                            the spool magic take this path automatically.
//     --timing               print input size and per-stage wall times
//                            (load/graph/grains/metrics/problems/exports,
//                            with a per-metric-pass breakdown) to stderr;
//                            --json summaries gain a machine-readable
//                            "timings" object
//     --telemetry[=prom|json|chrome]
//                            self-telemetry of this invocation: install a
//                            process metrics registry + span tracer, then
//                            dump it on exit — Prometheus text (default) or
//                            JSON to stderr, chrome writes span timeline to
//                            gganalyze.telemetry.json. GG_TELEMETRY=1 in
//                            the environment implies --telemetry=prom.
//     --threads <N>          worker threads for trace load, graph build,
//                            grain derivation, and the metric passes
//                            (0 = auto; results are bit-identical for
//                            every setting)
//     --legacy-parse         use the original istream-based text parser
//                            instead of the buffered fast path
//
//   gganalyze --selftest [programs] [schedules]
//     Runs the built-in differential oracle (src/check): generated programs
//     elaborated by the threaded runtime under deterministic schedule
//     exploration, the simulator, and the serial reference, with all grain
//     graphs and metrics cross-checked, plus a crash-recovery smoke check
//     (a forked child records with spooling and is SIGKILLed mid-run; the
//     recovered spool must salvage into an analyzable trace).
//     GG_TEST_SEED sets the base seed.
//
// Exit codes: 0 clean; 1 load/validation failure; 2 usage error; 3 analysis
// ran on a salvaged/recovered (degraded) trace; 4 --salvage/--recover given
// but nothing usable could be recovered.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/compare.hpp"
#include "common/par_for.hpp"
#include "check/deque_check.hpp"
#include "check/oracle.hpp"
#include "analysis/recommend.hpp"
#include "analysis/report.hpp"
#include "analysis/timeline.hpp"
#include "export/chrome_trace.hpp"
#include "export/dot.hpp"
#include "export/grain_csv.hpp"
#include "export/graphml.hpp"
#include "export/html_report.hpp"
#include "export/json_summary.hpp"
#include "graph/reductions.hpp"
#include "graph/summarize.hpp"
#include "front/front.hpp"
#include "obs/exposition.hpp"
#include "obs/telemetry.hpp"
#include "rts/threaded_engine.hpp"
#include "trace/salvage.hpp"
#include "trace/serialize.hpp"
#include "trace/spool.hpp"
#include "trace/synth.hpp"
#include "trace/validate.hpp"

namespace {

using namespace gg;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.(ggtrace|ggbin|ggspool)> [--baseline t] "
               "[--view benefit|inflation|memutil|parallelism|scatter] "
               "[--graphml f] [--dot f] [--csv f] [--json f] [--html f] "
               "[--chrome f] [--reduced] [--summarize N] [--compare t] "
               "[--topology opteron48|generic4|generic16] [--timeline] "
               "[--strict|--salvage|--recover] [--timing] [--threads N] "
               "[--legacy-parse] [--telemetry[=prom|json|chrome]]\n"
               "       %s --selftest [programs] [schedules]\n"
               "  --recover  treat the input as a crash spool (.ggspool is\n"
               "             auto-detected): replay the longest valid frame\n"
               "             prefix, salvage, and analyze what survived.\n"
               "             Crash provenance and supervisor stall\n"
               "             diagnostics from the spool print to stderr and\n"
               "             land in the report's scheduler-health section.\n"
               "             Exit 3 = partial (degraded), 4 = unrecoverable.\n",
               argv0, argv0);
  return 2;
}

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::optional<Problem> parse_view(const std::string& s) {
  if (s == "benefit") return Problem::LowParallelBenefit;
  if (s == "inflation") return Problem::WorkInflation;
  if (s == "memutil") return Problem::PoorMemUtil;
  if (s == "parallelism") return Problem::LowParallelism;
  if (s == "scatter") return Problem::HighScatter;
  return std::nullopt;
}

std::optional<Topology> parse_topology(const std::string& name) {
  if (name == "opteron48") return Topology::opteron48();
  if (name == "generic16") return Topology::generic16();
  if (name == "generic4") return Topology::generic4();
  return std::nullopt;
}

/// Renders every deterministic output of one analysis into a single byte
/// string: report, GraphML, CSV, JSON. Used to compare engines/settings.
std::string analysis_bytes(const Trace& trace, int threads) {
  AnalysisOptions opts;
  opts.threads = threads;
  opts.metrics.threads = threads;
  const Analysis a = analyze(trace, Topology::generic4(), opts);
  std::ostringstream out;
  out << render_report(trace, a);
  write_graphml(out, a.graph, trace, &a.grains, &a.metrics, GraphMlOptions{});
  write_grain_csv(out, trace, a.grains, a.metrics);
  write_json_summary(out, trace, a);
  return out.str();
}

/// Fast/legacy parse-engine equivalence: synthetic traces are serialized to
/// both formats, re-loaded through both engines, and fully analyzed with
/// serial and parallel metric settings; every output must be byte-identical.
int run_engine_equivalence(u64 base_seed) {
  int failures = 0;
  for (int round = 0; round < 3; ++round) {
    SynthOptions sopts;
    sopts.seed = base_seed + static_cast<u64>(round);
    sopts.grains = 2000 + static_cast<u64>(round) * 500;
    const Trace trace = synth_trace(sopts);
    std::ostringstream text, bin;
    save_trace(trace, text);
    save_trace_binary(trace, bin);
    const std::string expected = analysis_bytes(trace, /*threads=*/1);

    struct Case {
      const char* name;
      ParseEngine engine;
      bool binary;
      int threads;
    };
    const Case cases[] = {
        {"fast/text/parallel", ParseEngine::Fast, false, 0},
        {"legacy/text/serial", ParseEngine::Legacy, false, 1},
        {"fast/binary/parallel", ParseEngine::Fast, true, 0},
        {"fast/text/4-threads", ParseEngine::Fast, false, 4},
    };
    for (const Case& c : cases) {
      LoadOptions lo;
      lo.engine = c.engine;
      std::istringstream is(c.binary ? bin.str() : text.str());
      LoadResult lr =
          c.binary ? load_trace_binary_ex(is, lo) : load_trace_ex(is, lo);
      if (!lr.usable()) {
        std::fprintf(stderr, "[selftest] equivalence %s seed %llu: load "
                     "failed: %s", c.name,
                     static_cast<unsigned long long>(sopts.seed),
                     lr.describe().c_str());
        ++failures;
        continue;
      }
      if (analysis_bytes(*lr.trace, c.threads) != expected) {
        std::fprintf(stderr, "[selftest] equivalence %s seed %llu: output "
                     "differs from reference\n", c.name,
                     static_cast<unsigned long long>(sopts.seed));
        ++failures;
      }
    }
  }
  return failures;
}

/// Crash-recovery smoke check: fork a child that records a real threaded
/// run with spooling enabled and SIGKILLs itself mid-region; the parent
/// must recover the spool, salvage the partial trace, and analyze it.
/// Returns the number of failures (0 or 1).
int run_crash_recovery_smoke(u64 seed) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() /
       ("gganalyze-selftest-" + std::to_string(::getpid()) + ".ggspool"))
          .string();
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "[selftest] crash recovery: fork failed\n");
    return 1;
  }
  if (pid == 0) {
    // Child: record with small durable epochs so plenty of frames reach the
    // disk before the kill, then die mid-region without any cleanup.
    rts::Options o;
    o.num_workers = 2;
    o.spool.path = path;
    o.spool.epoch_bytes = 2 * 1024;
    o.spool.crash_handlers = false;  // a SIGKILL is not catchable anyway
    rts::ThreadedEngine eng(o);
    const u64 kill_at = 60 + (seed % 40);
    eng.run("selftest-crash", [&](front::Ctx& ctx) {
      std::atomic<u64> finished{0};
      for (int i = 0; i < 400; ++i) {
        ctx.spawn(front::SrcLoc{"selftest.c", 10, "crash_task"},
                  [&finished, kill_at](front::Ctx& c) {
                    c.compute(500);
                    if (finished.fetch_add(1) + 1 == kill_at) {
                      ::kill(::getpid(), SIGKILL);
                    }
                  });
      }
      ctx.taskwait();
    });
    _exit(0);  // only reached if the kill never fired
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  int failures = 0;
  if (!(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)) {
    std::fprintf(stderr,
                 "[selftest] crash recovery: child did not die by SIGKILL "
                 "(status %d)\n", status);
    ++failures;
  }
  std::string err;
  spool::RecoverResult rr = spool::recover_spool_file(path, &err);
  if (!rr.usable) {
    std::fprintf(stderr, "[selftest] crash recovery: recover failed: %s\n",
                 err.empty() ? rr.report.summary().c_str() : err.c_str());
    std::error_code ec;
    fs::remove(path, ec);
    return failures + 1;
  }
  if (rr.report.clean_footer) {
    std::fprintf(stderr,
                 "[selftest] crash recovery: spool unexpectedly clean "
                 "(child survived to finish?)\n");
    ++failures;
  }
  salvage_trace(rr.trace);
  const std::vector<std::string> violations = validate_trace(rr.trace);
  if (!violations.empty()) {
    std::fprintf(stderr,
                 "[selftest] crash recovery: salvaged trace invalid: %s\n",
                 violations.front().c_str());
    ++failures;
  } else {
    // The full analysis must run without tripping over the partial trace.
    analysis_bytes(rr.trace, /*threads=*/1);
  }
  std::fprintf(stderr,
               "[selftest] crash recovery: %s (%llu frames kept, "
               "%zu tasks salvaged)\n",
               failures == 0 ? "ok" : "FAILED",
               static_cast<unsigned long long>(rr.report.frames_kept),
               rr.trace.tasks.size());
  std::error_code ec;
  fs::remove(path, ec);
  return failures;
}

/// Self-check mode: the differential oracle plus a queue-harness sweep, all
/// in-process. Used by CI as a one-command health probe of the entire
/// profiling pipeline (runtimes -> trace -> graph -> metrics).
int run_selftest(int programs, int schedules) {
  u64 base_seed = 1;
  if (const char* env = std::getenv("GG_TEST_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  std::fprintf(stderr,
               "[selftest] oracle: %d program(s) x %d rts schedule(s), base "
               "seed %llu\n",
               programs, schedules,
               static_cast<unsigned long long>(base_seed));
  gg::check::OracleOptions opts;
  opts.schedules = schedules;
  opts.log = true;
  gg::check::OracleResult res =
      gg::check::check_many(base_seed, programs, opts);

  std::fprintf(stderr, "[selftest] queue harness sweep\n");
  int queue_runs = 0;
  std::vector<std::string> queue_violations;
  for (int s = 0; s < 10; ++s) {
    gg::check::DequeCheckOptions dopts;
    // 10 configs: each of the five queue backends under two different
    // strategies (5 and 3 are coprime, so s%5 and s%3 don't correlate).
    dopts.backend = gg::rts::kAllQueueBackends[s % 5];
    dopts.schedule.strategy = static_cast<gg::check::Strategy>(s % 3);
    dopts.schedule.seed = base_seed + static_cast<u64>(s);
    dopts.num_thieves = 1 + (s % 2);
    dopts.initial_capacity = (s % 2 == 0) ? 2 : 64;
    dopts.items_per_round = 1 + (s % 3);
    auto collect = [&](const gg::check::DequeCheckResult& r) {
      ++queue_runs;
      queue_violations.insert(queue_violations.end(), r.violations.begin(),
                              r.violations.end());
    };
    collect(gg::check::check_deque(dopts));
    collect(gg::check::check_central_queue(dopts));
  }

  std::fprintf(stderr, "[selftest] parse-engine equivalence sweep\n");
  const int equiv_failures = run_engine_equivalence(base_seed);

  std::fprintf(stderr, "[selftest] crash recovery round-trip\n");
  const int crash_failures = run_crash_recovery_smoke(base_seed);

  std::fprintf(stderr, "%s\n", res.summary().c_str());
  std::fprintf(stderr, "[selftest] queue harness: %zu violation(s) in %d "
               "run(s)\n", queue_violations.size(), queue_runs);
  for (size_t i = 0; i < queue_violations.size() && i < 10; ++i) {
    std::fprintf(stderr, "  %s\n", queue_violations[i].c_str());
  }
  std::fprintf(stderr, "[selftest] engine equivalence: %d failure(s)\n",
               equiv_failures);
  std::fprintf(stderr, "[selftest] crash recovery: %d failure(s)\n",
               crash_failures);
  const bool ok = res.ok() && queue_violations.empty() &&
                  equiv_failures == 0 && crash_failures == 0;
  std::fprintf(stderr, "[selftest] %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  if (std::strcmp(argv[1], "--selftest") == 0) {
    const int programs = argc > 2 ? std::atoi(argv[2]) : 5;
    const int schedules = argc > 3 ? std::atoi(argv[3]) : 6;
    if (programs <= 0 || schedules <= 0) return usage(argv[0]);
    return run_selftest(programs, schedules);
  }
  const std::string trace_path = argv[1];
  std::string baseline_path, graphml_path, dot_path, csv_path, json_path;
  std::string compare_path, html_path, chrome_path;
  std::string topology_name;
  std::optional<Problem> view;
  bool reduced = false, timeline = false;
  bool strict = false, salvage = false, recover = false;
  bool timing = false, legacy_parse = false;
  std::string telemetry_mode;  // "", "prom", "json", or "chrome"
  if (obs::env_enabled()) telemetry_mode = "prom";
  int threads = 0;
  size_t summarize_budget = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--baseline") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--view") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      view = parse_view(v);
      if (!view) {
        std::fprintf(stderr, "unknown view '%s'\n", v);
        return 2;
      }
    } else if (arg == "--graphml") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      graphml_path = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      dot_path = v;
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      csv_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--html") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      html_path = v;
    } else if (arg == "--chrome") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      chrome_path = v;
    } else if (arg == "--compare") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      compare_path = v;
    } else if (arg == "--topology") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      topology_name = v;
    } else if (arg == "--summarize") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (v[0] == '-' || end == v || *end != '\0') {
        std::fprintf(stderr, "--summarize expects a non-negative integer, "
                     "got '%s'\n", v);
        return 2;
      }
      summarize_budget = static_cast<size_t>(parsed);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      threads = std::atoi(v);
      if (threads < 0) {
        std::fprintf(stderr, "--threads expects a non-negative integer\n");
        return 2;
      }
    } else if (arg == "--reduced") {
      reduced = true;
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--telemetry" || arg.rfind("--telemetry=", 0) == 0) {
      telemetry_mode = arg == "--telemetry" ? "prom" : arg.substr(12);
      if (telemetry_mode != "prom" && telemetry_mode != "json" &&
          telemetry_mode != "chrome") {
        std::fprintf(stderr,
                     "--telemetry expects prom, json, or chrome (got '%s')\n",
                     telemetry_mode.c_str());
        return 2;
      }
    } else if (arg == "--legacy-parse") {
      legacy_parse = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--salvage") {
      salvage = true;
    } else if (arg == "--recover") {
      recover = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (strict && salvage) {
    std::fprintf(stderr, "--strict and --salvage are mutually exclusive\n");
    return 2;
  }
  if (strict && recover) {
    std::fprintf(stderr, "--strict and --recover are mutually exclusive\n");
    return 2;
  }

  // Self-telemetry of this invocation. Installed before the load so every
  // phase span lands in the tracer; static storage outlives all phases.
  static obs::Telemetry self_telemetry;
  if (!telemetry_mode.empty()) obs::install(&self_telemetry);

  // Crash spools take their own ingestion path: frame-level recovery, then
  // the regular salvage pass over whatever the spool preserved.
  const bool spool_input =
      recover ||
      (trace_path.size() > 8 &&
       trace_path.compare(trace_path.size() - 8, 8, ".ggspool") == 0) ||
      spool::spool_file_magic(trace_path);

  LoadResult lr;
  i64 load_ns = 0;
  obs::PhaseSpan load_span("gganalyze.load");
  if (spool_input) {
    const i64 load_start = now_ns();
    std::string rec_err;
    spool::RecoverResult rr = spool::recover_spool_file(trace_path, &rec_err);
    load_ns = now_ns() - load_start;
    load_span.end();
    if (!rr.usable) {
      std::fprintf(stderr, "error: spool recovery failed: %s\n",
                   rec_err.empty() ? rr.report.summary().c_str()
                                   : rec_err.c_str());
      return 4;
    }
    std::fprintf(stderr, "%s\n", rr.report.summary().c_str());
    if (!rr.report.crash_reason.empty()) {
      std::fprintf(stderr, "crash provenance: %s\n",
                   rr.report.crash_reason.c_str());
    }
    if (!rr.report.supervisor_dump.empty()) {
      std::fprintf(stderr, "supervisor diagnostic:\n%s",
                   rr.report.supervisor_dump.c_str());
    }
    bool degraded = rr.report.partial() || rr.report.frames_corrupt > 0 ||
                    rr.report.frames_out_of_order > 0 ||
                    rr.report.epoch_gaps > 0 || rr.report.torn_tail;
    if (degraded) {
      // Recovered traces usually miss closing records for in-flight work;
      // the salvage pass synthesizes them and quarantines the rest.
      const SalvageReport srep = salvage_trace(rr.trace);
      if (srep.any()) std::fprintf(stderr, "%s\n", srep.summary().c_str());
    }
    const std::vector<std::string> violations = validate_trace(rr.trace);
    if (!violations.empty()) {
      std::fprintf(stderr, "error: recovered trace unsalvageable: %s\n",
                   violations.front().c_str());
      return 4;
    }
    lr.status = degraded ? LoadStatus::Salvaged : LoadStatus::Ok;
    lr.trace = std::move(rr.trace);
  } else {
    LoadOptions lopts;
    lopts.mode = salvage ? LoadMode::Salvage
                         : (strict ? LoadMode::Strict : LoadMode::Lenient);
    lopts.engine = legacy_parse ? ParseEngine::Legacy : ParseEngine::Fast;
    lopts.threads = threads;
    const i64 load_start = now_ns();
    lr = load_trace_file_ex(trace_path, lopts);
    load_ns = now_ns() - load_start;
    load_span.end();
    if (!lr.usable()) {
      std::fprintf(stderr, "error: %s", lr.describe().c_str());
      return salvage ? 4 : 1;
    }
    if (lr.status == LoadStatus::Salvaged) {
      // Degradation report: what was lost/repaired before analysis.
      std::fprintf(stderr, "%s", lr.describe().c_str());
    }
  }
  std::optional<Trace>& trace = lr.trace;
  std::string error;

  // An explicit --topology must name a known preset; an unrecognized name
  // from the trace's own metadata (e.g. "host") falls back to generic4.
  Topology topo = Topology::generic4();
  if (!topology_name.empty()) {
    auto parsed = parse_topology(topology_name);
    if (!parsed) {
      std::fprintf(stderr, "unknown topology '%s' (expected "
                   "opteron48|generic4|generic16)\n", topology_name.c_str());
      return 2;
    }
    topo = *parsed;
  } else if (auto from_meta = parse_topology(trace->meta.topology)) {
    topo = *from_meta;
  }

  AnalysisOptions opts;
  opts.threads = threads;
  opts.metrics.threads = threads;
  GrainTable baseline;
  if (!baseline_path.empty()) {
    auto base = load_trace_file(baseline_path, &error);
    if (!base) {
      std::fprintf(stderr, "error loading baseline: %s\n", error.c_str());
      return 1;
    }
    baseline = GrainTable::build(*base);
    opts.baseline = &baseline;
  }
  AnalysisTimings timings;
  const Analysis a = analyze(*trace, topo, opts, &timings);
  PipelineTimings ptimings;
  ptimings.load_ns = load_ns;
  ptimings.analysis = timings;
  // Times one export stage: phase span + wall time, both named. The JSON
  // summary runs last so its "timings" object can include every other
  // export that ran.
  auto timed_export = [&](const char* name, auto&& fn) {
    obs::PhaseSpan span(name);
    const i64 t0 = now_ns();
    fn();
    ptimings.exports.emplace_back(name, now_ns() - t0);
  };
  std::printf("%s", render_report(*trace, a).c_str());
  std::printf("%s", render_recommendations(recommend(*trace, a)).c_str());

  if (!compare_path.empty()) {
    auto other = load_trace_file(compare_path, &error);
    if (!other) {
      std::fprintf(stderr, "error loading --compare trace: %s\n",
                   error.c_str());
      return 1;
    }
    const Analysis oa = analyze(*other, topo, opts);
    std::printf("\n%s", render_comparison(
                             compare_runs(*trace, a, *other, oa)).c_str());
  }

  if (timeline) {
    const TimelineView v = thread_timeline(*trace, 72);
    std::printf("\nthread timeline ('#' busy, '+' runtime, '.' idle), "
                "imbalance %.2f:\n", v.imbalance);
    for (size_t i = 0; i < v.strips.size() && i < 16; ++i) {
      std::printf("  t%02zu |%s| busy %5.1f%%\n", i, v.strips[i].c_str(),
                  v.threads[i].busy_percent);
    }
  }

  if (!graphml_path.empty()) {
    timed_export("export.graphml", [&] {
      GraphMlOptions gopts;
      gopts.view = view;
      bool ok;
      if (summarize_budget > 0) {
        const SummarizeResult s = summarize_graph(a.graph, summarize_budget);
        std::printf("summarized to %zu nodes (cut depth %zu)\n",
                    s.graph.node_count(), s.cut_depth);
        ok = write_graphml_file(graphml_path, s.graph, *trace, nullptr,
                                nullptr, gopts);
      } else if (reduced) {
        const GrainGraph r = reduce_graph(a.graph, ReductionOptions{});
        ok = write_graphml_file(graphml_path, r, *trace, nullptr, nullptr,
                                gopts);
      } else {
        ok = write_graphml_file(graphml_path, a.graph, *trace, &a.grains,
                                &a.metrics, gopts);
      }
      std::printf("%s %s\n", ok ? "wrote" : "FAILED to write",
                  graphml_path.c_str());
    });
  }
  if (!dot_path.empty()) {
    timed_export("export.dot", [&] {
      const bool ok =
          reduced ? write_dot_file(dot_path,
                                   reduce_graph(a.graph, ReductionOptions{}),
                                   *trace)
                  : write_dot_file(dot_path, a.graph, *trace);
      std::printf("%s %s\n", ok ? "wrote" : "FAILED to write",
                  dot_path.c_str());
    });
  }
  if (!csv_path.empty()) {
    timed_export("export.csv", [&] {
      const bool ok =
          write_grain_csv_file(csv_path, *trace, a.grains, a.metrics);
      std::printf("%s %s\n", ok ? "wrote" : "FAILED to write",
                  csv_path.c_str());
    });
  }
  if (!html_path.empty()) {
    timed_export("export.html", [&] {
      const bool ok = write_html_report_file(html_path, *trace, a);
      std::printf("%s %s\n", ok ? "wrote" : "FAILED to write",
                  html_path.c_str());
    });
  }
  if (!chrome_path.empty()) {
    timed_export("export.chrome", [&] {
      const bool ok = write_chrome_trace_file(chrome_path, *trace);
      std::printf("%s %s\n", ok ? "wrote" : "FAILED to write",
                  chrome_path.c_str());
    });
  }
  // JSON runs last: with --timing its summary embeds the wall time of every
  // export above (its own slot is appended after it finishes).
  if (!json_path.empty()) {
    timed_export("export.json", [&] {
      const bool ok = write_json_summary_file(json_path, *trace, a,
                                              timing ? &ptimings : nullptr);
      std::printf("%s %s\n", ok ? "wrote" : "FAILED to write",
                  json_path.c_str());
    });
  }

  if (timing) {
    std::error_code ec;
    const auto input_bytes = std::filesystem::file_size(trace_path, ec);
    const int load_threads = legacy_parse ? 1 : resolve_threads(threads);
    std::fprintf(stderr,
                 "[timing] input %llu bytes (%s engine)\n"
                 "[timing] load     %10.3f ms (%d thread(s))\n"
                 "[timing] graph    %10.3f ms (%d thread(s))\n"
                 "[timing] grains   %10.3f ms (%d thread(s))\n"
                 "[timing] metrics  %10.3f ms (%d thread(s))\n",
                 ec ? 0ULL : static_cast<unsigned long long>(input_bytes),
                 legacy_parse ? "legacy" : "fast",
                 static_cast<double>(load_ns) / 1e6, load_threads,
                 static_cast<double>(timings.graph_ns) / 1e6,
                 timings.graph_threads,
                 static_cast<double>(timings.grains_ns) / 1e6,
                 timings.grains_threads,
                 static_cast<double>(timings.metrics_ns) / 1e6,
                 timings.metrics_threads);
    const MetricPassTimings& mp = timings.metric_passes;
    std::fprintf(stderr,
                 "[timing]   benefit       %10.3f ms\n"
                 "[timing]   load_balance  %10.3f ms\n"
                 "[timing]   parallelism   %10.3f ms\n"
                 "[timing]   scatter       %10.3f ms\n"
                 "[timing]   critical_path %10.3f ms\n",
                 static_cast<double>(mp.benefit_ns) / 1e6,
                 static_cast<double>(mp.load_balance_ns) / 1e6,
                 static_cast<double>(mp.parallelism_ns) / 1e6,
                 static_cast<double>(mp.scatter_ns) / 1e6,
                 static_cast<double>(mp.critical_path_ns) / 1e6);
    std::fprintf(stderr, "[timing] problems %10.3f ms\n",
                 static_cast<double>(timings.problems_ns) / 1e6);
    i64 export_ns = 0;
    for (const auto& [name, ns] : ptimings.exports) {
      std::fprintf(stderr, "[timing] %-8s %10.3f ms (%s)\n", "export",
                   static_cast<double>(ns) / 1e6, name.c_str());
      export_ns += ns;
    }
    std::fprintf(stderr, "[timing] total    %10.3f ms\n",
                 static_cast<double>(load_ns + timings.total_ns() +
                                     export_ns) / 1e6);
  }

  if (!telemetry_mode.empty()) {
    obs::MetricsSnapshot snap = self_telemetry.registry.snapshot();
    snap.ts_ns = static_cast<u64>(now_ns());
    if (telemetry_mode == "prom") {
      std::fputs(obs::render_prometheus(snap).c_str(), stderr);
    } else if (telemetry_mode == "json") {
      std::fputs(obs::render_json(snap).c_str(), stderr);
    } else {  // chrome
      const char* span_path = "gganalyze.telemetry.json";
      std::ofstream os(span_path);
      if (os) {
        obs::write_chrome_spans(os, self_telemetry.tracer.spans());
        std::fprintf(stderr, "telemetry spans written to %s\n", span_path);
      } else {
        std::fprintf(stderr, "FAILED to write %s\n", span_path);
      }
    }
    obs::install(nullptr);
  }
  return lr.status == LoadStatus::Salvaged ? 3 : 0;
}
