// Regenerates the golden trace corpus under tests/golden/.
//
// Each corpus entry is one deterministic simulator run of a generated
// program, saved in both serialization formats plus a .expect summary
// (metrics totals + canonical structural signature). The simulator's
// virtual clock makes the traces byte-stable across machines, so the files
// are committed and golden_trace_test simply diffs against them.
//
// Usage: make_golden <output-dir>
// Run it only when the trace format or the corpus definition changes, and
// commit the result together with the change that caused it.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/genprog.hpp"
#include "check/signature.hpp"
#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "sim/sim_engine.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace gg;

/// The committed expectation: integer metrics plus the full signature.
/// Doubles are deliberately excluded — the expectation must be exact.
std::string golden_summary(const Trace& t) {
  const GrainGraph graph = GrainGraph::build(t);
  const GrainTable grains = GrainTable::build(t);
  const MetricsResult m =
      compute_metrics(t, graph, grains, Topology::opteron48());
  std::ostringstream os;
  os << "makespan=" << t.makespan() << "\n"
     << "total_work=" << m.total_work << "\n"
     << "critical_path=" << m.critical_path_time << "\n"
     << "grains=" << grains.size() << "\n"
     << check::canonical_signature(t);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];

  struct Entry {
    const char* name;
    u64 seed;
    sim::SimPolicy policy;
    int cores;
    bool memory;
  };
  const Entry entries[] = {
      // Task-heavy program on the default runtime model.
      {"tasks_mir4", 8, sim::SimPolicy::mir(), 4, true},
      // Loop-only program under the locked-queue model.
      {"loops_gcc2", 4, sim::SimPolicy::gcc(), 2, false},
      // The oracle's exact-tier configuration.
      {"exact_zero1", 5, sim::SimPolicy::zero_overhead(), 1, false},
  };

  for (const Entry& e : entries) {
    const check::ProgramSpec spec = check::generate_program(e.seed);
    sim::SimOptions so;
    so.num_cores = e.cores;
    so.policy = e.policy;
    so.memory_model = e.memory;
    sim::SimEngine eng(so);
    const Trace t = check::run_spec(spec, eng);

    const std::string base = dir + "/" + e.name;
    if (!save_trace_file(t, base + ".ggtrace") ||
        !save_trace_file(t, base + ".ggbin")) {
      std::fprintf(stderr, "failed to write %s.{ggtrace,ggbin}\n",
                   base.c_str());
      return 1;
    }
    std::ofstream expect(base + ".expect");
    expect << golden_summary(t) << "\n";
    if (!expect) {
      std::fprintf(stderr, "failed to write %s.expect\n", base.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu tasks, %zu fragments)\n", base.c_str(),
                t.tasks.size(), t.fragments.size());
  }
  return 0;
}
