// ggtrace-gen — seeded synthetic trace generator for benchmarks and tests.
//
//   ggtrace-gen --grains 1000000 --out big.ggtrace
//   ggtrace-gen --grains 100000 --seed 7 --workers 16 --out big.ggbin
//   ggtrace-gen --grains 5000 --out run.ggspool --live --throttle-ms 5
//
// The output format is chosen by extension (.ggtrace text, .ggbin binary,
// .ggspool epoch-frame stream; anything else defaults to text). The
// generated trace is checked with validate_trace_structured before writing;
// identical options always yield a byte-identical file.
//
// Spool output doubles as the serve-layer soak writer: --live appends the
// stream in small seeded slices (deliberately unaligned with frame
// boundaries) with an optional --throttle-ms sleep between writes, so a
// concurrent ggserved tail sees exactly the torn-prefix reads a real
// engine produces. --ending picks how the stream ends: clean (footer),
// nofooter (SIGKILL after the last epoch), torn (crash inside write(2)),
// garbage (tail rot after the last valid frame). Killing a throttled live
// writer mid-run is the intended way to fake a crashing engine.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "fault/fault.hpp"
#include "trace/serialize.hpp"
#include "trace/spool.hpp"
#include "trace/synth.hpp"
#include "trace/validate.hpp"

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [options] --out <path.(ggtrace|ggbin|ggspool)>\n"
               "  --grains N         target grain count (default 1000)\n"
               "  --seed N           RNG seed (default 1)\n"
               "  --workers N        team size (default 8)\n"
               "  --fanout N         max children per fork batch (default 8)\n"
               "  --loop-fraction F  probability a section is a loop "
               "(default 0.25)\n"
               "  --nest-prob F      probability a child forks a sub-batch "
               "(default 0.25)\n"
               "  --sources N        distinct source locations (default 32)\n"
               "spool output (--out *.ggspool):\n"
               "  --epoch-bytes N    epoch seal threshold (default 2048)\n"
               "  --live             append in small seeded slices instead of\n"
               "                     one write (tail-reader soak mode)\n"
               "  --throttle-ms N    sleep between live slices (default 0)\n"
               "  --chunk N          max live slice size (default 4096)\n"
               "  --ending K         clean|nofooter|torn|garbage (default "
               "clean)\n",
               prog);
}

bool parse_ending(const std::string& name,
                  gg::fault::LiveWriterPlan::Ending* out) {
  using Ending = gg::fault::LiveWriterPlan::Ending;
  if (name == "clean") *out = Ending::Clean;
  else if (name == "nofooter") *out = Ending::FooterlessCrash;
  else if (name == "torn") *out = Ending::TornFrame;
  else if (name == "garbage") *out = Ending::Garbage;
  else return false;
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gg;
  SynthOptions opts;
  std::string out;
  u64 epoch_bytes = 2048;
  bool live = false;
  int throttle_ms = 0;
  fault::LiveWriterPlan plan;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grains") {
      opts.grains = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--workers") {
      opts.workers = std::atoi(value());
    } else if (arg == "--fanout") {
      opts.fanout = static_cast<u32>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--loop-fraction") {
      opts.loop_fraction = std::atof(value());
    } else if (arg == "--nest-prob") {
      opts.nest_prob = std::atof(value());
    } else if (arg == "--sources") {
      opts.sources = static_cast<u32>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--out") {
      out = value();
    } else if (arg == "--epoch-bytes") {
      epoch_bytes = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--live") {
      live = true;
    } else if (arg == "--throttle-ms") {
      throttle_ms = std::atoi(value());
    } else if (arg == "--chunk") {
      plan.chunk_max = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--ending") {
      if (!parse_ending(value(), &plan.ending)) {
        std::fprintf(stderr,
                     "error: --ending expects clean|nofooter|torn|garbage\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (out.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (opts.workers < 1 || opts.fanout < 1 || opts.grains < 1) {
    std::fprintf(stderr, "error: --grains, --workers, --fanout must be >= 1\n");
    return 2;
  }

  const Trace trace = synth_trace(opts);
  const ValidationReport rep = validate_trace_structured(trace);
  if (!rep.violations.empty()) {
    std::fprintf(stderr, "error: generated trace is invalid (%zu violations):\n",
                 rep.violations.size());
    for (size_t i = 0; i < rep.violations.size() && i < 10; ++i) {
      std::fprintf(stderr, "  %s: %s\n", rep.violations[i].where().c_str(),
                   rep.violations[i].message.c_str());
    }
    return 1;
  }
  if (ends_with(out, ".ggspool")) {
    if (epoch_bytes == 0 || plan.chunk_max == 0 || throttle_ms < 0) {
      std::fprintf(stderr,
                   "error: --epoch-bytes/--chunk must be >= 1, "
                   "--throttle-ms >= 0\n");
      return 2;
    }
    plan.seed = opts.seed;
    if (!live) {
      // One-shot: a single maximal slice, but still through the same
      // ending transformation as the live path.
      plan.chunk_min = plan.chunk_max = ~size_t{0} >> 1;
    }
    std::string bytes = spool::spool_trace_bytes(trace, epoch_bytes);
    {  // start from an empty file; the writer appends
      std::ofstream trunc(out, std::ios::binary | std::ios::trunc);
      if (!trunc) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
      }
    }
    fault::LiveSpoolWriter writer(out, std::move(bytes), plan);
    while (!writer.done()) {
      if (writer.step() == 0) {
        std::fprintf(stderr, "error: short write to %s\n", out.c_str());
        return 1;
      }
      if (throttle_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(throttle_ms));
      }
    }
    std::printf("%s: %zu bytes spooled (%zu grains, %d workers, seed %llu)\n",
                out.c_str(), writer.total_bytes(), trace.grain_count(),
                trace.meta.num_workers,
                static_cast<unsigned long long>(opts.seed));
    return 0;
  }
  if (!save_trace_file(trace, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s: %zu grains (%zu tasks, %zu chunks), %zu fragments, "
              "%zu loops, %d workers, seed %llu\n",
              out.c_str(), trace.grain_count(), trace.tasks.size() - 1,
              trace.chunks.size(), trace.fragments.size(), trace.loops.size(),
              trace.meta.num_workers,
              static_cast<unsigned long long>(opts.seed));
  return 0;
}
