// ggtrace-gen — seeded synthetic trace generator for benchmarks and tests.
//
//   ggtrace-gen --grains 1000000 --out big.ggtrace
//   ggtrace-gen --grains 100000 --seed 7 --workers 16 --out big.ggbin
//
// The output format is chosen by extension (.ggtrace text, .ggbin binary;
// anything else defaults to text). The generated trace is checked with
// validate_trace_structured before writing; identical options always yield
// a byte-identical file.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/serialize.hpp"
#include "trace/synth.hpp"
#include "trace/validate.hpp"

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [options] --out <path.(ggtrace|ggbin)>\n"
               "  --grains N         target grain count (default 1000)\n"
               "  --seed N           RNG seed (default 1)\n"
               "  --workers N        team size (default 8)\n"
               "  --fanout N         max children per fork batch (default 8)\n"
               "  --loop-fraction F  probability a section is a loop "
               "(default 0.25)\n"
               "  --nest-prob F      probability a child forks a sub-batch "
               "(default 0.25)\n"
               "  --sources N        distinct source locations (default 32)\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gg;
  SynthOptions opts;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grains") {
      opts.grains = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--workers") {
      opts.workers = std::atoi(value());
    } else if (arg == "--fanout") {
      opts.fanout = static_cast<u32>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--loop-fraction") {
      opts.loop_fraction = std::atof(value());
    } else if (arg == "--nest-prob") {
      opts.nest_prob = std::atof(value());
    } else if (arg == "--sources") {
      opts.sources = static_cast<u32>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--out") {
      out = value();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (out.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (opts.workers < 1 || opts.fanout < 1 || opts.grains < 1) {
    std::fprintf(stderr, "error: --grains, --workers, --fanout must be >= 1\n");
    return 2;
  }

  const Trace trace = synth_trace(opts);
  const ValidationReport rep = validate_trace_structured(trace);
  if (!rep.violations.empty()) {
    std::fprintf(stderr, "error: generated trace is invalid (%zu violations):\n",
                 rep.violations.size());
    for (size_t i = 0; i < rep.violations.size() && i < 10; ++i) {
      std::fprintf(stderr, "  %s: %s\n", rep.violations[i].where().c_str(),
                   rep.violations[i].message.c_str());
    }
    return 1;
  }
  if (!save_trace_file(trace, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s: %zu grains (%zu tasks, %zu chunks), %zu fragments, "
              "%zu loops, %d workers, seed %llu\n",
              out.c_str(), trace.grain_count(), trace.tasks.size() - 1,
              trace.chunks.size(), trace.fragments.size(), trace.loops.size(),
              trace.meta.num_workers,
              static_cast<unsigned long long>(opts.seed));
  return 0;
}
