// ggserved — fault-tolerant streaming ingestion daemon.
//
// Tails every *.ggspool file in a directory (and/or explicitly attached
// paths), folding sealed epoch frames into per-client incremental traces
// as they land, and answers queries over an AF_UNIX socket (client:
// `ggstat --connect`). The resilience contract lives in src/serve/:
//
//  * torn tails retry with bounded exponential backoff and only escalate
//    past a deadline when a later valid frame proves real damage — one bad
//    frame loses one epoch, never the session;
//  * writer death is detected via the crash-provenance footer or footer-
//    less staleness, and the session hands itself to the batch recovery
//    pipeline (salvage + validate), so its final metrics are byte-identical
//    to `gganalyze --recover` over the same spool;
//  * one global admission budget bounds resident memory: heavy queries are
//    shed first, then low-priority tailers pause, then idle finalized
//    sessions are evicted — the daemon degrades, it never aborts;
//  * a watchdog thread supervises the ingest loop itself and dumps a
//    structured diagnosis to stderr if the heartbeat freezes.
//
//  * the --ingest-socket accepts GGWIRE1 pushes (client: ggspool-push or a
//    recorder's frame tap): token-keyed resumable sessions, acked epochs,
//    wire damage poisons only the connection — never an accepted stream.
//
// Usage:
//   ggserved --dir <spool-dir> [options]
//     --socket <path>          query endpoint (AF_UNIX); off by default
//     --ingest-socket <path>   GGWIRE1 network ingestion socket; off by
//                              default
//     --ingest-sessions <n>    max concurrent unfinished wire streams (64)
//     --ingest-conns <n>       max concurrent ingest connections (64)
//     --ingest-stale-ms <ms>   abandoned wire stream finalized (def 30000)
//     --read-deadline-ms <ms>  per-connection slowloris deadline, both
//                              sockets (def 5000 query / 10000 ingest)
//     --budget <MiB>           admission budget (default 256)
//     --poll-ms <ms>           tick sleep (default 2)
//     --stale-ms <ms>          footer-less writer presumed dead (def 10000)
//     --evict-ms <ms>          idle finalized session evicted (def 60000)
//     --torn-deadline-ms <ms>  stuck-tail escalation deadline (def 5000)
//     --scan-ms <ms>           directory re-scan period (default 500)
//     --telemetry              publish serve.* metrics (TELEMETRY query)
//     --exit-when-idle         exit 0 once every session finalized (soak)
//     --attach <spool>         attach one file (repeatable; --dir optional)
//
// SIGTERM/SIGINT request a graceful shutdown: every live session is
// finalized (batch-identical recovery for crashed writers) and a final
// per-session summary goes to stderr. Exit 0 on clean shutdown, 1 on a
// setup failure (bad directory, unusable socket), 2 on a usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

gg::serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--dir d] [--attach spool]... [--socket s] [--budget MiB]\n"
      "       [--ingest-socket s] [--ingest-sessions n] [--ingest-conns n]\n"
      "       [--ingest-stale-ms n] [--read-deadline-ms n]\n"
      "       [--poll-ms n] [--stale-ms n] [--evict-ms n]\n"
      "       [--torn-deadline-ms n] [--scan-ms n] [--telemetry]\n"
      "       [--exit-when-idle]\n"
      "  tails *.ggspool files and accepts GGWIRE1 pushes, ingesting epochs\n"
      "  live with crash recovery, bounded memory and graceful degradation;\n"
      "  query it with `ggstat --connect <socket>`, push with\n"
      "  `ggspool-push --socket <ingest-socket>`.\n",
      argv0);
  return 2;
}

bool parse_ms(int argc, char** argv, int* i, gg::u64* out_ns) {
  if (*i + 1 >= argc) return false;
  const long v = std::atol(argv[++*i]);
  if (v <= 0) return false;
  *out_ns = static_cast<gg::u64>(v) * 1'000'000ull;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gg;

  serve::ServerOptions opts;
  std::vector<std::string> attach;
  bool telemetry = false;
  u64 budget_mib = 256;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir") {
      if (i + 1 >= argc) return usage(argv[0]);
      opts.dir = argv[++i];
    } else if (arg == "--attach") {
      if (i + 1 >= argc) return usage(argv[0]);
      attach.push_back(argv[++i]);
    } else if (arg == "--socket") {
      if (i + 1 >= argc) return usage(argv[0]);
      opts.socket_path = argv[++i];
    } else if (arg == "--ingest-socket") {
      if (i + 1 >= argc) return usage(argv[0]);
      opts.ingest_socket_path = argv[++i];
    } else if (arg == "--ingest-sessions") {
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::atol(argv[++i]);
      if (v <= 0) return usage(argv[0]);
      opts.ingest.max_sessions = static_cast<size_t>(v);
    } else if (arg == "--ingest-conns") {
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::atol(argv[++i]);
      if (v <= 0) return usage(argv[0]);
      opts.ingest.max_connections = static_cast<size_t>(v);
    } else if (arg == "--ingest-stale-ms") {
      if (!parse_ms(argc, argv, &i, &opts.ingest.stale_after_ns))
        return usage(argv[0]);
    } else if (arg == "--read-deadline-ms") {
      if (!parse_ms(argc, argv, &i, &opts.query_read_deadline_ns))
        return usage(argv[0]);
      opts.ingest.read_deadline_ns = opts.query_read_deadline_ns;
    } else if (arg == "--budget") {
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::atol(argv[++i]);
      if (v <= 0) return usage(argv[0]);
      budget_mib = static_cast<u64>(v);
    } else if (arg == "--poll-ms") {
      if (!parse_ms(argc, argv, &i, &opts.tick_sleep_ns))
        return usage(argv[0]);
    } else if (arg == "--stale-ms") {
      if (!parse_ms(argc, argv, &i, &opts.session.stale_after_ns))
        return usage(argv[0]);
    } else if (arg == "--evict-ms") {
      if (!parse_ms(argc, argv, &i, &opts.session.evict_after_ns))
        return usage(argv[0]);
    } else if (arg == "--torn-deadline-ms") {
      if (!parse_ms(argc, argv, &i, &opts.session.tailer.torn_deadline_ns))
        return usage(argv[0]);
    } else if (arg == "--scan-ms") {
      if (!parse_ms(argc, argv, &i, &opts.scan_interval_ns))
        return usage(argv[0]);
    } else if (arg == "--telemetry") {
      telemetry = true;
    } else if (arg == "--exit-when-idle") {
      opts.exit_when_idle = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.dir.empty() && attach.empty() &&
      opts.ingest_socket_path.empty()) {
    std::fprintf(stderr,
                 "error: need --dir, --attach, or --ingest-socket\n");
    return usage(argv[0]);
  }
  opts.admission.budget_bytes = budget_mib << 20;

  obs::Registry registry;
  if (telemetry) opts.telemetry = &registry;

  serve::Server server(opts);
  for (const std::string& path : attach) server.attach(path);

  g_server = &server;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  const int rc = server.run();
  g_server = nullptr;

  // Final per-session accounting — this is what the soak harness asserts:
  // every session either sealed cleanly, recovered from a crash, or was
  // explicitly failed/evicted, never silently dropped.
  std::fprintf(stderr, "ggserved: shutdown after %llu ticks, %zu sessions\n",
               static_cast<unsigned long long>(server.ticks()),
               server.session_count());
  server.for_each_session([](const serve::Session& s) {
    std::fprintf(stderr, "  %s\n", s.status_line().c_str());
  });
  server.ingest().for_each([](const serve::IngestStream& s) {
    std::fprintf(stderr, "  %s\n", s.status_line().c_str());
  });
  return rc;
}
